"""Threshold sweep (Table 3 style) for one circuit over the molecule data set.

For each molecule of the paper's data set, sweep the ``Threshold`` parameter
over the paper's values and report the total runtime and the number of
subcircuits; infeasible combinations (adjacency graph empty or too
disconnected) show up as N/A, exactly like Table 3's pentafluorobutadienyl
iron rows.

Run with ``python examples/qft_threshold_sweep.py [circuit-name]``.
"""

import sys

from repro.analysis.reporting import format_table
from repro.analysis.sweep import sweep_circuit
from repro.circuits.library import CIRCUIT_FACTORIES
from repro.hardware.molecules import all_molecules
from repro.hardware.threshold_graph import PAPER_THRESHOLDS


def main(circuit_name: str = "phaseest") -> None:
    factory = CIRCUIT_FACTORIES[circuit_name]
    header = ["molecule"] + [f"thr {threshold:g}" for threshold in PAPER_THRESHOLDS]
    rows = []
    for environment in all_molecules():
        if environment.num_qubits < factory().num_qubits:
            rows.append([environment.name] + ["too small"] * len(PAPER_THRESHOLDS))
            continue
        sweep_row = sweep_circuit(factory, environment, PAPER_THRESHOLDS)
        rows.append([environment.name] + [cell.formatted() for cell in sweep_row.cells])
    print(format_table(header, rows, title=f"Threshold sweep for {circuit_name!r}"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "phaseest")
