"""Threshold sweep (Table 3 style) for one circuit over the molecule data set.

For each molecule of the paper's data set, sweep the ``Threshold`` parameter
over the paper's values and report the total runtime and the number of
subcircuits; infeasible combinations (adjacency graph empty or too
disconnected) show up as N/A, exactly like Table 3's pentafluorobutadienyl
iron rows.

Run with ``python examples/qft_threshold_sweep.py [circuit-spec] [--jobs N]``.
The circuit is any :mod:`repro.registry` spec — a named benchmark
(``phaseest``, ``qft6``) or a parameterised family (``qft:7``,
``hidden-stage:16``).  Molecules are likewise addressed by their registry
names, so the whole grid is described by strings, exactly like a
``RunConfig``.  ``--jobs 4`` fans the sweep cells out over four worker
processes; the table is identical to the serial one.  ``--stream``
renders each molecule's row the moment its last cell completes (row
completion order) instead of waiting for the whole grid.
"""

import argparse

from repro.analysis.reporting import format_table
from repro.analysis.runner import ExperimentRunner, stderr_progress
from repro.analysis.sweep import sweep_table
from repro.hardware.threshold_graph import PAPER_THRESHOLDS
from repro.registry import ENVIRONMENTS, load_circuit, load_environment


def main(
    circuit_spec: str = "phaseest",
    jobs: int = 1,
    progress: bool = False,
    stream: bool = False,
) -> None:
    num_qubits = load_circuit(circuit_spec).num_qubits
    runner = ExperimentRunner(
        jobs=jobs, progress=stderr_progress("sweep cell") if progress else None
    )
    header = ["molecule"] + [f"thr {threshold:g}" for threshold in PAPER_THRESHOLDS]

    def streamed_row(sweep_row):
        print(f"[done] {sweep_row.environment_name}: "
              + "  ".join(cell.formatted() for cell in sweep_row.cells),
              flush=True)

    # One flattened grid over every big-enough molecule: a single runner
    # call, so parallel runs pay pool start-up once, not once per row.
    # Molecules are passed as registry spec strings — sweep_table resolves
    # them through the same loaders as the CLI and shard plans.
    molecule_names = [
        entry.name for entry in ENVIRONMENTS.entries() if not entry.parameterised
    ]
    molecules = [(name, load_environment(name)) for name in molecule_names]
    big_enough = [name for name, env in molecules if env.num_qubits >= num_qubits]
    sweep_rows = iter(
        sweep_table(
            circuit_spec,
            big_enough,
            PAPER_THRESHOLDS,
            runner=runner,
            on_row=streamed_row if stream else None,
        )
    )
    rows = []
    for name, environment in molecules:
        if environment.num_qubits < num_qubits:
            rows.append([environment.name] + ["too small"] * len(PAPER_THRESHOLDS))
        else:
            sweep_row = next(sweep_rows)
            rows.append(
                [environment.name] + [cell.formatted() for cell in sweep_row.cells]
            )
    print(format_table(header, rows, title=f"Threshold sweep for {circuit_spec!r}"))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("circuit", nargs="?", default="phaseest",
                        help="circuit registry spec (default: phaseest; "
                             "e.g. qft6, qft:7, hidden-stage:16)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes per sweep (default: 1, serial)")
    parser.add_argument("--progress", action="store_true",
                        help="print per-cell progress to stderr")
    parser.add_argument("--stream", action="store_true",
                        help="print each molecule's row as soon as it completes")
    args = parser.parse_args()
    main(args.circuit, jobs=args.jobs, progress=args.progress, stream=args.stream)
