"""Place a QFT onto an NMR molecule and inspect every stage of the result.

The 6-qubit Quantum Fourier Transform interacts every pair of qubits, so it
cannot be aligned with the chemical bonds of trans-crotonic acid in one
piece: the placer splits it into subcircuits and re-permutes the qubit
values with SWAP stages in between — the core behaviour studied in the
paper's Table 3.

Run with ``python examples/nmr_molecule_placement.py``.
"""

from repro import PlacementOptions, place_circuit
from repro.circuits.library import qft_circuit
from repro.hardware.molecules import trans_crotonic_acid


def main() -> None:
    circuit = qft_circuit(6)
    environment = trans_crotonic_acid()
    options = PlacementOptions(threshold=200.0)

    result = place_circuit(circuit, environment, options)
    print(result.summary())
    print()

    for index, stage in enumerate(result.stages):
        mapping = ", ".join(
            f"{qubit}->{node}"
            for qubit, node in sorted(stage.placement.items(), key=lambda kv: str(kv[0]))
        )
        print(f"subcircuit {index}: gates [{stage.start}, {stage.stop}) "
              f"runtime {stage.runtime:g} units")
        print(f"    placement: {mapping}")
        if index < len(result.swap_stages):
            swap_stage = result.swap_stages[index]
            print(f"    swap stage: {swap_stage.num_swaps} SWAPs in "
                  f"{swap_stage.depth} parallel layers "
                  f"({swap_stage.runtime:g} units)")
            for layer_index, layer in enumerate(swap_stage.routing.layers):
                swaps = ", ".join(f"{a}<->{b}" for a, b in layer)
                print(f"        layer {layer_index}: {swaps}")
    print()
    print(f"total: {result.total_runtime:g} units = {result.runtime_seconds:.4f} s "
          f"using {result.num_subcircuits} subcircuits and "
          f"{result.total_swap_count} SWAPs")


if __name__ == "__main__":
    main()
