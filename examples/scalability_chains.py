"""Scalability over linear nearest-neighbour chains (Table 4 style).

Generates the paper's "hidden stage" workloads for growing qubit counts,
places them onto 1 kHz chains and prints the same columns as Table 4.  The
placer should discover exactly one subcircuit per hidden stage.

Run with ``python examples/scalability_chains.py [max_qubits]``.
"""

import sys

from repro.analysis.reporting import format_table
from repro.analysis.scalability import run_scalability_sweep


def main(max_qubits: int = 32) -> None:
    sizes = [n for n in (8, 16, 32, 64, 128, 256) if n <= max_qubits]
    records = run_scalability_sweep(sizes)
    rows = [
        [
            record.num_qubits,
            record.num_gates,
            record.hidden_stages,
            record.num_subcircuits,
            f"{record.circuit_runtime_seconds:.3f} sec",
            f"{record.software_runtime_seconds:.2f} s",
        ]
        for record in records
    ]
    print(
        format_table(
            ["qubits", "gates", "hidden stages", "subcircuits",
             "circuit runtime", "software runtime"],
            rows,
            title="Performance test for circuit placement over chains",
        )
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 32)
