"""Scalability over linear nearest-neighbour chains (Table 4 style).

Generates the paper's "hidden stage" workloads for growing qubit counts,
places them onto 1 kHz chains and prints the same columns as Table 4.  The
placer should discover exactly one subcircuit per hidden stage.

Run with ``python examples/scalability_chains.py [max_qubits] [--jobs N]``.
The run is described by a :class:`repro.RunConfig` (the workload family
``hidden-stage:N`` on ``chain:N`` architectures) and executed through the
:class:`repro.Session` façade — the same layer behind the CLI and the
shard pipeline.  ``--jobs 4`` places the chain instances on four worker
processes; every column except the wall-clock "software runtime" is
identical to the serial run.
"""

import argparse

from repro import RunConfig, Session
from repro.analysis.reporting import format_table
from repro.analysis.runner import stderr_progress


def main(
    max_qubits: int = 32, jobs: int = 1, progress: bool = False,
    stream: bool = False,
) -> None:
    sizes = [n for n in (8, 16, 32, 64, 128, 256) if n <= max_qubits]
    # The config names the workload family; Session.scalability generates
    # one hidden-stage instance (and matching chain) per requested size.
    largest = max(sizes, default=8)
    config = RunConfig(
        circuit=f"hidden-stage:{largest}",
        environment=f"chain:{largest}",
        jobs=jobs,
    )
    session = Session(
        config, progress=stderr_progress("chain") if progress else None
    )

    def streamed_record(record):
        print(f"[done] {record.num_qubits}-qubit chain: "
              f"{record.num_subcircuits} subcircuits, "
              f"{record.circuit_runtime_seconds:.3f} sec circuit runtime",
              flush=True)

    records = session.scalability(
        sizes, on_record=streamed_record if stream else None
    )
    rows = [
        [
            record.num_qubits,
            record.num_gates,
            record.hidden_stages,
            record.num_subcircuits,
            f"{record.circuit_runtime_seconds:.3f} sec",
            f"{record.software_runtime_seconds:.2f} s",
        ]
        for record in records
    ]
    print(
        format_table(
            ["qubits", "gates", "hidden stages", "subcircuits",
             "circuit runtime", "software runtime"],
            rows,
            title="Performance test for circuit placement over chains",
        )
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("max_qubits", nargs="?", type=int, default=32,
                        help="largest chain size to run (default: 32)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default: 1, serial)")
    parser.add_argument("--progress", action="store_true",
                        help="print per-instance progress to stderr")
    parser.add_argument("--stream", action="store_true",
                        help="print each chain's record as soon as it completes")
    args = parser.parse_args()
    main(args.max_qubits, jobs=args.jobs, progress=args.progress,
         stream=args.stream)
