"""Quickstart: place the paper's worked example and inspect the result.

Reproduces Example 3 of the paper end to end:

1. build the 3-qubit error-correction encoder of Figure 2,
2. build the acetyl chloride environment of Figure 1,
3. show how expensive the naive mapping {a->M, b->C2, c->C1} is (Table 1),
4. let the placer find the optimal mapping, and
5. verify by simulation that the placed circuit still implements the
   encoder.

Run with ``python examples/quickstart.py``.
"""

from repro import PlacementOptions, place_circuit
from repro.circuits.library import qec3_encoder
from repro.hardware.molecules import acetyl_chloride
from repro.simulation.verify import verify_placement
from repro.timing.scheduler import circuit_runtime, schedule
from repro.timing.trace import format_trace


def main() -> None:
    circuit = qec3_encoder()
    environment = acetyl_chloride()

    print("Circuit (Figure 2):", circuit)
    for gate in circuit:
        print("   ", gate)
    print()
    print("Environment (Figure 1):", environment)
    for (a, b), delay in sorted(environment.explicit_pairs().items()):
        print(f"    W({a}, {b}) = {delay:g} x 1e-4 s")
    print()

    # The naive mapping of Example 3 / Table 1.
    naive = {"a": "M", "b": "C2", "c": "C1"}
    print("Naive mapping {a->M, b->C2, c->C1}:")
    print(format_trace(schedule(circuit, naive, environment), qubit_order=["a", "b", "c"]))
    print(f"    runtime = {circuit_runtime(circuit, naive, environment):g} units")
    print()

    # Let the placer do its job.
    result = place_circuit(circuit, environment, PlacementOptions())
    print("Placer result:", result.summary())
    print("    mapping:", {q: n for q, n in sorted(result.initial_placement.items())})
    print()

    # Verify the physical circuit still implements the encoder.
    report = verify_placement(circuit, result, environment)
    print(f"Verified by simulation: equivalent={report.equivalent} "
          f"(worst fidelity {report.worst_fidelity:.6f} over "
          f"{report.num_states_tested} input states)")


if __name__ == "__main__":
    main()
