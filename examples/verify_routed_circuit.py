"""Verify by simulation that a multi-stage placement preserves the computation.

Places the 5-qubit phase-estimation benchmark onto trans-crotonic acid at a
low threshold (forcing several subcircuits and SWAP stages), then simulates
both the abstract circuit and the placed physical circuit and compares the
final states — accounting for where the placer says each logical qubit ends
up.

Run with ``python examples/verify_routed_circuit.py``.
"""

from repro import PlacementOptions, place_circuit
from repro.circuits.library import phaseest
from repro.hardware.molecules import trans_crotonic_acid
from repro.simulation.verify import verify_placement


def main() -> None:
    circuit = phaseest()
    environment = trans_crotonic_acid()
    options = PlacementOptions(threshold=100.0)

    result = place_circuit(circuit, environment, options)
    print(result.summary())
    print(f"initial placement: {dict(sorted(result.initial_placement.items()))}")
    print(f"final placement:   {dict(sorted(result.final_placement.items()))}")
    print(f"SWAP stages: {len(result.swap_stages)} "
          f"({result.total_swap_count} SWAPs, depth {result.total_swap_depth})")
    print()

    report = verify_placement(circuit, result, environment, num_random_states=3)
    status = "EQUIVALENT" if report.equivalent else "NOT EQUIVALENT"
    print(f"simulation check: {status}")
    print(f"    worst fidelity over {report.num_states_tested} input states: "
          f"{report.worst_fidelity:.9f}")


if __name__ == "__main__":
    main()
