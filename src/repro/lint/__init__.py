"""``repro.lint`` — the determinism & robustness static-analysis suite.

The package's differentiating guarantee — byte-identical placements and
sweep tables across ``PYTHONHASHSEED``, worker counts, shards, scheduler
backends and placer engines — is enforced dynamically by the fingerprint
tests and bench gates.  This package enforces it *statically*, at review
time: a small AST-based rule engine (stdlib :mod:`ast`, no runtime
dependencies) that recognises the exact hazard patterns earlier PRs spent
whole changes eradicating, before they re-enter the tree.

Rule families (see ``docs/static-analysis.md`` for the full catalog):

* **DET** — determinism hazards: hash-order-dependent iteration
  (DET001), ``repr``/``str``/``id`` sort keys that bypass the canonical
  :func:`repro.core._bitset.node_index_table` order (DET002), ``hash()``
  on the fingerprint path (DET003), global-state or unseeded
  :mod:`random` use (DET004), wall-clock and UUID values feeding
  serialised payloads (DET005).
* **ROB** — robustness hazards: non-atomic artifact writes (ROB001),
  broad exception handlers that swallow silently (ROB002), and
  ``pickle.load`` outside the checksum-verified shard readers (ROB003).
* **PAR** — parallelism-safety hazards: lambdas/nested defs submitted
  to worker pools (PAR001), worker functions mutating module-level
  state outside ``STATS`` (PAR002), and mutable default arguments on
  registry providers or ``Placer`` subclasses (PAR003).
* **Whole-program rules** over the assembled import/call graph
  (:mod:`repro.lint.graph` / :mod:`repro.lint.reachability`):
  non-canonical ``json.dump*`` on the computed serialization path
  (SER001), and drift between the declared module sets in
  :mod:`repro.lint.scopes` and the sets computed by sink reachability
  (SCOPE001, fixed with ``--update-scopes``).

Diagnostics carry file, line, column and rule code; a deliberate
violation is acknowledged inline with ``# repro: allow[CODE]`` anywhere
in the flagged statement's span, and legacy debt is frozen in
``lint_baseline.json`` — a ratchet: ``--check`` fails on any finding
*above* the baseline and on any stale baseline entry, so the count only
moves down.

Entry points: ``python -m repro.lint [--check] [--baseline]
[--update-scopes] [--jobs N] [--format json|text]``
(:mod:`repro.lint.cli`) and the programmatic :func:`lint_tree` /
:func:`lint_source` used by the test gate (``pytest -m lint``).
Per-file results are cached by content hash (:mod:`repro.lint.cache`);
cache and ``--jobs`` never change the output bytes.
"""

from repro.lint.baseline import (
    BASELINE_FILENAME,
    baseline_key,
    compare_to_baseline,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.lint.cache import DiagnosticCache
from repro.lint.engine import (
    Diagnostic,
    FileAnalysis,
    analyze_file,
    analyze_paths,
    analyze_source,
    default_targets,
    lint_file,
    lint_paths,
    lint_source,
    lint_tree,
    module_name_for,
    suppressed_lines,
    suppression_covers,
)
from repro.lint.graph import ModuleSummary, ProjectGraph, summarize_tree
from repro.lint.reachability import (
    ComputedScopes,
    compute_scopes,
    project_findings,
)
from repro.lint.rules import RULES, Rule, rules_by_code

__all__ = [
    "BASELINE_FILENAME",
    "ComputedScopes",
    "Diagnostic",
    "DiagnosticCache",
    "FileAnalysis",
    "ModuleSummary",
    "ProjectGraph",
    "RULES",
    "Rule",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "baseline_key",
    "compare_to_baseline",
    "compute_scopes",
    "default_targets",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "load_baseline",
    "module_name_for",
    "project_findings",
    "render_baseline",
    "rules_by_code",
    "summarize_tree",
    "suppressed_lines",
    "suppression_covers",
    "write_baseline",
]
