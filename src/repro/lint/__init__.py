"""``repro.lint`` — the determinism & robustness static-analysis suite.

The package's differentiating guarantee — byte-identical placements and
sweep tables across ``PYTHONHASHSEED``, worker counts, shards, scheduler
backends and placer engines — is enforced dynamically by the fingerprint
tests and bench gates.  This package enforces it *statically*, at review
time: a small AST-based rule engine (stdlib :mod:`ast`, no runtime
dependencies) that recognises the exact hazard patterns earlier PRs spent
whole changes eradicating, before they re-enter the tree.

Rule families (see ``docs/static-analysis.md`` for the full catalog):

* **DET** — determinism hazards: hash-order-dependent iteration
  (DET001), ``repr``/``str``/``id`` sort keys that bypass the canonical
  :func:`repro.core._bitset.node_index_table` order (DET002), ``hash()``
  on the fingerprint path (DET003), global-state or unseeded
  :mod:`random` use (DET004), wall-clock and UUID values feeding
  serialised payloads (DET005).
* **ROB** — robustness hazards: non-atomic artifact writes (ROB001),
  broad exception handlers that swallow silently (ROB002), and
  ``pickle.load`` outside the checksum-verified shard readers (ROB003).

Diagnostics carry file, line, column and rule code; a deliberate
violation is acknowledged inline with ``# repro: allow[CODE]`` on the
offending line, and legacy debt is frozen in ``lint_baseline.json`` — a
ratchet: ``--check`` fails on any finding *above* the baseline and on any
stale baseline entry, so the count only moves down.

Entry points: ``python -m repro.lint [--check] [--baseline]
[--format json|text]`` (:mod:`repro.lint.cli`) and the programmatic
:func:`lint_tree` / :func:`lint_source` used by the test gate
(``pytest -m lint``).
"""

from repro.lint.baseline import (
    BASELINE_FILENAME,
    baseline_key,
    compare_to_baseline,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.lint.engine import (
    Diagnostic,
    lint_file,
    lint_paths,
    lint_source,
    lint_tree,
    module_name_for,
    suppressed_lines,
)
from repro.lint.rules import RULES, Rule, rules_by_code

__all__ = [
    "BASELINE_FILENAME",
    "Diagnostic",
    "RULES",
    "Rule",
    "baseline_key",
    "compare_to_baseline",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "load_baseline",
    "module_name_for",
    "render_baseline",
    "rules_by_code",
    "suppressed_lines",
    "write_baseline",
]
