"""``python -m repro.lint`` — delegates to :func:`repro.lint.cli.main`."""

import sys

from repro.lint.cli import main

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
