"""Per-file diagnostic cache: content-addressed, atomic, self-invalidating.

Linting is a pure function of (file bytes, dotted module, profile, rule
catalog), so its result can be cached by content hash and reused until
either the file or the linter itself changes.  The cache key folds in a
**catalog fingerprint** — a SHA-256 over the source of every module in
``repro/lint`` — so editing any rule, scope or engine file invalidates
every entry at once; no manual version bump can be forgotten.

Entries live under ``~/.cache/repro/lint`` (override order:
``$REPRO_LINT_CACHE_DIR``, then ``$XDG_CACHE_HOME/repro/lint``), one
canonical-JSON file per key, written atomically so a crashed run never
leaves a torn entry.  A cache that cannot be created or read degrades to
plain misses — the linter's output is byte-identical with the cache on,
off, cold or warm.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

from repro.analysis.serialization import atomic_write_text, dump_json

#: Bump when the cached payload layout changes (also implicitly bumped
#: by the catalog fingerprint whenever any lint source file changes).
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the cache directory entirely.
CACHE_DIR_ENV = "REPRO_LINT_CACHE_DIR"

_catalog_fingerprint: Optional[str] = None


def default_cache_dir() -> str:
    """The resolved cache directory (not yet created)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "lint")


def catalog_fingerprint() -> str:
    """SHA-256 over the lint package's own sources (memoised).

    Any edit to a rule, scope set, or the engine changes this value and
    therefore every cache key — stale diagnostics cannot survive a
    linter change.
    """
    global _catalog_fingerprint
    if _catalog_fingerprint is None:
        package_dir = os.path.dirname(os.path.abspath(__file__))
        digest = hashlib.sha256()
        for name in sorted(os.listdir(package_dir)):
            if not name.endswith(".py"):
                continue
            digest.update(name.encode("utf-8"))
            with open(os.path.join(package_dir, name), "rb") as handle:
                digest.update(handle.read())
        _catalog_fingerprint = digest.hexdigest()
    return _catalog_fingerprint


class DiagnosticCache:
    """Content-addressed store of per-file analysis payloads."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory or default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._unusable = False

    def key(self, module: str, profile: str, source_bytes: bytes) -> str:
        digest = hashlib.sha256()
        digest.update(catalog_fingerprint().encode("utf-8"))
        digest.update(str(CACHE_SCHEMA_VERSION).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(module.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(profile.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source_bytes)
        return digest.hexdigest()

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or None (counted as a miss)."""
        try:
            with open(self._entry_path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key`` (best effort:
        an unwritable cache directory disables storing, never the run)."""
        if self._unusable:
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            atomic_write_text(self._entry_path(key), dump_json(payload))
        except OSError:
            self._unusable = True
            return
        self.stores += 1
