"""The determinism (DET), robustness (ROB) and parallelism (PAR) rules.

Each rule is a small :mod:`ast` pattern matcher with a stable code, a
scope predicate over dotted module names (:mod:`repro.lint.scopes`) and a
one-line message naming the sanctioned replacement.  Rules are purely
syntactic — no type inference — so they only fire on patterns that are
unambiguously the hazard: a rule that cries wolf gets suppressed into
uselessness, while a quiet rule still catches the regressions that
matter (every hazard class below has bitten this codebase before).

Two rule *profiles* exist: ``strict`` (the ``repro.*`` source tree, all
rules, scope predicates honoured) and ``relaxed`` (``scripts/`` and
``benchmarks/``: only the rules marked ``relaxed=True`` run, and they
run regardless of the module's scope, since scripts lint under bare
stems that no scope predicate covers).

This module holds the *per-file* rules.  The whole-program rules
(SCOPE001, PAR003, SER001) live in :mod:`repro.lint.reachability` and
run over the assembled :class:`~repro.lint.graph.ProjectGraph`.

The full catalog, with rationale and the sanctioned pattern for each
rule, lives in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.lint import scopes

#: A raw finding before path/suppression handling:
#: (line, col, end_line, message).  ``end_line`` is the last physical
#: line of the flagged node, so inline suppressions anywhere in a
#: multi-line statement are honoured.
Finding = Tuple[int, int, int, str]


@dataclass(frozen=True)
class Rule:
    """One lint rule: code, scope predicate, AST checker, profile flag."""

    code: str
    summary: str
    scope: Callable[[str], bool]
    check: Callable[[ast.AST, str], Iterator[Finding]]
    relaxed: bool = False

    def applies_to(
        self, module: str, profile: str = scopes.PROFILE_STRICT
    ) -> bool:
        if profile == scopes.PROFILE_RELAXED:
            return self.relaxed
        return self.scope(module)


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------

#: Builtins whose result order (or value) depends on PYTHONHASHSEED when
#: applied to str-keyed collections.
_ORDER_SENSITIVE_KEYS = ("repr", "str", "id")

#: ``random`` module functions that read or mutate the *global* RNG state.
_GLOBAL_RANDOM_FUNCTIONS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

#: Call patterns whose value differs between runs (wall clock, UUIDs).
#: ``time.monotonic``/``perf_counter`` are deliberately absent: measuring
#: a duration is sanctioned (timeouts, ``software_runtime_seconds``);
#: only absolute timestamps and UUIDs poison serialised payloads.
_WALL_CLOCK_CALLS = {
    ("time", "time"): "time.time()",
    ("time", "time_ns"): "time.time_ns()",
    ("datetime", "now"): "datetime.now()",
    ("datetime", "utcnow"): "datetime.utcnow()",
    ("datetime", "today"): "datetime.today()",
    ("date", "today"): "date.today()",
    ("uuid", "uuid1"): "uuid.uuid1()",
    ("uuid", "uuid4"): "uuid.uuid4()",
}

#: File-open modes that create or truncate: the writes ROB001 polices.
_WRITE_MODES = ("w", "wb", "w+", "wb+", "x", "xb", "a", "ab", "a+")

#: Keyword arguments whose value is executed in a worker process
#: (``ExperimentSpec`` factories, executor initializers, ``Process``
#: targets).
_WORKER_CALLABLE_KEYWORDS = frozenset({
    "target", "initializer", "circuit_factory", "environment_factory",
})


def _call_name(node: ast.AST) -> Optional[str]:
    """``foo`` for ``foo(...)`` calls on a bare name, else ``None``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _attribute_pair(func: ast.AST) -> Optional[Tuple[str, str]]:
    """``("mod", "attr")`` for ``mod.attr`` on a bare name, else ``None``."""
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    return None


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _end_line(node: ast.AST) -> int:
    return int(getattr(node, "end_lineno", None) or getattr(node, "lineno", 1))


def _is_set_expression(node: ast.AST) -> bool:
    """Whether ``node`` is syntactically a set: literal, comp, or call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return _call_name(node) in ("set", "frozenset")


def _literal_strings(node: ast.AST) -> List[str]:
    """Every string constant ``node`` can evaluate to (IfExp branches too)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.IfExp):
        return _literal_strings(node.body) + _literal_strings(node.orelse)
    return []


def _findings(
    tree: ast.AST, visit: Callable[[ast.AST, List[Finding]], None]
) -> Iterator[Finding]:
    found: List[Finding] = []
    visit(tree, found)
    return iter(sorted(found))


# ---------------------------------------------------------------------------
# DET001 — hash-order-dependent iteration
# ---------------------------------------------------------------------------


def _det001(tree: ast.AST, module: str) -> Iterator[Finding]:
    """Iteration directly over a set expression (order = hash order)."""

    def visit(root: ast.AST, found: List[Finding]) -> None:
        for node in ast.walk(root):
            iterables: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                if _is_set_expression(iterable):
                    found.append((
                        iterable.lineno,
                        iterable.col_offset,
                        _end_line(iterable),
                        "iteration over a set follows hash order, which "
                        "depends on PYTHONHASHSEED; sort it first "
                        "(canonical_order / node_index_table for graph "
                        "nodes, sorted() for value-ordered data)",
                    ))

    return _findings(tree, visit)


# ---------------------------------------------------------------------------
# DET002 — repr/str/id sort keys bypassing node_index_table
# ---------------------------------------------------------------------------


def _is_order_sensitive_key(node: ast.expr) -> Optional[str]:
    """The offending builtin name when ``key=`` is repr/str/id-based."""
    if isinstance(node, ast.Name) and node.id in _ORDER_SENSITIVE_KEYS:
        return node.id
    if isinstance(node, ast.Lambda):
        for inner in ast.walk(node.body):
            name = _call_name(inner)
            if name in _ORDER_SENSITIVE_KEYS:
                return name
    return None


def _det002(tree: ast.AST, module: str) -> Iterator[Finding]:
    """``sorted``/``min``/``max`` keyed on ``repr``/``str``/``id``."""

    def visit(root: ast.AST, found: List[Finding]) -> None:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) not in ("sorted", "min", "max"):
                continue
            key = _keyword(node, "key")
            if key is None:
                continue
            builtin = _is_order_sensitive_key(key)
            if builtin is not None:
                found.append((
                    node.lineno,
                    node.col_offset,
                    _end_line(node),
                    f"key={builtin} re-derives node order ad hoc; route "
                    "through repro.core._bitset.node_index_table "
                    "(canonical_order / canonical_min) so every tie-break "
                    "shares the one canonical order",
                ))

    return _findings(tree, visit)


# ---------------------------------------------------------------------------
# DET003 — hash() on the fingerprint path
# ---------------------------------------------------------------------------


def _det003(tree: ast.AST, module: str) -> Iterator[Finding]:
    """``hash()`` builtin outside ``__hash__`` in fingerprint modules."""

    def visit(root: ast.AST, found: List[Finding]) -> None:
        def walk(node: ast.AST) -> None:
            if isinstance(node, ast.FunctionDef) and node.name == "__hash__":
                return  # implementing __hash__ is the one sanctioned use
            if isinstance(node, ast.Call) and _call_name(node) == "hash":
                found.append((
                    node.lineno,
                    node.col_offset,
                    _end_line(node),
                    "hash() is salted by PYTHONHASHSEED for str/bytes and "
                    "must not feed a fingerprint; use hashlib.sha256 over "
                    "canonical bytes (serialization.dump_json)",
                ))
            for child in ast.iter_child_nodes(node):
                walk(child)

        walk(root)

    return _findings(tree, visit)


# ---------------------------------------------------------------------------
# DET004 — global-state or unseeded random
# ---------------------------------------------------------------------------


def _det004(tree: ast.AST, module: str) -> Iterator[Finding]:
    """``random.*`` global-state calls, or ``random.Random()`` unseeded."""

    def visit(root: ast.AST, found: List[Finding]) -> None:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            pair = _attribute_pair(node.func)
            if pair is None or pair[0] != "random":
                continue
            if pair[1] in _GLOBAL_RANDOM_FUNCTIONS:
                found.append((
                    node.lineno,
                    node.col_offset,
                    _end_line(node),
                    f"random.{pair[1]}() uses the interpreter-global RNG "
                    "state; use a private random.Random seeded from "
                    "sha256 of the spec seed (the placer-anneal idiom)",
                ))
            elif pair[1] == "Random" and not node.args and not node.keywords:
                found.append((
                    node.lineno,
                    node.col_offset,
                    _end_line(node),
                    "random.Random() with no seed draws from OS entropy; "
                    "derive the seed from the spec (sha256 of seed and "
                    "workspace index, the placer-anneal idiom)",
                ))

    return _findings(tree, visit)


# ---------------------------------------------------------------------------
# DET005 — wall clock / UUIDs near serialised payloads
# ---------------------------------------------------------------------------


def _det005(tree: ast.AST, module: str) -> Iterator[Finding]:
    """Wall-clock or UUID calls in fingerprint/persistence modules."""

    def visit(root: ast.AST, found: List[Finding]) -> None:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            pair = _attribute_pair(node.func)
            if pair in _WALL_CLOCK_CALLS:
                found.append((
                    node.lineno,
                    node.col_offset,
                    _end_line(node),
                    f"{_WALL_CLOCK_CALLS[pair]} is run-dependent and must "
                    "not reach a serialised or fingerprinted payload; "
                    "byte-identical inputs must produce byte-identical "
                    "files",
                ))

    return _findings(tree, visit)


# ---------------------------------------------------------------------------
# ROB001 — non-atomic writes in persistence modules
# ---------------------------------------------------------------------------


def _rob001(tree: ast.AST, module: str) -> Iterator[Finding]:
    """``open(..., "w")``-family writes bypassing atomic_write_*."""

    def visit(root: ast.AST, found: List[Finding]) -> None:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call) or _call_name(node) != "open":
                continue
            mode_node: Optional[ast.expr] = None
            if len(node.args) >= 2:
                mode_node = node.args[1]
            else:
                mode_node = _keyword(node, "mode")
            if mode_node is None:
                continue
            if any(
                mode in _WRITE_MODES for mode in _literal_strings(mode_node)
            ):
                found.append((
                    node.lineno,
                    node.col_offset,
                    _end_line(node),
                    "artifact writes must be crash-safe; use "
                    "analysis.serialization.atomic_write_text/bytes "
                    "(temp file + fsync + os.replace) instead of a "
                    "direct open-for-write",
                ))

    return _findings(tree, visit)


# ---------------------------------------------------------------------------
# ROB002 — broad exception handlers that swallow silently
# ---------------------------------------------------------------------------


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names: List[ast.expr] = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(
        isinstance(name, ast.Name) and name.id in ("Exception", "BaseException")
        for name in names
    )


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """No re-raise and no counter increment anywhere in the handler body."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return False
            pair = _attribute_pair(node.func) if isinstance(node, ast.Call) else None
            if pair is not None and pair[0] == "STATS":
                return False
    return True


def _rob002(tree: ast.AST, module: str) -> Iterator[Finding]:
    """Bare/broad ``except`` that neither re-raises nor counts."""

    def visit(root: ast.AST, found: List[Finding]) -> None:
        for node in ast.walk(root):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad_handler(node) and _handler_swallows(node):
                # The span is the handler *header* only: an allow must sit
                # on the ``except`` line, not anywhere in the body.
                header_end = (
                    _end_line(node.type) if node.type is not None
                    else node.lineno
                )
                found.append((
                    node.lineno,
                    node.col_offset,
                    header_end,
                    "broad except swallows the failure invisibly; "
                    "re-raise a typed error, or record the fallback with "
                    "a STATS counter so degraded paths stay observable",
                ))

    return _findings(tree, visit)


# ---------------------------------------------------------------------------
# ROB003 — unpickling outside the checksum-verified readers
# ---------------------------------------------------------------------------


def _rob003(tree: ast.AST, module: str) -> Iterator[Finding]:
    """``pickle.load``/``loads`` anywhere but the shard readers."""

    def visit(root: ast.AST, found: List[Finding]) -> None:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            pair = _attribute_pair(node.func)
            if pair is not None and pair[0] == "pickle" and pair[1] in (
                "load", "loads",
            ):
                found.append((
                    node.lineno,
                    node.col_offset,
                    _end_line(node),
                    "pickle.load on unverified bytes executes arbitrary "
                    "code on corruption; only the checksum-verified shard "
                    "readers (analysis.sharding.read_shard) may unpickle",
                ))

    return _findings(tree, visit)


# ---------------------------------------------------------------------------
# PAR001 / PAR002 — worker-submission safety
# ---------------------------------------------------------------------------


def _submitted_callables(tree: ast.AST) -> List[ast.expr]:
    """Expressions handed to a worker pool / process / spec factory.

    Covers ``pool.submit(f, ...)``, ``Process(target=f)``, executor
    ``initializer=f``, and ``ExperimentSpec``/``replace`` factory
    keywords (``circuit_factory=`` / ``environment_factory=``) — every
    site where a callable crosses a process boundary by pickling.
    """
    submitted: List[ast.expr] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            submitted.append(node.args[0])
        for keyword in node.keywords:
            if keyword.arg in _WORKER_CALLABLE_KEYWORDS:
                submitted.append(keyword.value)
    return submitted


def _def_name_scopes(tree: ast.AST) -> Tuple[Set[str], Set[str]]:
    """(module-level def names, nested def names) in one pass."""
    module_level: Set[str] = set()
    nested: Set[str] = set()

    def walk(node: ast.AST, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                (module_level if depth == 0 else nested).add(child.name)
                walk(child, depth + 1)
            elif isinstance(child, ast.ClassDef):
                # Methods pickle via their class; only function nesting
                # makes a callable unreachable by reference.
                walk(child, depth)
            elif isinstance(child, ast.Lambda):
                walk(child, depth + 1)
            else:
                walk(child, depth)

    walk(tree, 0)
    return module_level, nested


def _par001(tree: ast.AST, module: str) -> Iterator[Finding]:
    """Lambda / nested def handed to a worker pool (pickles by reference)."""

    def visit(root: ast.AST, found: List[Finding]) -> None:
        module_level, nested = _def_name_scopes(root)
        for expr in _submitted_callables(root):
            flagged: Optional[str] = None
            if isinstance(expr, ast.Lambda):
                flagged = "a lambda"
            elif (
                isinstance(expr, ast.Name)
                and expr.id in nested
                and expr.id not in module_level
            ):
                flagged = f"nested function {expr.id!r}"
            if flagged is not None:
                found.append((
                    expr.lineno,
                    expr.col_offset,
                    _end_line(expr),
                    f"{flagged} is submitted to a worker pool but is not "
                    "module-level; callables pickle by reference, so "
                    "workers cannot import it and plan fingerprints "
                    "become process-dependent — define it at module "
                    "scope (functools.partial over a module-level "
                    "function is fine)",
                ))

    return _findings(tree, visit)


def _module_level_names(tree: ast.AST) -> Set[str]:
    """Names bound by assignment at module level (worker-shared state)."""
    names: Set[str] = set()
    for node in ast.iter_child_nodes(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _worker_defs(tree: ast.AST) -> List[ast.AST]:
    """Module-level defs executed inside worker processes."""
    wanted: Set[str] = set()
    for expr in _submitted_callables(tree):
        if isinstance(expr, ast.Name):
            wanted.add(expr.id)
    return [
        node
        for node in ast.iter_child_nodes(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name in wanted
    ]


def _par002(tree: ast.AST, module: str) -> Iterator[Finding]:
    """Worker-executed function mutating module-level state."""

    def visit(root: ast.AST, found: List[Finding]) -> None:
        shared = _module_level_names(root)
        for worker in _worker_defs(root):
            declared_global: Set[str] = set()
            for node in ast.walk(worker):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            for node in ast.walk(worker):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    hazard = False
                    if (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                    ):
                        hazard = True
                    elif isinstance(target, (ast.Subscript, ast.Attribute)):
                        base = target
                        while isinstance(base, (ast.Subscript, ast.Attribute)):
                            base = base.value
                        if (
                            isinstance(base, ast.Name)
                            and base.id in shared
                            and base.id != "STATS"
                        ):
                            hazard = True
                    if hazard:
                        found.append((
                            node.lineno,
                            node.col_offset,
                            _end_line(node),
                            "worker-executed function mutates module-level "
                            "state; per-process copies diverge and merge "
                            "back nondeterministically — return the value, "
                            "or record it via STATS counters (which merge "
                            "deterministically)",
                        ))

    return _findings(tree, visit)


# ---------------------------------------------------------------------------
# The catalog
# ---------------------------------------------------------------------------

RULES: Tuple[Rule, ...] = (
    Rule(
        code="DET001",
        summary="iteration over a set/frozenset follows hash order",
        scope=scopes.on_output_path,
        check=_det001,
        relaxed=True,
    ),
    Rule(
        code="DET002",
        summary="sorted/min/max keyed on repr/str/id bypasses "
        "node_index_table",
        scope=lambda module: (
            scopes.on_output_path(module)
            and not scopes.is_canonical_order_module(module)
        ),
        check=_det002,
        relaxed=True,
    ),
    Rule(
        code="DET003",
        summary="hash() builtin on the fingerprint path",
        scope=scopes.on_fingerprint_path,
        check=_det003,
    ),
    Rule(
        code="DET004",
        summary="global-state or unseeded random",
        scope=scopes.on_output_path,
        check=_det004,
        relaxed=True,
    ),
    Rule(
        code="DET005",
        summary="wall clock/UUID feeding serialised payloads",
        scope=lambda module: (
            scopes.on_fingerprint_path(module)
            or scopes.is_persistence_module(module)
        ),
        check=_det005,
    ),
    Rule(
        code="ROB001",
        summary="non-atomic artifact write in a persistence module",
        scope=lambda module: (
            scopes.is_persistence_module(module)
            and module != "repro.analysis.serialization"
        ),
        check=_rob001,
    ),
    Rule(
        code="ROB002",
        summary="broad except that swallows without re-raise or counter",
        scope=scopes.on_output_path,
        check=_rob002,
        relaxed=True,
    ),
    Rule(
        code="ROB003",
        summary="pickle.load outside the checksum-verified shard readers",
        scope=lambda module: (
            scopes.on_output_path(module) and not scopes.may_unpickle(module)
        ),
        check=_rob003,
    ),
    Rule(
        code="PAR001",
        summary="non-module-level callable submitted to a worker pool",
        scope=scopes.on_output_path,
        check=_par001,
    ),
    Rule(
        code="PAR002",
        summary="worker-executed function mutates module-level state",
        scope=scopes.on_output_path,
        check=_par002,
    ),
)


def rules_by_code() -> Dict[str, Rule]:
    """The catalog as a code-keyed mapping (codes are unique)."""
    return {rule.code: rule for rule in RULES}
