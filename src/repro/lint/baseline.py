"""The committed lint baseline: frozen debt, ratchet-only.

``lint_baseline.json`` (repository root) freezes the findings that
existed when a rule landed, keyed ``"<path>::<code>"`` with a count, so
the gate can be strict on *new* code without demanding a big-bang
cleanup of old code.  The semantics are a ratchet:

* a finding **above** its baselined count fails ``--check`` — new debt
  is never admitted silently;
* a baselined count **above** the current findings also fails — once a
  violation is fixed, ``--baseline`` must shrink the file, so the
  recorded debt only moves down and a fix cannot quietly regress later.

The file is canonical JSON (:func:`repro.analysis.serialization.dump_json`)
written atomically, so re-baselining is itself deterministic: the same
tree always produces the same baseline bytes.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.analysis.serialization import atomic_write_text, dump_json
from repro.exceptions import ReproError
from repro.lint.engine import Diagnostic, count_by_key

#: The baseline's canonical location, relative to the repository root.
BASELINE_FILENAME = "lint_baseline.json"

#: Format tag written into (and checked in) the baseline file.
BASELINE_FORMAT = "repro-lint-baseline"

#: Schema version of the baseline file.
BASELINE_SCHEMA_VERSION = 1


class BaselineError(ReproError):
    """A baseline file that cannot be read or is not a baseline."""


def baseline_key(diagnostic: Diagnostic) -> str:
    """The ``"<path>::<code>"`` key a diagnostic counts under.

    Line numbers are deliberately excluded: unrelated edits move
    violations around within a file, and a baseline that churns on every
    edit stops being reviewable.
    """
    return f"{diagnostic.path}::{diagnostic.code}"


def baseline_counts(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    """Current findings in baseline form (key -> count)."""
    return count_by_key(diagnostics, key=("path", "code"))


def render_baseline(diagnostics: Iterable[Diagnostic]) -> str:
    """The canonical baseline file content for the given findings."""
    return dump_json({
        "format": BASELINE_FORMAT,
        "schema_version": BASELINE_SCHEMA_VERSION,
        "entries": baseline_counts(diagnostics),
    })


def write_baseline(diagnostics: Iterable[Diagnostic], path: str) -> None:
    """Atomically (re)write the baseline file."""
    atomic_write_text(path, render_baseline(diagnostics))


def load_baseline(path: str) -> Dict[str, int]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(
            f"cannot read lint baseline {path!r}: {exc}"
        ) from exc
    if (
        not isinstance(payload, dict)
        or payload.get("format") != BASELINE_FORMAT
        or not isinstance(payload.get("entries"), dict)
    ):
        raise BaselineError(
            f"{path!r} is not a lint baseline (expected format "
            f"{BASELINE_FORMAT!r} with an 'entries' object)"
        )
    entries: Dict[str, int] = {}
    for key, value in payload["entries"].items():
        if not isinstance(key, str) or not isinstance(value, int) or value < 1:
            raise BaselineError(
                f"{path!r}: malformed baseline entry {key!r}: {value!r} "
                "(entries map 'path::CODE' to positive counts)"
            )
        entries[key] = value
    return entries


def compare_to_baseline(
    diagnostics: Iterable[Diagnostic], baseline: Mapping[str, int]
) -> Tuple[List[Diagnostic], List[str]]:
    """Split findings into (new beyond baseline, stale baseline keys).

    For each ``path::code`` key the first ``baseline[key]`` findings are
    absorbed (oldest lines first, the sort order); everything beyond is
    *new*.  Keys whose baselined count exceeds the current findings are
    *stale* — the ratchet must be tightened with ``--baseline``.
    """
    remaining = dict(baseline)
    fresh: List[Diagnostic] = []
    for diagnostic in sorted(diagnostics):
        key = baseline_key(diagnostic)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(diagnostic)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return fresh, stale
