"""Module tiers the lint rules scope themselves to.

Rules do not apply uniformly: ``hash()`` is fine in a ``__hash__``
implementation but forbidden where fingerprints are computed; a plain
``open(..., "w")`` is fine in a scratch script but not in the modules
that persist artifacts.  This module is the single place those tiers are
declared, so the rule catalog in ``docs/static-analysis.md`` and the
engine agree by construction.

Scopes are predicates over *dotted module names* (``repro.timing.trace``),
derived from file paths by :func:`repro.lint.engine.module_name_for`, so
fixture tests can exercise scoping without touching the filesystem.
"""

from __future__ import annotations

from typing import FrozenSet

#: Rule profiles.  ``strict`` (the ``repro.*`` source tree) runs every
#: rule under its scope predicate; ``relaxed`` (``scripts/`` and
#: ``benchmarks/``, which lint under bare stems no scope covers) runs
#: only the rules marked ``relaxed=True``, unconditionally.
PROFILE_STRICT = "strict"
PROFILE_RELAXED = "relaxed"

#: Every module under this prefix is on the deterministic output path:
#: placements, sweep tables, traces and shard payloads are all derived
#: from values these modules compute.
OUTPUT_PATH_PREFIX = "repro."

#: The sanctioned home of the canonical node order.  ``node_index_table``
#: necessarily contains the one ``sorted(..., key=repr)`` everything else
#: must route through, so DET002 exempts this module (and only it).
CANONICAL_ORDER_MODULE = "repro.core._bitset"

#: Modules that compute or consume grid/payload fingerprints.  ``hash()``
#: here (DET003) would make an identity PYTHONHASHSEED-dependent; the
#: sanctioned primitive is ``hashlib.sha256`` over canonical bytes.
FINGERPRINT_MODULES: FrozenSet[str] = frozenset({
    "repro.analysis.resilience",
    "repro.analysis.runner",
    "repro.analysis.serialization",
    "repro.analysis.sharding",
    "repro.api",
    "repro.cli",
    "repro.core.fine_tuning",
    "repro.core.placement",
    "repro.core.placers.anneal",
    "repro.core.placers.base",
    "repro.core.placers.exact",
    "repro.lint.cache",
    "repro.timing._native",
    "repro.timing._replay",
    "repro.timing.scheduler",
})

#: Modules that write artifacts other processes read back.  Writes here
#: must go through ``analysis.serialization.atomic_write_text/bytes``
#: (ROB001) so a crash never leaves a torn file.
PERSISTENCE_MODULES: FrozenSet[str] = frozenset({
    "repro.analysis.resilience",
    "repro.analysis.serialization",
    "repro.analysis.sharding",
    "repro.circuits.qasm",
    "repro.cli",
    "repro.config",
    "repro.core.fine_tuning",
    "repro.core.placement",
    "repro.core.placers.base",
    "repro.core.placers.exact",
    "repro.hardware.io",
    "repro.lint.__main__",
    "repro.lint.baseline",
    "repro.lint.cache",
    "repro.lint.cli",
    "repro.lint.reachability",
    "repro.timing._native",
    "repro.timing._replay",
    "repro.timing.scheduler",
})

#: The only modules allowed to call ``pickle.load``/``pickle.loads``
#: (ROB003): the shard readers, which verify an embedded SHA-256 payload
#: checksum before unpickling anything.
PICKLE_SANCTIONED_MODULES: FrozenSet[str] = frozenset({
    "repro.analysis.sharding",
})


def on_output_path(module: str) -> bool:
    """Whether ``module`` contributes to deterministic output."""
    return module.startswith(OUTPUT_PATH_PREFIX) or module == "repro"


def on_fingerprint_path(module: str) -> bool:
    """Whether ``module`` computes or consumes content fingerprints."""
    return module in FINGERPRINT_MODULES


def is_persistence_module(module: str) -> bool:
    """Whether ``module`` writes artifacts other processes read back."""
    return module in PERSISTENCE_MODULES


def may_unpickle(module: str) -> bool:
    """Whether ``module`` is a sanctioned (checksum-verified) unpickler."""
    return module in PICKLE_SANCTIONED_MODULES


def is_canonical_order_module(module: str) -> bool:
    """Whether ``module`` is the sanctioned ``key=repr`` sink itself."""
    return module == CANONICAL_ORDER_MODULE


def profile_for_module(module: str) -> str:
    """The rule profile a dotted module lints under."""
    return PROFILE_STRICT if on_output_path(module) else PROFILE_RELAXED
