"""Computed scopes and the project-level (call-graph) rules.

Where :mod:`repro.lint.rules` pattern-matches one file at a time, the
rules here consume the whole :class:`~repro.lint.graph.ProjectGraph`:

* **SCOPE001** — the declared module sets in ``repro/lint/scopes.py``
  (``FINGERPRINT_MODULES``, ``PERSISTENCE_MODULES``,
  ``PICKLE_SANCTIONED_MODULES``) must match the sets *computed* from the
  code: a module is on the fingerprint path iff one of its defs
  transitively reaches a ``hashlib.sha256`` callsite, on the persistence
  path iff it reaches a file-write sink, on the pickle surface iff it
  reaches ``pickle.load``/``loads``.  Divergence is a finding anchored at
  the declared set, naming the drifted module, fixable with
  ``python -m repro.lint --update-scopes`` (or a justified allow).
  The pickle set is only checked for *staleness* — an undeclared
  unpickler is already ROB003's per-file finding.
* **PAR003** — a mutable default argument on a registry provider
  (``@<REGISTRY>.register(...)``) or on a method of a ``Placer``
  subclass.  Providers are long-lived shared callables: a mutated
  default leaks state across cells, workers and registry lookups.
* **SER001** — ``json.dump``/``dumps`` without ``sort_keys=True`` in a
  module on the computed serialization path (persistence or
  fingerprint): non-canonical key order breaks byte-identity.

Raw findings are ``(module, line, col, end_line, code, message)``; the
engine maps modules back to display paths and applies inline
suppressions exactly as for per-file rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.lint.graph import (
    DefSummary,
    ModuleSummary,
    ProjectGraph,
    SINK_PICKLE_LOAD,
    SINK_SHA256,
    SINK_WRITE,
)

#: A project-rule finding before path mapping:
#: (module, line, col, end_line, code, message).
ProjectFinding = Tuple[str, int, int, int, str, str]

#: The module whose declared sets SCOPE001 audits, and the names of
#: those sets with the sink each one is computed from.
SCOPES_MODULE = "repro.lint.scopes"
DECLARED_SETS: Tuple[Tuple[str, str], ...] = (
    ("FINGERPRINT_MODULES", SINK_SHA256),
    ("PERSISTENCE_MODULES", SINK_WRITE),
    ("PICKLE_SANCTIONED_MODULES", SINK_PICKLE_LOAD),
)

#: The class whose subclasses PAR003 audits for mutable defaults.
PLACER_ROOT = ("repro.core.placers.base", "Placer")

#: Summaries of the project rules (the per-file catalog lives in
#: :data:`repro.lint.rules.RULES`).
PROJECT_RULE_SUMMARIES: Dict[str, str] = {
    "SCOPE001": "declared scope sets in lint/scopes.py drifted from the "
    "computed reachability sets",
    "PAR003": "mutable default argument on a registry provider or Placer "
    "subclass",
    "SER001": "json.dump* without sort_keys=True on the serialization path",
}


@dataclass(frozen=True)
class ComputedScopes:
    """The reachability-derived counterparts of the declared sets."""

    fingerprint: FrozenSet[str]
    persistence: FrozenSet[str]
    pickle: FrozenSet[str]

    def for_set(self, name: str) -> FrozenSet[str]:
        if name == "FINGERPRINT_MODULES":
            return self.fingerprint
        if name == "PERSISTENCE_MODULES":
            return self.persistence
        if name == "PICKLE_SANCTIONED_MODULES":
            return self.pickle
        raise KeyError(name)


def compute_scopes(graph: ProjectGraph, prefix: str = "repro") -> ComputedScopes:
    """Compute the fingerprint/persistence/pickle sets from the graph.

    Fingerprint and persistence are *transitive* (a module whose output
    feeds a fingerprint or an artifact file is on the path even when the
    sink lives downstream); the pickle surface is *direct* callsites
    only — "sanctioned to unpickle" must not leak to mere callers of the
    checksum-verified readers.
    """
    return ComputedScopes(
        fingerprint=frozenset(graph.modules_reaching(SINK_SHA256, prefix)),
        persistence=frozenset(graph.modules_reaching(SINK_WRITE, prefix)),
        pickle=frozenset(graph.modules_with_sink(SINK_PICKLE_LOAD, prefix)),
    )


def _declared_values(
    summary: Optional[ModuleSummary], name: str
) -> Optional[Tuple[int, FrozenSet[str]]]:
    if summary is None:
        return None
    entry = summary.set_constants.get(name)
    if entry is None:
        return None
    line, values = entry
    return line, frozenset(values)


def scope_findings(
    graph: ProjectGraph,
    computed: Optional[ComputedScopes] = None,
    scopes_module: str = SCOPES_MODULE,
) -> List[ProjectFinding]:
    """SCOPE001: declared-vs-computed drift, both directions."""
    summary = graph.modules.get(scopes_module)
    if summary is None:
        return []
    if computed is None:
        computed = compute_scopes(graph)
    findings: List[ProjectFinding] = []
    for name, sink in DECLARED_SETS:
        declared = _declared_values(summary, name)
        if declared is None:
            continue
        line, declared_values = declared
        computed_values = computed.for_set(name)
        stale_only = name == "PICKLE_SANCTIONED_MODULES"
        if not stale_only:
            for module in sorted(computed_values - declared_values):
                findings.append((
                    scopes_module, line, 0, line, "SCOPE001",
                    f"computed {sink} path includes {module!r} but "
                    f"{name} does not declare it; run 'python -m "
                    "repro.lint --update-scopes' or add a justified "
                    "# repro: allow[SCOPE001]",
                ))
        for module in sorted(declared_values - computed_values):
            findings.append((
                scopes_module, line, 0, line, "SCOPE001",
                f"{name} declares {module!r} but no def there reaches a "
                f"{sink} sink; run 'python -m repro.lint --update-scopes' "
                "to drop the stale entry",
            ))
    return findings


def _mutable_default_findings(
    module: str, info: DefSummary, context: str
) -> List[ProjectFinding]:
    findings: List[ProjectFinding] = []
    for arg, line, col, end_line in info.mutable_defaults:
        findings.append((
            module, line, col, end_line, "PAR003",
            f"mutable default for {arg!r} on {context} "
            f"{info.qualname!r} is shared across every call and registry "
            "lookup; default to None and build the container in the body",
        ))
    return findings


def par003_findings(graph: ProjectGraph) -> List[ProjectFinding]:
    """PAR003: mutable defaults on providers and Placer subclasses."""
    findings: List[ProjectFinding] = []
    for module, info in graph.registry_providers():
        findings.extend(
            _mutable_default_findings(module, info, "registry provider")
        )
        if info.kind == "class":
            summary = graph.modules[module]
            for qualname in sorted(summary.defs):
                if qualname.startswith(info.qualname + "."):
                    findings.extend(_mutable_default_findings(
                        module, summary.defs[qualname], "registry provider"
                    ))
    placer_classes = graph.subclasses_of(PLACER_ROOT)
    for module, class_qualname in sorted(placer_classes):
        summary = graph.modules[module]
        for qualname in sorted(summary.defs):
            if qualname.startswith(class_qualname + "."):
                findings.extend(_mutable_default_findings(
                    module, summary.defs[qualname], "Placer subclass"
                ))
    return sorted(set(findings))


def ser001_findings(
    graph: ProjectGraph, computed: Optional[ComputedScopes] = None
) -> List[ProjectFinding]:
    """SER001: non-canonical json.dump* on the serialization path."""
    if computed is None:
        computed = compute_scopes(graph)
    serialization_path = computed.persistence | computed.fingerprint
    findings: List[ProjectFinding] = []
    for module in sorted(serialization_path):
        summary = graph.modules.get(module)
        if summary is None:
            continue
        for line, col, end_line, canonical in summary.json_dumps:
            if not canonical:
                findings.append((
                    module, line, col, end_line, "SER001",
                    "json.dump* without sort_keys=True in a module on the "
                    "serialization path emits non-canonical key order; "
                    "use analysis.serialization.dump_json (or pass "
                    "sort_keys=True)",
                ))
    return findings


def project_findings(graph: ProjectGraph) -> List[ProjectFinding]:
    """All project-rule findings for an assembled graph, sorted."""
    computed = compute_scopes(graph)
    findings: List[ProjectFinding] = []
    findings.extend(scope_findings(graph, computed))
    findings.extend(par003_findings(graph))
    findings.extend(ser001_findings(graph, computed))
    return sorted(findings)


# ---------------------------------------------------------------------------
# --update-scopes: rewrite the declared sets from the computed ones
# ---------------------------------------------------------------------------


def render_module_set(values: FrozenSet[str], indent: str = "    ") -> str:
    """The canonical source form of a declared module set."""
    if not values:
        return "frozenset()"
    lines = [f'{indent}"{value}",' for value in sorted(values)]
    return "frozenset({\n" + "\n".join(lines) + "\n})"


def update_scopes_source(source: str, computed: ComputedScopes) -> str:
    """``scopes.py`` source with the declared sets replaced by the
    computed ones (everything else byte-preserved)."""
    tree = ast.parse(source)
    lines = source.splitlines(keepends=True)
    offsets = [0]
    for line in lines:
        offsets.append(offsets[-1] + len(line))

    def absolute(line: int, col: int) -> int:
        return offsets[line - 1] + col

    replacements: List[Tuple[int, int, str]] = []
    wanted = {name for name, _sink in DECLARED_SETS}
    for node in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if (
            target is None
            or value is None
            or not isinstance(target, ast.Name)
            or target.id not in wanted
        ):
            continue
        start = absolute(value.lineno, value.col_offset)
        end = absolute(
            value.end_lineno or value.lineno, value.end_col_offset or 0
        )
        replacements.append(
            (start, end, render_module_set(computed.for_set(target.id)))
        )
    result = source
    for start, end, text in sorted(replacements, reverse=True):
        result = result[:start] + text + result[end:]
    return result


def update_scopes_file(path: str, computed: ComputedScopes) -> bool:
    """Rewrite ``path`` in place; returns whether anything changed."""
    from repro.analysis.serialization import atomic_write_text

    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    updated = update_scopes_source(source, computed)
    if updated == source:
        return False
    atomic_write_text(path, updated)
    return True
