"""The rule engine: parse, match, suppress, and report.

One file is linted by parsing it once with :mod:`ast`, running every
per-file rule whose scope covers the file's dotted module name (under
the file's *profile* — strict for ``src``, relaxed for ``scripts/`` and
``benchmarks/``), extracting the :class:`~repro.lint.graph.ModuleSummary`
the whole-program rules need, and dropping findings acknowledged by an
inline suppression::

    root = min(component, key=repr)  # repro: allow[DET002]

A suppression names the rule code(s) it acknowledges
(``allow[DET001,ROB002]`` for several).  It matches a finding when it
sits on **any physical line of the flagged node**, or on the first line
of the innermost enclosing statement (and, for simple statements, the
last) — so multi-line calls can carry the allow on whichever line reads
best.

When the analyzed file set covers the whole ``repro`` package (the
``src/repro/__init__.py`` module is present), the per-module summaries
are assembled into a :class:`~repro.lint.graph.ProjectGraph` and the
project rules (SCOPE001, PAR003, SER001 — :mod:`repro.lint.reachability`)
run on top.  Partial-tree invocations (single files, the lint package's
self-check) skip them: computed scopes over a fragment would be
meaningless.

Everything here is deterministic by construction — files are walked in
sorted order and diagnostics sorted by (path, line, column, code) — so
the linter's own output is byte-identical across ``--jobs`` values and
cache states, and passes the determinism contract it enforces.
"""

from __future__ import annotations

import ast
import os
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.lint import reachability
from repro.lint.cache import DiagnosticCache
from repro.lint.graph import ModuleSummary, ProjectGraph, summarize_tree
from repro.lint.rules import RULES, Rule
from repro.lint.scopes import (
    PROFILE_RELAXED,
    PROFILE_STRICT,
    profile_for_module,
)

#: Inline suppression syntax: ``# repro: allow[CODE]`` or
#: ``# repro: allow[CODE1,CODE2]`` anywhere in a line's trailing comment.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]"
)

#: Directory trees (relative to the repository root) the default lint
#: run covers, with the profile each one lints under.
DEFAULT_TARGETS: Tuple[Tuple[str, str], ...] = (
    (os.path.join("src", "repro"), PROFILE_STRICT),
    ("scripts", PROFILE_RELAXED),
    ("benchmarks", PROFILE_RELAXED),
)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: where, which rule, and what to do instead."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """The one-line human-readable form (``path:line:col: CODE msg``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-safe form (canonically serialisable)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            code=str(payload["code"]),
            message=str(payload["message"]),
        )


@dataclass
class FileAnalysis:
    """Everything one parse produced: per-file diagnostics + summary."""

    path: str
    module: str
    profile: str
    diagnostics: List[Diagnostic]
    summary: Optional[ModuleSummary]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "profile": self.profile,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": self.summary.to_dict() if self.summary else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FileAnalysis":
        summary = payload.get("summary")
        return cls(
            path=str(payload["path"]),
            module=str(payload["module"]),
            profile=str(payload["profile"]),
            diagnostics=[
                Diagnostic.from_dict(entry) for entry in payload["diagnostics"]
            ],
            summary=(
                ModuleSummary.from_dict(summary) if summary is not None else None
            ),
        )


def module_name_for(path: str, root: Optional[str] = None) -> str:
    """The dotted module name a file path lints as.

    Strips ``root`` (when given) and any leading ``src/`` segment, drops
    the ``.py`` suffix, and joins the rest with dots —
    ``src/repro/timing/trace.py`` becomes ``repro.timing.trace``;
    ``__init__.py`` files name their package.  Files outside any package
    (scripts) lint under their bare stem.
    """
    relative = os.path.normpath(path)
    if root is not None:
        root_norm = os.path.normpath(root)
        if relative.startswith(root_norm + os.sep):
            relative = relative[len(root_norm) + 1:]
    parts = relative.replace("\\", "/").split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part not in ("", ".", ".."))


def suppressed_lines(source: str) -> Dict[int, FrozenSet[str]]:
    """Per-line inline suppressions: line number -> allowed rule codes."""
    suppressions: Dict[int, FrozenSet[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is not None:
            codes = frozenset(
                token.strip().upper()
                for token in match.group(1).split(",")
                if token.strip()
            )
            if codes:
                suppressions[number] = codes
    return suppressions


def statement_spans(tree: ast.AST) -> List[Tuple[int, int, bool]]:
    """Sorted (start, end, is_simple) spans of every statement.

    A statement is *simple* when it has no nested statement body
    (assignments, expression statements, returns); for those an allow on
    the closing line is as readable as one on the first.  Compound
    statements (``for``, ``with``, ``def`` …) only honour their header
    line, so a suppression cannot silently blanket a whole block.
    """
    spans: List[Tuple[int, int, bool]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = int(getattr(node, "end_lineno", None) or node.lineno)
        body = getattr(node, "body", None)
        compound = bool(
            isinstance(body, list) and body and isinstance(body[0], ast.stmt)
        )
        spans.append((node.lineno, end, not compound))
    return sorted(spans)


def suppression_covers(
    code: str,
    line: int,
    end_line: int,
    suppressions: Mapping[int, Iterable[str]],
    spans: Sequence[Tuple[int, int, bool]],
) -> bool:
    """Whether an inline allow for ``code`` matches a finding's span."""
    if not suppressions:
        return False
    candidates = set(range(line, max(line, end_line) + 1))
    enclosing: Optional[Tuple[int, int, bool]] = None
    for span in spans:
        if span[0] <= line <= span[1]:
            if (
                enclosing is None
                or span[0] > enclosing[0]
                or (span[0] == enclosing[0] and span[1] < enclosing[1])
            ):
                enclosing = span
    if enclosing is not None:
        candidates.add(enclosing[0])
        if enclosing[2]:
            candidates.add(enclosing[1])
    return any(
        code in suppressions.get(candidate, ())
        for candidate in sorted(candidates)
    )


def analyze_source(
    source: str,
    module: str,
    path: str = "<string>",
    profile: str = PROFILE_STRICT,
    rules: Sequence[Rule] = RULES,
    is_package: bool = False,
) -> FileAnalysis:
    """Analyze one source string: per-file diagnostics plus summary.

    A file that does not parse yields a single ``PARSE`` diagnostic and
    no summary rather than crashing the run — a syntax error is caught
    by the test suite anyway; the linter must still report the rest of
    the tree.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return FileAnalysis(
            path=path,
            module=module,
            profile=profile,
            diagnostics=[
                Diagnostic(
                    path=path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    code="PARSE",
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            summary=None,
        )
    suppressions = suppressed_lines(source)
    spans = statement_spans(tree)
    diagnostics: List[Diagnostic] = []
    for rule in rules:
        if not rule.applies_to(module, profile):
            continue
        for line, col, end_line, message in rule.check(tree, module):
            if suppression_covers(
                rule.code, line, end_line, suppressions, spans
            ):
                continue
            diagnostics.append(
                Diagnostic(
                    path=path, line=line, col=col, code=rule.code,
                    message=message,
                )
            )
    summary = summarize_tree(
        tree,
        module,
        path,
        profile,
        is_package=is_package,
        suppressions=suppressions,
        statements=spans,
    )
    return FileAnalysis(
        path=path,
        module=module,
        profile=profile,
        diagnostics=sorted(diagnostics),
        summary=summary,
    )


def lint_source(
    source: str,
    module: str,
    path: str = "<string>",
    rules: Sequence[Rule] = RULES,
) -> List[Diagnostic]:
    """Lint one source string as dotted module ``module`` (strict
    profile), returning diagnostics sorted by (line, column, code)."""
    return analyze_source(source, module, path=path, rules=rules).diagnostics


def profile_for_path(path: str, root: Optional[str] = None) -> str:
    """The rule profile a file path lints under (module-name based)."""
    return profile_for_module(module_name_for(path, root=root))


def _display_path(path: str, root: Optional[str]) -> str:
    display = os.path.relpath(path, root) if root is not None else path
    return display.replace(os.sep, "/")


def analyze_file(
    path: str,
    root: Optional[str] = None,
    rules: Sequence[Rule] = RULES,
    source: Optional[str] = None,
) -> FileAnalysis:
    """Analyze one file; diagnostics carry ``path`` relative to ``root``."""
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    module = module_name_for(path, root=root)
    return analyze_source(
        source,
        module,
        path=_display_path(path, root),
        profile=profile_for_module(module),
        rules=rules,
        is_package=os.path.basename(path) == "__init__.py",
    )


def lint_file(
    path: str,
    root: Optional[str] = None,
    rules: Sequence[Rule] = RULES,
) -> List[Diagnostic]:
    """Lint one file; diagnostics carry ``path`` relative to ``root``."""
    return analyze_file(path, root=root, rules=rules).diagnostics


def _python_files(target: str) -> List[str]:
    """Every ``.py`` file under ``target`` (or ``target`` itself), sorted."""
    if os.path.isfile(target):
        return [target]
    collected: List[str] = []
    for directory, subdirectories, files in os.walk(target):
        subdirectories[:] = sorted(
            name for name in subdirectories if name != "__pycache__"
        )
        for name in sorted(files):
            if name.endswith(".py"):
                collected.append(os.path.join(directory, name))
    return collected


def _pool_analyze(task: Tuple[str, Optional[str], str]) -> Dict[str, Any]:
    """Worker entry point: analyze one file under the default catalog."""
    path, root, source = task
    return analyze_file(path, root=root, source=source).to_dict()


def project_diagnostics(
    analyses: Sequence[FileAnalysis],
) -> List[Diagnostic]:
    """SCOPE001/PAR003/SER001 findings over assembled strict summaries.

    Only meaningful when the analyses cover the whole package — callers
    gate on that (:func:`lint_paths`).
    """
    summaries = [
        analysis.summary
        for analysis in analyses
        if analysis.summary is not None
        and analysis.profile == PROFILE_STRICT
    ]
    graph = ProjectGraph(summaries)
    by_module = {
        summary.module: summary for summary in summaries
    }
    diagnostics: List[Diagnostic] = []
    for module, line, col, end_line, code, message in (
        reachability.project_findings(graph)
    ):
        summary = by_module.get(module)
        if summary is None:
            continue
        if suppression_covers(
            code, line, end_line, summary.suppressions,
            [tuple(span) for span in summary.statements],
        ):
            continue
        diagnostics.append(
            Diagnostic(
                path=summary.path, line=line, col=col, code=code,
                message=message,
            )
        )
    return sorted(diagnostics)


def _covers_whole_package(analyses: Sequence[FileAnalysis]) -> bool:
    """Whether the analyzed set includes the ``repro`` package root."""
    return any(analysis.module == "repro" for analysis in analyses)


def analyze_paths(
    targets: Iterable[str],
    root: Optional[str] = None,
    rules: Sequence[Rule] = RULES,
    jobs: int = 1,
    cache: Optional[DiagnosticCache] = None,
) -> List[FileAnalysis]:
    """Analyze files and directory trees; one path-ordered analysis list.

    ``jobs`` > 1 fans the per-file analysis out over a process pool;
    ``cache`` short-circuits files whose content hash is already known.
    Both are pure accelerations: the result is byte-identical for any
    combination of jobs and cache state.
    """
    files: List[str] = []
    for target in targets:
        files.extend(_python_files(target))
    ordered = sorted(dict.fromkeys(files))

    analyses: Dict[str, FileAnalysis] = {}
    pending: List[Tuple[str, str, str]] = []  # (path, source, cache key)
    for path in ordered:
        with open(path, "rb") as handle:
            raw = handle.read()
        source = raw.decode("utf-8")
        key = ""
        if cache is not None:
            module = module_name_for(path, root=root)
            key = cache.key(module, profile_for_module(module), raw)
            payload = cache.load(key)
            if payload is not None:
                analyses[path] = FileAnalysis.from_dict(payload)
                continue
        pending.append((path, source, key))

    custom_rules = rules is not RULES
    fresh: List[Tuple[str, FileAnalysis]] = []
    if jobs > 1 and len(pending) > 1 and not custom_rules:
        tasks = [(path, root, source) for path, source, _key in pending]
        workers = min(jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for (path, _source, key), payload in zip(
                pending, pool.map(_pool_analyze, tasks)
            ):
                fresh.append((key, FileAnalysis.from_dict(payload)))
    else:
        for path, source, key in pending:
            fresh.append(
                (key, analyze_file(path, root=root, rules=rules, source=source))
            )
    for index, (path, _source, _key) in enumerate(pending):
        key, analysis = fresh[index]
        analyses[path] = analysis
        if cache is not None and key and not custom_rules:
            cache.store(key, analysis.to_dict())

    return [analyses[path] for path in ordered]


def lint_paths(
    targets: Iterable[str],
    root: Optional[str] = None,
    rules: Sequence[Rule] = RULES,
    jobs: int = 1,
    cache: Optional[DiagnosticCache] = None,
) -> List[Diagnostic]:
    """Lint files and directory trees; one sorted diagnostic list.

    Project rules (SCOPE001, PAR003, SER001) run iff the file set covers
    the whole ``repro`` package (its ``__init__`` module is present).
    """
    analyses = analyze_paths(
        targets, root=root, rules=rules, jobs=jobs, cache=cache
    )
    diagnostics: List[Diagnostic] = []
    for analysis in analyses:
        diagnostics.extend(analysis.diagnostics)
    if _covers_whole_package(analyses):
        diagnostics.extend(project_diagnostics(analyses))
    return sorted(diagnostics)


def default_targets(root: str) -> List[str]:
    """The directory trees a full lint run covers (existing ones only)."""
    targets = []
    for relative, _profile in DEFAULT_TARGETS:
        candidate = os.path.join(root, relative)
        if os.path.isdir(candidate):
            targets.append(candidate)
    return targets


def lint_tree(
    root: str,
    rules: Sequence[Rule] = RULES,
    jobs: int = 1,
    cache: Optional[DiagnosticCache] = None,
) -> List[Diagnostic]:
    """Lint the default trees of a repository root (``src/repro``,
    ``scripts``, ``benchmarks``) including the project rules."""
    return lint_paths(
        default_targets(root), root=root, rules=rules, jobs=jobs, cache=cache
    )


def count_by_key(
    diagnostics: Iterable[Diagnostic],
    key: "Tuple[str, ...]" = ("path", "code"),
) -> Dict[str, int]:
    """Diagnostic counts keyed ``"<field>::<field>"`` (baseline form)."""
    counts: Dict[str, int] = {}
    for diagnostic in diagnostics:
        label = "::".join(str(getattr(diagnostic, field)) for field in key)
        counts[label] = counts.get(label, 0) + 1
    return counts
