"""The rule engine: parse, match, suppress, and report.

One file is linted by parsing it once with :mod:`ast`, running every
rule whose scope covers the file's dotted module name, and dropping
findings acknowledged by an inline suppression::

    root = min(component, key=repr)  # repro: allow[DET002]

A suppression names the rule code(s) it acknowledges
(``allow[DET001,ROB002]`` for several) and applies to its own line only,
so it sits next to the pattern it excuses and disappears with it.

Everything here is deterministic by construction — files are walked in
sorted order and diagnostics sorted by (path, line, column, code) — so
the linter's own output passes the determinism contract it enforces.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.lint.rules import RULES, Rule

#: Inline suppression syntax: ``# repro: allow[CODE]`` or
#: ``# repro: allow[CODE1,CODE2]`` anywhere in a line's trailing comment.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]"
)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: where, which rule, and what to do instead."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """The one-line human-readable form (``path:line:col: CODE msg``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-safe form (canonically serialisable)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def module_name_for(path: str, root: Optional[str] = None) -> str:
    """The dotted module name a file path lints as.

    Strips ``root`` (when given) and any leading ``src/`` segment, drops
    the ``.py`` suffix, and joins the rest with dots —
    ``src/repro/timing/trace.py`` becomes ``repro.timing.trace``;
    ``__init__.py`` files name their package.  Files outside any package
    (scripts) lint under their bare stem.
    """
    relative = os.path.normpath(path)
    if root is not None:
        root_norm = os.path.normpath(root)
        if relative.startswith(root_norm + os.sep):
            relative = relative[len(root_norm) + 1:]
    parts = relative.replace("\\", "/").split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part not in ("", ".", ".."))


def suppressed_lines(source: str) -> Dict[int, FrozenSet[str]]:
    """Per-line inline suppressions: line number -> allowed rule codes."""
    suppressions: Dict[int, FrozenSet[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is not None:
            codes = frozenset(
                token.strip().upper()
                for token in match.group(1).split(",")
                if token.strip()
            )
            if codes:
                suppressions[number] = codes
    return suppressions


def lint_source(
    source: str,
    module: str,
    path: str = "<string>",
    rules: Sequence[Rule] = RULES,
) -> List[Diagnostic]:
    """Lint one source string as dotted module ``module``.

    Returns the diagnostics sorted by (line, column, code), inline
    suppressions already applied.  A file that does not parse yields a
    single ``PARSE`` diagnostic rather than crashing the run — a syntax
    error is caught by the test suite anyway; the linter must still
    report the rest of the tree.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code="PARSE",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    suppressions = suppressed_lines(source)
    diagnostics: List[Diagnostic] = []
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for line, col, message in rule.check(tree, module):
            allowed = suppressions.get(line, frozenset())
            if rule.code in allowed:
                continue
            diagnostics.append(
                Diagnostic(
                    path=path, line=line, col=col, code=rule.code,
                    message=message,
                )
            )
    return sorted(diagnostics)


def lint_file(
    path: str,
    root: Optional[str] = None,
    rules: Sequence[Rule] = RULES,
) -> List[Diagnostic]:
    """Lint one file; diagnostics carry ``path`` relative to ``root``."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    display = os.path.relpath(path, root) if root is not None else path
    display = display.replace(os.sep, "/")
    return lint_source(
        source, module_name_for(path, root=root), path=display, rules=rules
    )


def _python_files(target: str) -> List[str]:
    """Every ``.py`` file under ``target`` (or ``target`` itself), sorted."""
    if os.path.isfile(target):
        return [target]
    collected: List[str] = []
    for directory, subdirectories, files in os.walk(target):
        subdirectories[:] = sorted(
            name for name in subdirectories if name != "__pycache__"
        )
        for name in sorted(files):
            if name.endswith(".py"):
                collected.append(os.path.join(directory, name))
    return collected


def lint_paths(
    targets: Iterable[str],
    root: Optional[str] = None,
    rules: Sequence[Rule] = RULES,
) -> List[Diagnostic]:
    """Lint files and directory trees; one sorted diagnostic list."""
    files: List[str] = []
    for target in targets:
        files.extend(_python_files(target))
    diagnostics: List[Diagnostic] = []
    for path in sorted(dict.fromkeys(files)):
        diagnostics.extend(lint_file(path, root=root, rules=rules))
    return sorted(diagnostics)


def lint_tree(
    root: str, rules: Sequence[Rule] = RULES
) -> List[Diagnostic]:
    """Lint the default tree of a repository root: ``<root>/src/repro``."""
    return lint_paths(
        [os.path.join(root, "src", "repro")], root=root, rules=rules
    )


def count_by_key(
    diagnostics: Iterable[Diagnostic],
    key: "Tuple[str, ...]" = ("path", "code"),
) -> Dict[str, int]:
    """Diagnostic counts keyed ``"<field>::<field>"`` (baseline form)."""
    counts: Dict[str, int] = {}
    for diagnostic in diagnostics:
        label = "::".join(str(getattr(diagnostic, field)) for field in key)
        counts[label] = counts.get(label, 0) + 1
    return counts
