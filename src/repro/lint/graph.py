"""Whole-program facts: import graph, symbol tables, call-graph edges.

The per-file rules in :mod:`repro.lint.rules` see one ``ast`` tree at a
time; the project rules (SCOPE001, PAR003, SER001) need to know how
modules relate — who imports whom, which def calls which, and where the
fingerprint/persistence/pickle *sinks* are.  This module extracts a
compact, JSON-serialisable :class:`ModuleSummary` from each parse (the
same single ``ast.parse`` the engine already does) and assembles the
summaries into a :class:`ProjectGraph`.

The call graph is a deliberately **conservative approximation**:

* only *statically resolvable* callees produce edges — bare names bound
  by ``import``/``from ... import``, module-level defs, ``self.method``
  within the defining class, ``Class.method`` attribute chains, and
  names pulled in by ``from x import *`` (checked against the star
  target's top-level defs);
* method calls on arbitrary objects (``plan.save()``) resolve to
  nothing — a *miss*, never a wrong edge — so reachability answers are
  sound for the sinks rules care about, which this codebase reaches via
  module-level helpers;
* instantiating a project class adds edges to its ``__init__`` and
  ``__post_init__`` when present;
* code nested below a tracked def (inner functions, lambdas) folds into
  the nearest tracked ancestor: an inner function only runs when its
  owner does, so attributing its calls upward over-approximates reach.

Import cycles are fine throughout: reachability is a reverse BFS over
edges, which terminates regardless of cycles.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: Serialisation schema of :class:`ModuleSummary` payloads (bump on any
#: field change so cached summaries from older catalogs are discarded).
SUMMARY_SCHEMA_VERSION = 1

#: Sink kinds a def can hit directly (see :func:`_sink_kinds_for_call`).
SINK_SHA256 = "sha256"
SINK_WRITE = "write"
SINK_PICKLE_LOAD = "pickle_load"

#: ``open()`` modes that touch file contents: the write sinks reachability
#: tracks.  Wider than ROB001's create/truncate list — ``r+`` in-place
#: edits (``resilience.corrupt_file``) persist bytes too.
_WRITE_SINK_MODES = frozenset({
    "w", "wb", "w+", "wb+", "x", "xb", "a", "ab", "a+",
    "r+", "rb+", "r+b",
})

#: Attribute method names that write a file wherever they appear
#: (``pathlib.Path.write_text`` / ``write_bytes``).
_WRITE_ATTR_METHODS = frozenset({"write_text", "write_bytes"})

#: Fully-resolved call targets that are write sinks on their own.
_WRITE_CALL_TARGETS = frozenset({"os.replace", "os.rename", "os.fdopen"})

#: The pseudo-def holding module-level statements (import-time code).
MODULE_DEF = "<module>"


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``"a.b.c"`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` id under a Subscript/Attribute chain, if any."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _end_line(node: ast.AST) -> int:
    return int(getattr(node, "end_lineno", None) or getattr(node, "lineno", 1))


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray")
    return False


def _literal_string_values(node: ast.expr) -> Optional[List[str]]:
    """The element strings of a set/list/tuple of constants, else None."""
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        values: List[str] = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            values.append(element.value)
        return values
    return None


@dataclass
class DefSummary:
    """One tracked definition: a module-level def/class, a method, or
    the ``<module>`` pseudo-def holding import-time statements."""

    qualname: str
    kind: str  # "function" | "class" | "module"
    line: int = 1
    col: int = 0
    end_line: int = 1
    decorators: List[str] = field(default_factory=list)
    bases: List[str] = field(default_factory=list)
    calls: List[Tuple[str, int, int]] = field(default_factory=list)
    sinks: List[str] = field(default_factory=list)
    mutable_defaults: List[Tuple[str, int, int, int]] = field(
        default_factory=list
    )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "kind": self.kind,
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "decorators": list(self.decorators),
            "bases": list(self.bases),
            "calls": [list(entry) for entry in self.calls],
            "sinks": sorted(self.sinks),
            "mutable_defaults": [list(entry) for entry in self.mutable_defaults],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DefSummary":
        return cls(
            qualname=str(payload["qualname"]),
            kind=str(payload["kind"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            end_line=int(payload["end_line"]),
            decorators=[str(item) for item in payload["decorators"]],
            bases=[str(item) for item in payload["bases"]],
            calls=[
                (str(name), int(line), int(col))
                for name, line, col in payload["calls"]
            ],
            sinks=[str(item) for item in payload["sinks"]],
            mutable_defaults=[
                (str(arg), int(line), int(col), int(end))
                for arg, line, col, end in payload["mutable_defaults"]
            ],
        )


@dataclass
class ModuleSummary:
    """Everything the project rules need to know about one module."""

    module: str
    path: str
    profile: str
    is_package: bool = False
    imports: Dict[str, str] = field(default_factory=dict)
    import_modules: List[str] = field(default_factory=list)
    typing_only_imports: List[str] = field(default_factory=list)
    star_imports: List[str] = field(default_factory=list)
    defs: Dict[str, DefSummary] = field(default_factory=dict)
    json_dumps: List[Tuple[int, int, int, bool]] = field(default_factory=list)
    set_constants: Dict[str, Tuple[int, List[str]]] = field(
        default_factory=dict
    )
    suppressions: Dict[int, List[str]] = field(default_factory=dict)
    statements: List[Tuple[int, int, bool]] = field(default_factory=list)

    def top_level_names(self) -> FrozenSet[str]:
        """Names ``from <this module> import *`` would expose (defs only)."""
        return frozenset(
            qualname
            for qualname in self.defs
            if "." not in qualname and qualname != MODULE_DEF
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SUMMARY_SCHEMA_VERSION,
            "module": self.module,
            "path": self.path,
            "profile": self.profile,
            "is_package": self.is_package,
            "imports": dict(sorted(self.imports.items())),
            "import_modules": sorted(self.import_modules),
            "typing_only_imports": sorted(self.typing_only_imports),
            "star_imports": sorted(self.star_imports),
            "defs": {
                name: self.defs[name].to_dict() for name in sorted(self.defs)
            },
            "json_dumps": [list(entry) for entry in self.json_dumps],
            "set_constants": {
                name: [line, list(values)]
                for name, (line, values) in sorted(self.set_constants.items())
            },
            "suppressions": {
                str(line): sorted(codes)
                for line, codes in sorted(self.suppressions.items())
            },
            "statements": [list(entry) for entry in self.statements],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ModuleSummary":
        return cls(
            module=str(payload["module"]),
            path=str(payload["path"]),
            profile=str(payload["profile"]),
            is_package=bool(payload["is_package"]),
            imports={
                str(key): str(value)
                for key, value in payload["imports"].items()
            },
            import_modules=[str(item) for item in payload["import_modules"]],
            typing_only_imports=[
                str(item) for item in payload["typing_only_imports"]
            ],
            star_imports=[str(item) for item in payload["star_imports"]],
            defs={
                str(name): DefSummary.from_dict(value)
                for name, value in payload["defs"].items()
            },
            json_dumps=[
                (int(line), int(col), int(end), bool(canonical))
                for line, col, end, canonical in payload["json_dumps"]
            ],
            set_constants={
                str(name): (int(entry[0]), [str(v) for v in entry[1]])
                for name, entry in payload["set_constants"].items()
            },
            suppressions={
                int(line): [str(code) for code in codes]
                for line, codes in payload["suppressions"].items()
            },
            statements=[
                (int(start), int(end), bool(simple))
                for start, end, simple in payload["statements"]
            ],
        )


class _SummaryBuilder(ast.NodeVisitor):
    """One-pass extraction of a :class:`ModuleSummary` from a tree."""

    def __init__(self, summary: ModuleSummary) -> None:
        self.summary = summary
        self._def_stack: List[DefSummary] = []
        self._class_stack: List[str] = []
        self._typing_depth = 0
        module_def = DefSummary(qualname=MODULE_DEF, kind="module")
        summary.defs[MODULE_DEF] = module_def
        self._module_def = module_def

    # -- import handling ---------------------------------------------------

    def _package_base(self, level: int) -> str:
        """The absolute package a relative import of ``level`` targets."""
        parts = self.summary.module.split(".")
        if not self.summary.is_package:
            parts = parts[:-1]
        drop = level - 1
        if drop:
            parts = parts[:-drop] if drop < len(parts) else []
        return ".".join(parts)

    def _record_import_module(self, dotted: str) -> None:
        if self._typing_depth:
            if dotted not in self.summary.typing_only_imports:
                self.summary.typing_only_imports.append(dotted)
        elif dotted not in self.summary.import_modules:
            self.summary.import_modules.append(dotted)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname is not None:
                self.summary.imports[alias.asname] = alias.name
            else:
                self.summary.imports[alias.name.split(".")[0]] = (
                    alias.name.split(".")[0]
                )
            self._record_import_module(alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = self._package_base(node.level)
            source = f"{base}.{node.module}" if node.module else base
        else:
            source = node.module or ""
        if not source:
            return
        self._record_import_module(source)
        for alias in node.names:
            if alias.name == "*":
                if source not in self.summary.star_imports:
                    self.summary.star_imports.append(source)
                continue
            bound = alias.asname or alias.name
            self.summary.imports[bound] = f"{source}.{alias.name}"

    # -- definition tracking -----------------------------------------------

    def _current_def(self) -> DefSummary:
        return self._def_stack[-1] if self._def_stack else self._module_def

    def _tracked_qualname(self, name: str) -> Optional[str]:
        """The qualname a def gets, or None when it folds into its owner."""
        if not self._def_stack:
            if not self._class_stack:
                return name
            if len(self._class_stack) == 1:
                return f"{self._class_stack[0]}.{name}"
        return None

    def _record_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        qualname = self._tracked_qualname(node.name)
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            dotted = _dotted_name(target)
            if dotted is not None:
                self._module_def.calls.append(
                    (dotted, decorator.lineno, decorator.col_offset)
                )
        if qualname is None:
            # Nested def: body folds into the nearest tracked ancestor
            # (defaults stay local — they never make the owner a PAR003
            # provider).
            for child in ast.iter_child_nodes(node):
                self.visit(child)
            return
        summary = DefSummary(
            qualname=qualname,
            kind="function",
            line=node.lineno,
            col=node.col_offset,
            end_line=_end_line(node),
        )
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            dotted = _dotted_name(target)
            if dotted is not None:
                summary.decorators.append(dotted)
        self._collect_defaults(node, summary)
        self.summary.defs[qualname] = summary
        self._def_stack.append(summary)
        try:
            for child in ast.iter_child_nodes(node):
                self.visit(child)
        finally:
            self._def_stack.pop()

    def _collect_defaults(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        target: DefSummary,
    ) -> None:
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        for arg, default in zip(
            positional[len(positional) - len(args.defaults):], args.defaults
        ):
            if _is_mutable_default(default):
                target.mutable_defaults.append(
                    (arg.arg, default.lineno, default.col_offset,
                     _end_line(default))
                )
        for arg_node, default_node in zip(args.kwonlyargs, args.kw_defaults):
            if default_node is not None and _is_mutable_default(default_node):
                target.mutable_defaults.append(
                    (arg_node.arg, default_node.lineno,
                     default_node.col_offset, _end_line(default_node))
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._record_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._record_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._def_stack or self._class_stack:
            # Nested class: fold its body into the enclosing def.
            for child in ast.iter_child_nodes(node):
                self.visit(child)
            return
        summary = DefSummary(
            qualname=node.name,
            kind="class",
            line=node.lineno,
            col=node.col_offset,
            end_line=_end_line(node),
        )
        for base in node.bases:
            dotted = _dotted_name(base)
            if dotted is not None:
                summary.bases.append(dotted)
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            dotted = _dotted_name(target)
            if dotted is not None:
                summary.decorators.append(dotted)
        self.summary.defs[node.name] = summary
        self._class_stack.append(node.name)
        try:
            for child in ast.iter_child_nodes(node):
                self.visit(child)
        finally:
            self._class_stack.pop()

    # -- statement-level facts ----------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        test_name = _dotted_name(node.test)
        typing_guard = test_name in ("TYPE_CHECKING", "typing.TYPE_CHECKING")
        if typing_guard:
            self._typing_depth += 1
        try:
            for child in ast.iter_child_nodes(node):
                self.visit(child)
        finally:
            if typing_guard:
                self._typing_depth -= 1

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_set_constant(node.targets, node.value, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_set_constant([node.target], node.value, node.lineno)
        self.generic_visit(node)

    def _record_set_constant(
        self,
        targets: Sequence[ast.expr],
        value: ast.expr,
        line: int,
    ) -> None:
        if self._def_stack or self._class_stack:
            return
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        values: Optional[List[str]] = None
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "frozenset"
            and len(value.args) <= 1
            and not value.keywords
        ):
            # Zero-arg ``frozenset()`` is the canonical empty declared
            # set (what --update-scopes renders) and must stay auditable.
            values = (
                _literal_string_values(value.args[0]) if value.args else []
            )
        elif isinstance(value, ast.Set):
            values = _literal_string_values(value)
        if values is not None:
            self.summary.set_constants[targets[0].id] = (line, sorted(values))

    # -- call recording ------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        owner = self._current_def()
        if dotted is not None:
            if self._class_stack and (
                dotted.startswith("self.") or dotted.startswith("cls.")
            ):
                dotted = (
                    f"{self._class_stack[-1]}."
                    + dotted.split(".", 1)[1]
                )
            owner.calls.append((dotted, node.lineno, node.col_offset))
            self._record_sinks(node, dotted, owner)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _WRITE_ATTR_METHODS
            and SINK_WRITE not in owner.sinks
        ):
            owner.sinks.append(SINK_WRITE)
        self.generic_visit(node)

    def _resolve_local(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        target = self.summary.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def _record_sinks(
        self, node: ast.Call, dotted: str, owner: DefSummary
    ) -> None:
        resolved = self._resolve_local(dotted)
        kind: Optional[str] = None
        if resolved == "hashlib.sha256":
            kind = SINK_SHA256
        elif resolved in ("pickle.load", "pickle.loads"):
            kind = SINK_PICKLE_LOAD
        elif resolved in _WRITE_CALL_TARGETS and resolved != "os.fdopen":
            kind = SINK_WRITE
        elif resolved in ("open", "io.open", "os.fdopen"):
            mode_node: Optional[ast.expr] = None
            if resolved == "os.fdopen":
                if len(node.args) >= 2:
                    mode_node = node.args[1]
            elif len(node.args) >= 2:
                mode_node = node.args[1]
            if mode_node is None:
                for keyword in node.keywords:
                    if keyword.arg == "mode":
                        mode_node = keyword.value
            if (
                isinstance(mode_node, ast.Constant)
                and isinstance(mode_node.value, str)
                and mode_node.value in _WRITE_SINK_MODES
            ):
                kind = SINK_WRITE
        elif resolved in ("json.dump", "json.dumps"):
            canonical = False
            for keyword in node.keywords:
                if keyword.arg == "sort_keys":
                    canonical = (
                        isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    )
            self.summary.json_dumps.append(
                (node.lineno, node.col_offset, _end_line(node), canonical)
            )
        if kind is not None and kind not in owner.sinks:
            owner.sinks.append(kind)

def summarize_tree(
    tree: ast.AST,
    module: str,
    path: str,
    profile: str,
    is_package: bool = False,
    suppressions: Optional[Mapping[int, Iterable[str]]] = None,
    statements: Optional[Sequence[Tuple[int, int, bool]]] = None,
) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` for one parsed module."""
    summary = ModuleSummary(
        module=module, path=path, profile=profile, is_package=is_package
    )
    builder = _SummaryBuilder(summary)
    builder.visit(tree)
    if suppressions:
        summary.suppressions = {
            int(line): sorted(codes) for line, codes in suppressions.items()
        }
    if statements is not None:
        summary.statements = [tuple(entry) for entry in statements]
    module_def = summary.defs[MODULE_DEF]
    body = getattr(tree, "body", None)
    if body:
        module_def.end_line = _end_line(body[-1])
    return summary


#: A call-graph node: ``(module, qualname)``.
DefKey = Tuple[str, str]


class ProjectGraph:
    """The assembled whole-program view over a set of module summaries."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        self._edges: Optional[Dict[DefKey, List[DefKey]]] = None
        self._reverse: Optional[Dict[DefKey, List[DefKey]]] = None

    # -- import graph --------------------------------------------------------

    def _project_module_of(self, dotted: str) -> Optional[str]:
        """The longest known-module prefix of ``dotted``, if any."""
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            candidate = ".".join(parts[:length])
            if candidate in self.modules:
                return candidate
        return None

    def imports_of(self, module: str) -> List[str]:
        """Project modules ``module`` imports at runtime (sorted)."""
        summary = self.modules.get(module)
        if summary is None:
            return []
        found: Set[str] = set()
        for dotted in summary.import_modules:
            target = self._project_module_of(dotted)
            if target is not None and target != module:
                found.add(target)
        return sorted(found)

    def import_graph(self) -> Dict[str, List[str]]:
        """The whole runtime import graph over project modules."""
        return {module: self.imports_of(module) for module in sorted(self.modules)}

    def import_closure(self, module: str) -> Set[str]:
        """Modules transitively imported by ``module`` (cycle-safe)."""
        seen: Set[str] = set()
        frontier = [module]
        while frontier:
            current = frontier.pop()
            for target in self.imports_of(current):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    # -- call resolution -----------------------------------------------------

    def _keys_for_absolute(self, dotted: str) -> List[DefKey]:
        module = self._project_module_of(dotted)
        if module is None:
            return []
        qualname = dotted[len(module):].lstrip(".")
        if not qualname:
            return []
        summary = self.modules[module]
        target = summary.defs.get(qualname)
        if target is None:
            return []
        keys: List[DefKey] = [(module, qualname)]
        if target.kind == "class":
            for method in ("__init__", "__post_init__"):
                if f"{qualname}.{method}" in summary.defs:
                    keys.append((module, f"{qualname}.{method}"))
        return keys

    def resolve_call(self, module: str, dotted: str) -> List[DefKey]:
        """Def keys a dotted call name in ``module`` can target (sorted)."""
        summary = self.modules.get(module)
        if summary is None:
            return []
        head = dotted.split(".", 1)[0]
        candidates: List[str] = []
        if head in summary.imports:
            rest = dotted[len(head):].lstrip(".")
            base = summary.imports[head]
            candidates.append(f"{base}.{rest}" if rest else base)
        elif head in summary.defs:
            candidates.append(f"{module}.{dotted}")
        else:
            for star in sorted(summary.star_imports):
                star_summary = self.modules.get(star)
                if star_summary is not None and head in star_summary.top_level_names():
                    candidates.append(f"{star}.{dotted}")
        keys: List[DefKey] = []
        for candidate in candidates:
            keys.extend(self._keys_for_absolute(candidate))
        return sorted(set(keys))

    def call_edges(self) -> Dict[DefKey, List[DefKey]]:
        """Adjacency: caller def -> resolved callee defs (cached)."""
        if self._edges is None:
            edges: Dict[DefKey, List[DefKey]] = {}
            for module in sorted(self.modules):
                summary = self.modules[module]
                for qualname in sorted(summary.defs):
                    targets: Set[DefKey] = set()
                    for dotted, _line, _col in summary.defs[qualname].calls:
                        targets.update(self.resolve_call(module, dotted))
                    edges[(module, qualname)] = sorted(targets)
            self._edges = edges
        return self._edges

    def _reverse_edges(self) -> Dict[DefKey, List[DefKey]]:
        if self._reverse is None:
            reverse: Dict[DefKey, List[DefKey]] = {}
            for caller, callees in self.call_edges().items():
                for callee in callees:
                    reverse.setdefault(callee, []).append(caller)
            self._reverse = {key: sorted(set(value)) for key, value in reverse.items()}
        return self._reverse

    # -- reachability --------------------------------------------------------

    def defs_reaching(self, sink: str) -> Set[DefKey]:
        """Defs from which a ``sink`` callsite is reachable (incl. direct)."""
        seeds = [
            (module, qualname)
            for module in sorted(self.modules)
            for qualname, info in sorted(self.modules[module].defs.items())
            if sink in info.sinks
        ]
        reverse = self._reverse_edges()
        seen: Set[DefKey] = set(seeds)
        frontier = list(seeds)
        while frontier:
            current = frontier.pop()
            for caller in reverse.get(current, []):
                if caller not in seen:
                    seen.add(caller)
                    frontier.append(caller)
        return seen

    def modules_reaching(self, sink: str, prefix: str = "repro") -> Set[str]:
        """Project modules (under ``prefix``) owning a def that reaches
        ``sink``."""
        found: Set[str] = set()
        for module, _qualname in self.defs_reaching(sink):
            if module == prefix or module.startswith(prefix + "."):
                found.add(module)
        return found

    def modules_with_sink(self, sink: str, prefix: str = "repro") -> Set[str]:
        """Project modules with a *direct* ``sink`` callsite (no
        transitivity) — the right notion for sanctioned-caller sets."""
        found: Set[str] = set()
        for module in sorted(self.modules):
            if not (module == prefix or module.startswith(prefix + ".")):
                continue
            for info in self.modules[module].defs.values():
                if sink in info.sinks:
                    found.add(module)
                    break
        return found

    # -- class hierarchy / providers -----------------------------------------

    def resolve_class(self, module: str, dotted: str) -> Optional[DefKey]:
        """The class def a base-class expression in ``module`` names."""
        for key in self.resolve_call(module, dotted):
            target = self.modules[key[0]].defs.get(key[1])
            if target is not None and target.kind == "class":
                return key
        return None

    def subclasses_of(self, root: DefKey) -> Set[DefKey]:
        """All project classes transitively deriving from ``root``."""
        children: Dict[DefKey, Set[DefKey]] = {}
        for module in sorted(self.modules):
            summary = self.modules[module]
            for qualname, info in sorted(summary.defs.items()):
                if info.kind != "class":
                    continue
                for base in info.bases:
                    base_key = self.resolve_class(module, base)
                    if base_key is not None:
                        children.setdefault(base_key, set()).add(
                            (module, qualname)
                        )
        seen: Set[DefKey] = set()
        frontier = [root]
        while frontier:
            current = frontier.pop()
            for child in sorted(children.get(current, ())):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return seen

    def registry_providers(self) -> List[Tuple[str, DefSummary]]:
        """Defs registered as providers via an ``@<REGISTRY>.register(...)``
        decorator (sorted by module then qualname)."""
        providers: List[Tuple[str, DefSummary]] = []
        for module in sorted(self.modules):
            summary = self.modules[module]
            for qualname in sorted(summary.defs):
                info = summary.defs[qualname]
                if any(
                    decorator.split(".")[-1] == "register"
                    for decorator in info.decorators
                ):
                    providers.append((module, info))
        return providers
