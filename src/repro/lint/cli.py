"""``python -m repro.lint`` — the static-analysis command line.

Modes:

* default — lint and print every finding (baseline ignored); exit 1 if
  any exist.  The "show me everything" view.
* ``--check`` — the CI gate: exit 0 iff the tree is clean *modulo* the
  committed baseline (no finding above its baselined count, no stale
  baseline entry).  This is step 0 of ``scripts/ci_check.sh``.
* ``--baseline`` — rewrite the baseline file from the current findings
  (the ratchet-tightening action after a fix, never a way to admit new
  debt silently: re-baselining with *more* findings is visible in the
  committed diff).
* ``--update-scopes`` — recompute the fingerprint/persistence/pickle
  module sets from the call graph and rewrite the declared sets in
  ``src/repro/lint/scopes.py`` in place (the SCOPE001 remediation).

Performance knobs: ``--jobs N`` fans per-file analysis over a process
pool; the per-file diagnostic cache (``~/.cache/repro/lint``, see
:mod:`repro.lint.cache`) is on by default and disabled with
``--no-cache`` / relocated with ``--cache-dir``.  Neither affects the
output bytes.

``--format json`` emits a canonical JSON report — serialised by
:func:`repro.analysis.serialization.dump_json` (sorted keys), findings
pre-sorted by (path, line, col, code) — so the lint output itself obeys
SER001; ``--format text`` (default) prints ``path:line:col: CODE
message`` lines.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.serialization import dump_json
from repro.lint import reachability
from repro.lint.baseline import (
    BASELINE_FILENAME,
    compare_to_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.cache import DiagnosticCache
from repro.lint.engine import (
    Diagnostic,
    analyze_paths,
    default_targets,
    lint_paths,
)
from repro.lint.graph import ProjectGraph
from repro.lint.rules import RULES
from repro.lint.scopes import PROFILE_STRICT


def _default_root() -> str:
    """The repository root: the directory holding this package's ``src``."""
    package_dir = os.path.dirname(os.path.abspath(__file__))
    return os.path.normpath(os.path.join(package_dir, "..", "..", ".."))


def _report_text(diagnostics: Sequence[Diagnostic], stale: Sequence[str]) -> str:
    lines = [diagnostic.format() for diagnostic in diagnostics]
    lines.extend(
        f"stale baseline entry {key!r}: the finding was fixed; run "
        "'python -m repro.lint --baseline' to ratchet the baseline down"
        for key in stale
    )
    return "\n".join(lines)


def _report_json(
    diagnostics: Sequence[Diagnostic], stale: Sequence[str]
) -> str:
    return dump_json({
        "findings": [diagnostic.to_dict() for diagnostic in diagnostics],
        "stale_baseline_entries": list(stale),
        "clean": not diagnostics and not stale,
    })


def _update_scopes(root: str, jobs: int, cache: Optional[DiagnosticCache]) -> int:
    analyses = analyze_paths(
        default_targets(root), root=root, jobs=jobs, cache=cache
    )
    graph = ProjectGraph(
        analysis.summary
        for analysis in analyses
        if analysis.summary is not None
        and analysis.profile == PROFILE_STRICT
    )
    computed = reachability.compute_scopes(graph)
    scopes_path = os.path.join(root, "src", "repro", "lint", "scopes.py")
    if not os.path.exists(scopes_path):
        print(f"scopes module not found: {scopes_path}", file=sys.stderr)
        return 2
    changed = reachability.update_scopes_file(scopes_path, computed)
    print(
        f"computed scopes: {len(computed.fingerprint)} fingerprint, "
        f"{len(computed.persistence)} persistence, "
        f"{len(computed.pickle)} pickle module(s); "
        + (f"updated {scopes_path}" if changed else "already in sync")
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="determinism & robustness static analysis "
        "(rule catalog: docs/static-analysis.md)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint "
        "(default: src/repro, scripts, benchmarks)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate mode: exit 0 iff clean modulo the committed baseline",
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings",
    )
    parser.add_argument(
        "--update-scopes",
        action="store_true",
        help="recompute the declared module sets in lint/scopes.py from "
        "the call graph (the SCOPE001 remediation)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fan per-file analysis over N worker processes (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-file diagnostic cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="diagnostic cache directory "
        "(default: $REPRO_LINT_CACHE_DIR or ~/.cache/repro/lint)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root (default: inferred from the package location)",
    )
    parser.add_argument(
        "--baseline-file",
        default=None,
        help=f"baseline path (default: <root>/{BASELINE_FILENAME})",
    )
    args = parser.parse_args(argv)
    exclusive = [args.check, args.baseline, args.update_scopes]
    if sum(1 for flag in exclusive if flag) > 1:
        parser.error(
            "--check, --baseline and --update-scopes are mutually exclusive"
        )

    root = os.path.abspath(args.root) if args.root else _default_root()
    targets = [
        os.path.join(root, path) for path in args.paths
    ] or default_targets(root)
    baseline_path = args.baseline_file or os.path.join(root, BASELINE_FILENAME)
    cache = None if args.no_cache else DiagnosticCache(args.cache_dir)
    jobs = max(1, args.jobs)

    if args.update_scopes:
        return _update_scopes(root, jobs, cache)

    diagnostics = lint_paths(
        targets, root=root, rules=RULES, jobs=jobs, cache=cache
    )

    if args.baseline:
        write_baseline(diagnostics, baseline_path)
        print(
            f"baseline written: {baseline_path} "
            f"({len(diagnostics)} finding(s) frozen)"
        )
        return 0

    stale: List[str] = []
    if args.check:
        diagnostics, stale = compare_to_baseline(
            diagnostics, load_baseline(baseline_path)
        )

    report = (
        _report_json(diagnostics, stale)
        if args.format == "json"
        else _report_text(diagnostics, stale)
    )
    if report.strip():
        print(report)
    failed = bool(diagnostics or stale)
    if args.format == "text":
        if cache is not None:
            print(
                f"repro.lint: cache {cache.hits} hit(s), "
                f"{cache.misses} miss(es)",
                file=sys.stderr,
            )
        if failed:
            print(
                f"repro.lint: {len(diagnostics)} finding(s), "
                f"{len(stale)} stale baseline entr(y/ies)",
                file=sys.stderr,
            )
        elif args.check:
            print("repro.lint: clean (modulo baseline)")
        else:
            print("repro.lint: clean")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
