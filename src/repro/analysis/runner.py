"""Deterministic experiment execution engine (serial or multi-process).

Every experiment grid in this repository — the Table 3 threshold sweeps,
the Table 2 reconstruction, the Table 4 scalability chains — is an
embarrassingly parallel list of independent *cells*: place one circuit
into one environment at one threshold.  This module gives all of them one
task-graph abstraction instead of three hand-rolled serial loops:

:class:`ExperimentSpec`
    One picklable cell: a circuit factory, an environment factory, an
    optional threshold override and :class:`~repro.core.config.PlacementOptions`.
    Factories must be picklable for multi-process runs — module-level
    functions, :func:`functools.partial` over module-level functions, or
    :func:`constant_environment` wrappers all qualify; lambdas do not.

:class:`ExperimentRunner`
    Executes a cell list either serially (``jobs=1``, in-process, no
    pickling) or on a ``concurrent.futures.ProcessPoolExecutor``.  The
    parallel path preserves three invariants the experiment harnesses rely
    on:

    * **deterministic result ordering** — outcomes are returned in spec
      order regardless of worker completion order;
    * **per-worker environment-cache warmup** — each worker instantiates
      every distinct environment once (keyed by the spec's environment
      factory) and pre-builds its adjacency graphs at the grid's
      thresholds, so per-cell work inside a worker hits warm caches just
      like the serial loop does;
    * **counter aggregation** — each cell's :data:`repro.core.stats.STATS`
      delta is measured inside the worker, shipped back with the outcome
      and merged into the parent registry, so the coordinating process
      reports the whole run's search/cache counters instead of silently
      reporting only its own share.

Because the placement pipeline is hash-seed deterministic end to end (see
``docs/parallelism.md``), a grid executed at ``jobs=4`` produces
byte-identical deterministic fields to the same grid at ``jobs=1`` — wall
times (:attr:`ExperimentOutcome.software_runtime_seconds`) are the only
machine-dependent fields.

Two fronts extend the runner beyond one blocking local call:

* **streaming** — :meth:`ExperimentRunner.iter_outcomes` yields outcomes
  as cells complete, so harnesses can render rows incrementally;
* **sharding** — :meth:`ExperimentRunner.run` itself is the degenerate
  one-shard case of the plan → execute → merge pipeline in
  :mod:`repro.analysis.sharding`, which splits a grid into shards that
  execute on any host and merge back bit-identically.

The scheduler's evaluation backend is likewise an execution detail: cells
carry it in their :class:`~repro.core.config.PlacementOptions`
(``scheduler_backend``), worker processes inherit the
``REPRO_SCHEDULER_BACKEND`` environment variable for cells left on
``"auto"``, and :class:`ExperimentRunner` can force one backend for a whole
grid (``scheduler_backend=...``).  Backends are bit-identical (see
``docs/performance.md``), so none of these choices changes any outcome.

Fault tolerance is opt-in: construct the runner with a
:class:`~repro.analysis.resilience.RetryPolicy` (``retry_policy=...``) —
or install a test-only fault injector — and execution switches to the
resilient path in :mod:`repro.analysis.resilience`, which isolates every
attempt in its own process so failing cells retry, hung cells time out,
and exhausted cells degrade to structured
:class:`~repro.analysis.resilience.FailedOutcome` rows.  Without either,
the serial/pool paths below run exactly as before.
"""

from __future__ import annotations

import dataclasses
import itertools
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from functools import partial
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import benchmark_circuit
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.core.result import PlacementResult
from repro.core.stats import STATS
from repro.exceptions import ExperimentError, PlacementError, ThresholdError
from repro.hardware.environment import PhysicalEnvironment
from repro.hardware.molecules import molecule
from repro.timing._replay import BACKEND_CHOICES

#: Signature of the progress callback: ``(completed, total, outcome)``.
ProgressCallback = Callable[[int, int, "ExperimentOutcome"], None]


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of an experiment grid.

    Attributes
    ----------
    circuit_factory:
        Zero-argument callable building a fresh :class:`QuantumCircuit`.
    environment_factory:
        Zero-argument callable building (or returning) the
        :class:`PhysicalEnvironment`.  Workers cache the built environment
        per factory (see :func:`environment_cache_key`), so all cells of a
        grid sharing one factory share one environment object — and its
        threshold-graph caches — within each worker process.
    threshold:
        Optional threshold override; when set, the cell runs with
        ``options.replace(threshold=threshold)``.
    options:
        Placement options for the cell (defaults to ``PlacementOptions()``).
    label:
        Free-form cell label carried through to the outcome (for progress
        display and reports).
    keep_result:
        Ship the full :class:`PlacementResult` back with the outcome.  Off
        by default: sweeps only need the scalar summary, and pickling whole
        placement results out of workers is the dominant IPC cost.
    """

    circuit_factory: Callable[[], QuantumCircuit]
    environment_factory: Callable[[], PhysicalEnvironment]
    threshold: Optional[float] = None
    options: Optional[PlacementOptions] = None
    label: str = ""
    keep_result: bool = False

    def resolved_options(self) -> PlacementOptions:
        """The cell's effective placement options."""
        options = self.options or PlacementOptions()
        if self.threshold is not None:
            options = options.replace(threshold=self.threshold)
        return options


@dataclass
class ExperimentOutcome:
    """Result of one executed cell, in the order fields become known.

    ``feasible`` is ``False`` when placement raised a
    :class:`~repro.exceptions.ThresholdError` or
    :class:`~repro.exceptions.PlacementError` (the paper's "N/A" cells);
    ``error`` then carries the message and ``error_type`` the exception
    class name, so harnesses that treated those exceptions as fatal can
    re-raise via :meth:`raise_if_infeasible`.  ``software_runtime_seconds``
    is the cell's wall time (machine-dependent); every other field is
    deterministic.
    """

    index: int
    label: str
    feasible: bool
    runtime_seconds: Optional[float]
    num_subcircuits: Optional[int]
    circuit_name: str = ""
    num_gates: int = 0
    num_qubits: int = 0
    environment_name: str = ""
    environment_qubits: int = 0
    error: Optional[str] = None
    error_type: Optional[str] = None
    software_runtime_seconds: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    result: Optional[PlacementResult] = None

    def raise_if_infeasible(self, with_context: bool = True) -> "ExperimentOutcome":
        """Re-raise the cell's placement error (no-op for feasible cells).

        Restores throw-on-failure semantics for harnesses where an
        infeasible cell is a caller mistake rather than an expected "N/A"
        (Table 2 and the scalability chains, as opposed to sweeps).  With
        ``with_context`` the message names the failed cell; without it the
        original error message is re-raised verbatim (the CLI's ``place``
        uses this to keep its stderr identical to a direct
        :func:`~repro.core.placement.place_circuit` call).
        """
        if self.feasible:
            return self
        import repro.exceptions as exceptions_module

        exception_class = getattr(
            exceptions_module, self.error_type or "", PlacementError
        )
        if with_context:
            message = (
                f"experiment cell {self.label or self.index!r} failed: "
                f"{self.error}"
            )
        else:
            message = self.error or "placement infeasible"
        raise exception_class(message)


# ---------------------------------------------------------------------------
# Picklable factory helpers
# ---------------------------------------------------------------------------


class _EnvironmentRef:
    """Worker-side stand-in for an environment registered by the initializer.

    Parallel runs ship each distinct constant environment to every worker
    exactly once (through the pool initializer); the per-cell specs then
    carry this reference — just a token — instead of re-pickling the whole
    delay table with every submitted cell.
    """

    __slots__ = ("key",)

    def __init__(self, key: Hashable) -> None:
        self.key = key

    def __call__(self) -> PhysicalEnvironment:
        environment = _ENVIRONMENT_CACHE.get(self.key)
        if environment is None:  # pragma: no cover - initializer always runs first
            raise ExperimentError(
                f"environment reference {self.key!r} is not registered in this "
                "process; references are only valid inside ExperimentRunner "
                "worker processes"
            )
        return environment


class _ConstantEnvironmentFactory:
    """Wrap an existing environment object as a picklable factory.

    The wrapper remembers a stable ``token`` minted in the parent process,
    so every pickled copy of the same wrapper compares (and hashes) equal;
    parallel runs use the token to ship the environment once per worker
    (see :class:`_EnvironmentRef`) and to share it — caches and all —
    across every cell of the grid (see :func:`environment_cache_key`).
    """

    __slots__ = ("environment", "token")

    _tokens = itertools.count()

    def __init__(self, environment: PhysicalEnvironment) -> None:
        self.environment = environment
        self.token = (environment.name, next(self._tokens))

    def __call__(self) -> PhysicalEnvironment:
        return self.environment

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _ConstantEnvironmentFactory):
            return NotImplemented
        return self.token == other.token

    def __hash__(self) -> int:
        return hash(self.token)

    def __getstate__(self) -> Tuple[PhysicalEnvironment, Tuple]:
        return (self.environment, self.token)

    def __setstate__(self, state: Tuple[PhysicalEnvironment, Tuple]) -> None:
        self.environment, self.token = state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"constant_environment({self.environment!r})"


def constant_environment(
    environment: PhysicalEnvironment,
) -> Callable[[], PhysicalEnvironment]:
    """A picklable factory returning an already-built environment.

    Use this to build specs from an environment object you already hold
    (the back-compat path of :func:`repro.analysis.sweep.sweep_circuit`).
    The environment itself must be picklable; its derived-graph caches are
    dropped in transit (see ``PhysicalEnvironment.__getstate__``).
    """
    if isinstance(environment, _ConstantEnvironmentFactory):  # pragma: no cover
        return environment
    return _ConstantEnvironmentFactory(environment)


def benchmark_circuit_factory(name: str) -> Callable[[], QuantumCircuit]:
    """Picklable factory for a named benchmark circuit."""
    return partial(benchmark_circuit, name)


def molecule_factory(name: str) -> Callable[[], PhysicalEnvironment]:
    """Picklable factory for a named molecule environment."""
    return partial(molecule, name)


def environment_cache_key(
    factory: Callable[[], PhysicalEnvironment],
) -> Optional[Hashable]:
    """Worker-side cache key for a spec's environment factory.

    Module-level functions hash by identity (stable across pickling, since
    they are pickled by reference), ``functools.partial`` objects are keyed
    by their function and arguments, and :func:`constant_environment`
    wrappers carry an explicit token.  Unhashable factories (or partials
    over unhashable arguments) return ``None`` — their cells build a fresh
    environment each time.
    """
    if isinstance(factory, _EnvironmentRef):
        return factory.key
    if isinstance(factory, _ConstantEnvironmentFactory):
        # The token, not the wrapper object: _EnvironmentRef cells and the
        # initializer's registration must resolve to the same cache slot.
        return factory.token
    if isinstance(factory, partial):
        try:
            key = (
                factory.func,
                factory.args,
                tuple(sorted(factory.keywords.items())),
            )
            # Hashability probe for a worker-local dict key; the key never
            # leaves the process or reaches a serialised payload.
            hash(key)  # repro: allow[DET003]
            return key
        except TypeError:
            return None
    try:
        hash(factory)  # repro: allow[DET003]
    except TypeError:
        return None
    return factory


# ---------------------------------------------------------------------------
# Cell execution (runs in workers for parallel grids)
# ---------------------------------------------------------------------------

#: Per-worker environment instances, keyed by :func:`environment_cache_key`.
#: Only populated inside pool workers (see ``_in_worker``): there, each
#: cell's spec arrives as its own unpickled copy, so keying by factory lets
#: all cells of a grid share one environment — and its warm caches — per
#: worker.  The parent/serial path calls factories directly instead: its
#: factories already return the caller's own objects, and caching them here
#: would grow an unbounded registry across harness calls in long-lived
#: processes.
_ENVIRONMENT_CACHE: Dict[Hashable, PhysicalEnvironment] = {}

_in_worker = False


def _environment_for(spec: ExperimentSpec) -> PhysicalEnvironment:
    if not _in_worker:
        return spec.environment_factory()
    key = environment_cache_key(spec.environment_factory)
    if key is None:
        return spec.environment_factory()
    environment = _ENVIRONMENT_CACHE.get(key)
    if environment is None:
        environment = spec.environment_factory()
        _ENVIRONMENT_CACHE[key] = environment
    return environment


def _execute_cell(payload: Tuple[int, ExperimentSpec]) -> ExperimentOutcome:
    """Run one cell and package its outcome (module-level: picklable)."""
    index, spec = payload
    circuit = spec.circuit_factory()
    environment = _environment_for(spec)
    before = STATS.snapshot()
    start = time.perf_counter()
    feasible = True
    error: Optional[str] = None
    result: Optional[PlacementResult] = None
    runtime_seconds: Optional[float] = None
    num_subcircuits: Optional[int] = None
    try:
        result = place_circuit(circuit, environment, spec.resolved_options())
        runtime_seconds = result.runtime_seconds
        num_subcircuits = result.num_subcircuits
    except (ThresholdError, PlacementError) as exc:
        feasible = False
        error = str(exc)
        error_type = type(exc).__name__
        result = None
    else:
        error_type = None
    elapsed = time.perf_counter() - start
    return ExperimentOutcome(
        index=index,
        label=spec.label,
        feasible=feasible,
        runtime_seconds=runtime_seconds,
        num_subcircuits=num_subcircuits,
        circuit_name=circuit.name,
        num_gates=circuit.num_gates,
        num_qubits=circuit.num_qubits,
        environment_name=environment.name,
        environment_qubits=environment.num_qubits,
        error=error,
        error_type=error_type,
        software_runtime_seconds=elapsed,
        counters=STATS.delta_since(before),
        result=result if spec.keep_result else None,
    )


def _initialize_worker(
    entries: Sequence[Tuple[Callable[[], PhysicalEnvironment], Tuple[Optional[float], ...]]],
    warm_graphs: bool,
) -> None:
    """Process-pool initializer: register environments, pre-build hot caches.

    Runs once per worker before any cell.  Registration makes every keyed
    environment available to cells that carry only an
    :class:`_EnvironmentRef`; with ``warm_graphs`` the adjacency (and
    largest-component) graphs are built too, so the first cell a worker
    receives behaves like a mid-sweep cell in the serial loop — warm
    caches, same counters-per-cell profile across workers.
    """
    global _in_worker
    # Deliberate per-worker state: the flag and the environment cache are
    # each process's private warm-up, never merged back — outcomes flow
    # through return values and STATS deltas only.
    _in_worker = True  # repro: allow[PAR002]
    for factory, thresholds in entries:
        key = environment_cache_key(factory)
        if key is None:
            continue
        environment = _ENVIRONMENT_CACHE.get(key)
        if environment is None:
            environment = factory()
            _ENVIRONMENT_CACHE[key] = environment  # repro: allow[PAR002]
        if not warm_graphs:
            continue
        for threshold in thresholds:
            try:
                value = (
                    environment.minimal_connecting_threshold()
                    if threshold is None
                    else threshold
                )
                environment.adjacency_graph(value)
                environment.largest_component_graph(value)
            except Exception:  # repro: allow[ROB002]
                # Warmup is best-effort: an infeasible threshold fails again
                # (and is reported) when its cell actually runs.
                continue


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


class ExperimentRunner:
    """Execute a list of :class:`ExperimentSpec` cells, serially or in parallel.

    Parameters
    ----------
    jobs:
        Number of worker processes.  ``1`` (the default) runs in-process
        with zero pickling — exactly the old serial loops.  Values above 1
        use a ``ProcessPoolExecutor`` (never more workers than cells).
    progress:
        Optional callback invoked after every completed cell with
        ``(completed_count, total, outcome)``.  In parallel runs it fires
        in completion order (which is nondeterministic); the *returned*
        outcome list is always in spec order.
    warmup:
        Pre-build per-worker environment caches before the first cell
        (parallel runs only; the serial path warms caches naturally).
    scheduler_backend:
        When set (``"auto"``/``"python"``/``"numpy"``), override every
        cell's ``options.scheduler_backend`` for this run — the
        whole-grid equivalent of the CLI's ``--scheduler-backend``.
        Outcomes are bit-identical across backends, so this only affects
        wall time.
    retry_policy:
        Optional :class:`~repro.analysis.resilience.RetryPolicy`.  When
        set (and not a no-op), cells execute on the resilient
        per-attempt-process path: failures retry with deterministic
        backoff, hung cells are killed at ``cell_timeout``, and exhausted
        cells yield :class:`~repro.analysis.resilience.FailedOutcome`
        rows instead of raising.  ``None`` (the default) keeps the plain
        serial/pool paths byte-for-byte unchanged.
    """

    def __init__(
        self,
        jobs: int = 1,
        progress: Optional[ProgressCallback] = None,
        warmup: bool = True,
        scheduler_backend: Optional[str] = None,
        retry_policy: Optional["object"] = None,
    ) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be at least 1, got {jobs}")
        if scheduler_backend is not None and scheduler_backend not in BACKEND_CHOICES:
            raise ExperimentError(
                f"scheduler_backend must be one of {BACKEND_CHOICES}, "
                f"got {scheduler_backend!r}"
            )
        if retry_policy is not None:
            from repro.analysis.resilience import RetryPolicy

            if not isinstance(retry_policy, RetryPolicy):
                raise ExperimentError(
                    f"retry_policy must be a RetryPolicy (or None), got "
                    f"{type(retry_policy).__name__}"
                )
        self.jobs = int(jobs)
        self.progress = progress
        self.warmup = warmup
        self.scheduler_backend = scheduler_backend
        self.retry_policy = retry_policy

    def run(self, specs: Sequence[ExperimentSpec]) -> List[ExperimentOutcome]:
        """Execute every cell and return outcomes in spec order.

        Local execution is the degenerate one-shard case of the sharded
        plan → execute → merge pipeline (:mod:`repro.analysis.sharding`):
        the grid becomes a one-shard plan, the shard executes in-process
        (serially or over local workers, per ``jobs``), and the merge
        step's verification — every cell accounted for exactly once —
        replaces the old ad-hoc missing-outcome check.  A grid split
        into real shards and merged back goes through exactly this path,
        which is why the two are byte-identical.
        """
        from repro.analysis import sharding

        specs = list(specs)
        if not specs:
            return []
        plan = sharding.ShardPlan.build(
            specs, num_shards=1, compute_fingerprint=False
        )
        shard = sharding.execute_shard(plan.shard_input(0), runner=self)
        return sharding.merge_shards([shard], plan=plan).outcomes

    def prepared_specs(
        self, specs: Sequence[ExperimentSpec]
    ) -> List[ExperimentSpec]:
        """The spec list with this runner's whole-grid overrides applied."""
        specs = list(specs)
        if self.scheduler_backend is not None:
            specs = [
                dataclasses.replace(
                    spec,
                    options=(spec.options or PlacementOptions()).replace(
                        scheduler_backend=self.scheduler_backend
                    ),
                )
                for spec in specs
            ]
        return specs

    def iter_outcomes(
        self, specs: Sequence[ExperimentSpec]
    ) -> Iterator[ExperimentOutcome]:
        """Stream outcomes as cells complete (the ``as_completed`` front end).

        Yields every cell's outcome as soon as it is available — in spec
        order for serial runs, in completion order for parallel runs
        (``outcome.index`` identifies the cell either way).  The
        ``progress`` callback, if any, still fires once per yielded
        outcome.  Harnesses use this to render rows incrementally instead
        of blocking on the full grid; collecting and sorting the iterator
        is exactly :meth:`run` minus the merge-step verification.
        """
        specs = self.prepared_specs(specs)
        if not specs:
            return
        yield from self._iter_prepared(specs)

    def run_ordered(
        self,
        specs: Sequence[ExperimentSpec],
        build: Optional[Callable[[ExperimentOutcome], object]] = None,
        on_item: Optional[Callable[[object], None]] = None,
        what: str = "experiment grid",
    ) -> List:
        """Stream the grid, transform each outcome, return spec-order results.

        The shared collect loop of the streaming harnesses: each outcome
        is passed through ``build`` (identity when ``None``) as soon as
        its cell completes — completion order for parallel runs —
        ``on_item`` fires with the built item, and the returned list is
        re-assembled in spec order via ``outcome.index``.  A cell that
        produced no outcome raises :class:`ExperimentError` (``what``
        names the caller in the message) rather than returning a
        misaligned list.
        """
        specs = list(specs)
        results: List = [None] * len(specs)
        for outcome in self.iter_outcomes(specs):
            item = build(outcome) if build is not None else outcome
            results[outcome.index] = item
            if on_item is not None:
                on_item(item)
        missing = [index for index, item in enumerate(results) if item is None]
        if missing:  # pragma: no cover - cells either return or raise
            raise ExperimentError(
                f"{what} returned no outcome for cell(s) {missing}; "
                "refusing to return a misaligned result list"
            )
        return results

    def execute_prepared(
        self,
        specs: Sequence[ExperimentSpec],
        global_indices: Optional[Sequence[int]] = None,
    ) -> List[ExperimentOutcome]:
        """Execute already-prepared specs and order outcomes by cell index.

        The execution core shared by :func:`repro.analysis.sharding.execute_shard`
        and (through it) :meth:`run`; callers outside the sharding
        pipeline should use :meth:`run` or :meth:`iter_outcomes`.
        ``global_indices`` maps each spec position to its grid-global cell
        index — shard workers pass their slice of the plan so retry
        backoff and fault injection key on the *global* grid, making the
        resilient path invariant to how the grid was sharded.
        """
        specs = list(specs)
        outcomes: List[Optional[ExperimentOutcome]] = [None] * len(specs)
        if not specs:
            return []
        for outcome in self._iter_prepared(specs, global_indices=global_indices):
            outcomes[outcome.index] = outcome
        missing = [index for index, outcome in enumerate(outcomes) if outcome is None]
        if missing:  # pragma: no cover - cells either return or raise
            raise ExperimentError(
                f"execution returned no outcome for cell(s) {missing}; "
                "refusing to return a misaligned result list"
            )
        return outcomes

    def _iter_prepared(
        self,
        specs: List[ExperimentSpec],
        global_indices: Optional[Sequence[int]] = None,
    ) -> Iterator[ExperimentOutcome]:
        """Route prepared specs to the right execution path.

        Resilient execution (per-attempt processes, retries, timeouts)
        engages only when the runner carries a non-no-op retry policy or
        a fault injector is active; otherwise the original serial and
        pool paths run untouched, preserving their performance profile
        and counter semantics exactly.
        """
        from repro.analysis import resilience

        injector = resilience.active_fault_injector()
        policy = self.retry_policy
        if (policy is not None and not policy.is_noop) or injector is not None:
            yield from resilience.execute_cells(
                specs,
                policy=policy,
                injector=injector,
                jobs=self.jobs,
                progress=self.progress,
                global_indices=global_indices,
            )
        elif self.jobs == 1 or len(specs) == 1:
            yield from self._iter_serial(specs)
        else:
            yield from self._iter_parallel(specs)

    # -- serial ---------------------------------------------------------------

    def _iter_serial(
        self, specs: List[ExperimentSpec]
    ) -> Iterator[ExperimentOutcome]:
        total = len(specs)
        for index, spec in enumerate(specs):
            outcome = _execute_cell((index, spec))
            if self.progress is not None:
                self.progress(index + 1, total, outcome)
            yield outcome

    # -- parallel -------------------------------------------------------------

    def _check_picklable(self, specs: List[ExperimentSpec]) -> None:
        try:
            pickle.dumps(specs)
            return
        except Exception:  # repro: allow[ROB002]
            # Deliberate: the batch probe only decides whether to fall back to
            # the per-spec probe below, which names the culprit and raises.
            pass
        # Re-check cell by cell only to name the culprit in the error.
        for spec in specs:
            try:
                pickle.dumps(spec)
            except Exception as exc:
                raise ExperimentError(
                    f"experiment cell {spec.label or spec!r} cannot be pickled "
                    f"for multi-process execution ({exc}); use module-level "
                    "factories, functools.partial, or constant_environment(), "
                    "or run with jobs=1"
                ) from exc

    def _warmup_entries(
        self, specs: List[ExperimentSpec]
    ) -> List[Tuple[Callable[[], PhysicalEnvironment], Tuple[Optional[float], ...]]]:
        """Initializer entries: environments worth shipping to every worker.

        Warmup runs in *every* worker, so it only pays off for environments
        shared by multiple cells; a single-cell environment is built lazily
        by whichever worker receives its cell.  Constant-environment
        factories are always included (cells reference them by token, so
        each worker must register them) but get graph warmup only when
        shared.
        """
        grouped: Dict[Hashable, Tuple[Callable, Dict[Optional[float], None]]] = {}
        counts: Dict[Hashable, int] = {}
        for spec in specs:
            key = environment_cache_key(spec.environment_factory)
            if key is None:
                continue
            factory, thresholds = grouped.setdefault(
                key, (spec.environment_factory, {})
            )
            thresholds.setdefault(spec.resolved_options().threshold)
            counts[key] = counts.get(key, 0) + 1
        entries = []
        for key, (factory, thresholds) in grouped.items():
            shared = counts[key] > 1
            if isinstance(factory, _ConstantEnvironmentFactory):
                entries.append((factory, tuple(thresholds) if shared else ()))
            elif shared:
                entries.append((factory, tuple(thresholds)))
        return entries

    @staticmethod
    def _lighten(specs: List[ExperimentSpec]) -> List[ExperimentSpec]:
        """Swap constant-environment factories for per-cell references.

        The environments themselves travel once per worker in the
        initializer entries; the submitted cells then carry only a token.
        """
        light: List[ExperimentSpec] = []
        for spec in specs:
            factory = spec.environment_factory
            if isinstance(factory, _ConstantEnvironmentFactory):
                spec = dataclasses.replace(
                    spec, environment_factory=_EnvironmentRef(factory.token)
                )
            light.append(spec)
        return light

    def _iter_parallel(
        self, specs: List[ExperimentSpec]
    ) -> Iterator[ExperimentOutcome]:
        total = len(specs)
        workers = min(self.jobs, total)
        # Entries are always shipped: they register keyed environments in
        # each worker (required by _EnvironmentRef cells); self.warmup only
        # controls whether derived graphs are pre-built on top.
        entries = self._warmup_entries(specs)
        light_specs = self._lighten(specs)
        self._check_picklable(light_specs)
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_initialize_worker,
            initargs=(entries, self.warmup),
        ) as pool:
            pending = {
                pool.submit(_execute_cell, (index, spec))
                for index, spec in enumerate(light_specs)
            }
            completed = 0
            try:
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        outcome = future.result()
                        # Worker counters fold into the parent registry;
                        # addition commutes, so the aggregate is
                        # completion-order free.
                        STATS.merge(outcome.counters)
                        completed += 1
                        if self.progress is not None:
                            self.progress(completed, total, outcome)
                        yield outcome
            finally:
                # Abandoned mid-grid (consumer break, or an exception in a
                # streaming callback): cancel the cells that have not
                # started so pool shutdown waits only for in-flight ones,
                # and fold in the counters of cells that did run anyway —
                # work performed must never vanish from the registry.
                if pending:
                    for future in pending:
                        future.cancel()
                    done, _ = wait(pending)
                    for future in done:
                        if future.cancelled():
                            continue
                        try:
                            outcome = future.result()
                        except Exception:  # pragma: no cover  # repro: allow[ROB002]
                            continue
                        STATS.merge(outcome.counters)


def run_experiments(
    specs: Sequence[ExperimentSpec],
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> List[ExperimentOutcome]:
    """Convenience wrapper: ``ExperimentRunner(jobs, progress).run(specs)``."""
    return ExperimentRunner(jobs=jobs, progress=progress).run(specs)


def stderr_progress(prefix: str = "cell", stream=None):
    """A progress callback printing one line per completed cell.

    Reports ``completed/total`` plus the run's aggregate throughput in
    cells per second (measured from the callback's creation, so create it
    immediately before the run).  Lines are flushed explicitly: under a
    ``ProcessPoolExecutor`` the parent process can sit in ``wait()`` for
    long stretches, and unflushed progress would otherwise appear in
    bursts (or not at all when stderr is a pipe) — streaming mode is only
    observable if every completed cell is visible immediately.
    """
    import sys
    import time

    start = time.perf_counter()

    def callback(completed: int, total: int, outcome: ExperimentOutcome) -> None:
        out = stream if stream is not None else sys.stderr
        elapsed = max(time.perf_counter() - start, 1e-9)
        # FailedOutcome rows (exhausted retries) are distinct from the
        # paper's structural "N/A" cells: show the failure kind and the
        # attempts consumed so an operator can tell them apart on sight.
        failure = getattr(outcome, "failure", None)
        if outcome.feasible:
            status = "ok"
        elif failure:
            status = f"FAILED:{failure} after {getattr(outcome, 'attempts', 0)} attempt(s)"
        else:
            status = "N/A"
        label = outcome.label or outcome.circuit_name
        print(
            f"{prefix} {completed}/{total}: {label} [{status}, "
            f"{outcome.software_runtime_seconds:.2f}s] "
            f"({completed / elapsed:.2f} cells/s)",
            file=out,
            flush=True,
        )

    return callback
