"""Plain-text table rendering for the experiment harnesses.

The benchmark modules print their results in the same layout as the paper's
tables so the two can be compared side by side; this module provides the
small shared formatting helpers they use.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table with a header row.

    Cells are converted with ``str``; columns are right-aligned except the
    first, which is left-aligned (it usually holds a name).
    """
    string_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    all_rows = [list(map(str, headers))] + string_rows
    num_columns = max(len(row) for row in all_rows)
    for row in all_rows:
        row.extend([""] * (num_columns - len(row)))
    widths = [max(len(row[col]) for row in all_rows) for col in range(num_columns)]

    def render(row: List[str]) -> str:
        cells = []
        for col, cell in enumerate(row):
            if col == 0:
                cells.append(cell.ljust(widths[col]))
            else:
                cells.append(cell.rjust(widths[col]))
        return "  ".join(cells).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render(all_rows[0]))
    lines.append("-" * (sum(widths) + 2 * (num_columns - 1)))
    lines.extend(render(row) for row in all_rows[1:])
    return "\n".join(lines)


def format_seconds(value: Optional[float]) -> str:
    """Format a runtime in seconds the way the paper prints them (``.0136 sec``)."""
    if value is None:
        return "N/A"
    return f"{value:.4f} sec"


def format_runtime_and_stages(runtime_seconds: Optional[float], stages: Optional[int]) -> str:
    """The Table-3 cell format: ``<runtime> sec (<number of subcircuits>)``."""
    if runtime_seconds is None or stages is None:
        return "N/A"
    return f"{runtime_seconds:.4f} sec ({stages})"


def paper_vs_measured(paper: Optional[float], measured: Optional[float]) -> str:
    """A compact "paper vs measured" cell used in EXPERIMENTS.md extracts."""
    paper_text = "N/A" if paper is None else f"{paper:g}"
    measured_text = "N/A" if measured is None else f"{measured:g}"
    return f"paper {paper_text} / measured {measured_text}"
