"""Reconstruction of the paper's Table 2: experimentally realised circuits.

Table 2 takes three circuits that were actually executed on NMR hardware,
erases the experimentalists' hand-made qubit-to-nucleus assignment and lets
the tool reconstruct it.  For each (circuit, molecule) pair the table
reports the circuit size, the environment size, the estimated circuit
runtime of the placement found, and the size of the whole-circuit search
space ``m!/(m-n)!``.

The three pairs, with the paper's reported numbers, are captured in
:data:`TABLE2_ROWS`; :func:`run_table2` re-runs the placement for each and
returns measured values next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.analysis.runner import ExperimentRunner, ExperimentSpec
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import pseudo_cat_state_10q, qec3_encoder, qec5_encoder
from repro.core.config import PlacementOptions
from repro.core.result import PlacementResult
from repro.hardware.environment import PhysicalEnvironment, injective_placements
from repro.hardware.molecules import acetyl_chloride, histidine, trans_crotonic_acid


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2 (inputs plus the paper's reported values)."""

    circuit_factory: Callable[[], QuantumCircuit]
    environment_factory: Callable[[], PhysicalEnvironment]
    paper_runtime_seconds: float
    paper_search_space: int
    paper_num_gates: int
    paper_num_qubits: int


@dataclass(frozen=True)
class Table2Result:
    """Measured values for one Table 2 row."""

    circuit_name: str
    environment_name: str
    num_gates: int
    num_qubits: int
    environment_qubits: int
    measured_runtime_seconds: float
    num_subcircuits: int
    search_space: int
    paper_runtime_seconds: float
    paper_search_space: int
    result: PlacementResult


#: The three experiments of Table 2 with the values printed in the paper.
TABLE2_ROWS: Tuple[Table2Row, ...] = (
    Table2Row(qec3_encoder, acetyl_chloride, 0.0136, 6, 9, 3),
    Table2Row(qec5_encoder, trans_crotonic_acid, 0.0779, 2520, 25, 5),
    Table2Row(pseudo_cat_state_10q, histidine, 0.5170, 239_500_800, 54, 10),
)


def _result_from_outcome(row: Table2Row, outcome) -> Table2Result:
    """Build one :class:`Table2Result` from its executed cell.

    A Table 2 row that fails to place is a configuration error, not an
    expected "N/A" — ``raise_if_infeasible`` keeps the pre-runner
    throw-on-failure contract.
    """
    outcome.raise_if_infeasible()
    return Table2Result(
        circuit_name=outcome.circuit_name,
        environment_name=outcome.environment_name,
        num_gates=outcome.num_gates,
        num_qubits=outcome.num_qubits,
        environment_qubits=outcome.environment_qubits,
        measured_runtime_seconds=outcome.runtime_seconds,
        num_subcircuits=outcome.num_subcircuits,
        search_space=injective_placements(
            outcome.environment_qubits, outcome.num_qubits
        ),
        paper_runtime_seconds=row.paper_runtime_seconds,
        paper_search_space=row.paper_search_space,
        result=outcome.result,
    )


def run_table2(
    options: Optional[PlacementOptions] = None,
    jobs: int = 1,
    runner: Optional[ExperimentRunner] = None,
    on_result: Optional[Callable[[Table2Result], None]] = None,
) -> List[Table2Result]:
    """Place every Table 2 circuit into its molecule and collect the results.

    The three rows are independent cells; ``jobs > 1`` places them on
    worker processes (the row factories are module-level functions, so the
    specs pickle by reference).  ``on_result`` streams each row's result
    as soon as its cell completes (completion order for parallel runs);
    the returned list is always in table order.
    """
    specs = [
        ExperimentSpec(
            circuit_factory=row.circuit_factory,
            environment_factory=row.environment_factory,
            options=options,
            label=f"table2 row {index}",
            keep_result=True,
        )
        for index, row in enumerate(TABLE2_ROWS)
    ]
    runner = runner or ExperimentRunner(jobs=jobs)
    if on_result is None:
        outcomes = runner.run(specs)
        return [
            _result_from_outcome(row, outcome)
            for row, outcome in zip(TABLE2_ROWS, outcomes)
        ]
    return runner.run_ordered(
        specs,
        build=lambda outcome: _result_from_outcome(
            TABLE2_ROWS[outcome.index], outcome
        ),
        on_item=on_result,
        what="table 2 run",
    )
