"""Machine-readable serialisation of experiment outcomes.

One helper module shared by every surface that emits outcome rows —
``repro-place place/sweep --output json``, the shard-worker CLI
(``repro-place shard run``), :mod:`repro.analysis.sharding` outcome-shard
files and the sharded benchmark gate — so a row written anywhere can be
read (and compared byte for byte) everywhere.

Two views of an :class:`~repro.analysis.runner.ExperimentOutcome` exist:

* :func:`outcome_to_dict` — the full row, including the machine-dependent
  ``software_runtime_seconds`` wall time and the per-cell ``counters``
  delta.  This is what shard files and ``--output json`` carry.
* :func:`deterministic_row` — the row restricted to the fields the
  determinism contract covers (wall time and counters stripped).  Two
  executions of the same grid — serial vs sharded, ``jobs=1`` vs
  ``jobs=4`` — must produce byte-identical deterministic rows; this is
  the comparison the sharded bench gate and tests perform.

The full :class:`~repro.core.result.PlacementResult` (``outcome.result``,
present only for ``keep_result=True`` cells) is intentionally *not*
serialised: it is a deep object graph with no JSON form, and every grid
harness consumes only the scalar summary.  In-memory merges keep it;
file round-trips drop it.

:func:`dump_json` is the canonical encoder (sorted keys, fixed
separators, trailing newline): byte-identical inputs produce
byte-identical files, which is what "merged output equals serial output"
means at the file level.

This module is also where every artifact write becomes **crash-safe**:
:func:`atomic_write_text`/:func:`atomic_write_bytes` write to a temp file
in the destination directory, fsync, and ``os.replace`` into place, so an
interrupted writer leaves either the old file or the new one — never a
torn hybrid.  JSON payloads carry an embedded ``payload_sha256`` checksum
(:func:`checksummed_payload`, verified by :func:`verify_payload_checksum`)
so silent corruption that still parses as JSON is detected on read.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.analysis.runner import ExperimentOutcome
from repro.exceptions import ShardFormatError

#: Schema tag written into every JSON payload produced by this module.
SCHEMA_VERSION = 1

#: JSON key under which a payload embeds its own SHA-256 checksum.  The
#: digest covers the canonical encoding of the payload *without* this key.
CHECKSUM_KEY = "payload_sha256"

#: Outcome fields that are machine-dependent and therefore excluded from
#: :func:`deterministic_row`.  ``software_runtime_seconds`` is wall time;
#: ``counters`` include per-process cache counters whose values depend on
#: how the grid was split over processes (see ``docs/parallelism.md``).
NONDETERMINISTIC_FIELDS = ("software_runtime_seconds", "counters")

#: Counter names whose totals are per-cell deterministic wherever the cell
#: runs, so their *sums* over a grid are identical for any execution shape
#: (serial, multi-worker, sharded).  Cache counters are excluded: how many
#: adjacency graphs or host encodings each process builds depends on which
#: cells it received.
WORK_COUNTERS = (
    "monomorphism.searches",
    "monomorphism.nodes_explored",
    "monomorphism.mappings_yielded",
    "scheduler.full_evals",
    "scheduler.incremental_evals",
    "scheduler.ops_replayed",
    "scheduler.ops_skipped",
)


def outcome_to_dict(outcome: ExperimentOutcome) -> Dict[str, Any]:
    """The outcome as a plain JSON-safe dict (``result`` dropped).

    Built field by field rather than via ``dataclasses.asdict``, which
    would deep-convert an attached ``PlacementResult`` graph only for it
    to be discarded.
    """
    row = {
        field.name: getattr(outcome, field.name)
        for field in dataclasses.fields(outcome)
        if field.name != "result"
    }
    row["counters"] = {
        name: int(value) for name, value in sorted(row["counters"].items())
    }
    return row


def outcome_from_dict(row: Mapping[str, Any]) -> ExperimentOutcome:
    """Rebuild an :class:`ExperimentOutcome` from :func:`outcome_to_dict`.

    Rows carrying a ``failure`` key are rebuilt as
    :class:`~repro.analysis.resilience.FailedOutcome` — the structured
    form of a cell whose retries were exhausted — so failure metadata
    (``attempts``, ``failure``) survives file round trips.
    """
    from repro.analysis.resilience import FailedOutcome

    cls = FailedOutcome if "failure" in row else ExperimentOutcome
    known = {field.name for field in dataclasses.fields(cls)} - {"result"}
    data = {key: value for key, value in row.items() if key in known}
    data["counters"] = dict(data.get("counters") or {})
    return cls(**data)


def deterministic_row(outcome: ExperimentOutcome) -> Dict[str, Any]:
    """The outcome restricted to its deterministic fields.

    Byte-identical across execution shapes (serial, parallel, sharded)
    for the same grid — the unit of comparison of the determinism gates.
    """
    row = outcome_to_dict(outcome)
    for name in NONDETERMINISTIC_FIELDS:
        row.pop(name, None)
    return row


def deterministic_rows(outcomes: Sequence[ExperimentOutcome]) -> List[Dict[str, Any]]:
    """:func:`deterministic_row` over a whole outcome list."""
    return [deterministic_row(outcome) for outcome in outcomes]


def work_counters(counters: Mapping[str, int]) -> Dict[str, int]:
    """Restrict a counter mapping to the execution-shape-free counters."""
    return {
        name: int(counters[name]) for name in WORK_COUNTERS if counters.get(name)
    }


def outcomes_payload(
    outcomes: Sequence[ExperimentOutcome],
    counters: Optional[Mapping[str, int]] = None,
) -> Dict[str, Any]:
    """The shared ``--output json`` payload: outcome rows plus counters."""
    payload: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "rows": [outcome_to_dict(outcome) for outcome in outcomes],
    }
    if counters is not None:
        payload["counters"] = {
            name: int(value) for name, value in sorted(counters.items())
        }
    return payload


def dump_json(payload: object) -> str:
    """Canonical JSON encoding: sorted keys, fixed separators, newline."""
    return json.dumps(payload, sort_keys=True, separators=(",", ": "), indent=1) + "\n"


# ---------------------------------------------------------------------------
# Crash-safe writes and payload checksums
# ---------------------------------------------------------------------------


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the destination directory (``os.replace`` must
    not cross filesystems) and is fsynced before the rename, so a crash at
    any point leaves either the previous file or the complete new one.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def atomic_write_text(path: str, text: str) -> None:
    """UTF-8 text form of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))


def payload_checksum(payload: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical encoding of ``payload`` sans checksum key."""
    body = {key: value for key, value in payload.items() if key != CHECKSUM_KEY}
    return hashlib.sha256(dump_json(body).encode("utf-8")).hexdigest()


def checksummed_payload(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """A copy of ``payload`` with its :data:`CHECKSUM_KEY` embedded.

    Checksumming is deterministic (canonical encoding), so byte-identical
    payloads produce byte-identical checksummed files.
    """
    body = dict(payload)
    body[CHECKSUM_KEY] = payload_checksum(payload)
    return body


def verify_payload_checksum(payload: Mapping[str, Any], path: str) -> None:
    """Verify an embedded checksum, raising :class:`ShardFormatError`.

    Payloads without a :data:`CHECKSUM_KEY` pass (hand-written files and
    payloads captured from ``--output json`` before checksumming existed
    stay readable); a present-but-wrong checksum means the file was
    corrupted after writing and is rejected with the path and both
    digests in the message.
    """
    declared = payload.get(CHECKSUM_KEY)
    if declared is None:
        return
    actual = payload_checksum(payload)
    if actual != declared:
        raise ShardFormatError(
            f"{path!r}: payload checksum mismatch (file says {declared[:12]}, "
            f"content hashes to {actual[:12]}); the file was corrupted after "
            "it was written"
        )
