"""Machine-readable serialisation of experiment outcomes.

One helper module shared by every surface that emits outcome rows —
``repro-place place/sweep --output json``, the shard-worker CLI
(``repro-place shard run``), :mod:`repro.analysis.sharding` outcome-shard
files and the sharded benchmark gate — so a row written anywhere can be
read (and compared byte for byte) everywhere.

Two views of an :class:`~repro.analysis.runner.ExperimentOutcome` exist:

* :func:`outcome_to_dict` — the full row, including the machine-dependent
  ``software_runtime_seconds`` wall time and the per-cell ``counters``
  delta.  This is what shard files and ``--output json`` carry.
* :func:`deterministic_row` — the row restricted to the fields the
  determinism contract covers (wall time and counters stripped).  Two
  executions of the same grid — serial vs sharded, ``jobs=1`` vs
  ``jobs=4`` — must produce byte-identical deterministic rows; this is
  the comparison the sharded bench gate and tests perform.

The full :class:`~repro.core.result.PlacementResult` (``outcome.result``,
present only for ``keep_result=True`` cells) is intentionally *not*
serialised: it is a deep object graph with no JSON form, and every grid
harness consumes only the scalar summary.  In-memory merges keep it;
file round-trips drop it.

:func:`dump_json` is the canonical encoder (sorted keys, fixed
separators, trailing newline): byte-identical inputs produce
byte-identical files, which is what "merged output equals serial output"
means at the file level.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.runner import ExperimentOutcome

#: Schema tag written into every JSON payload produced by this module.
SCHEMA_VERSION = 1

#: Outcome fields that are machine-dependent and therefore excluded from
#: :func:`deterministic_row`.  ``software_runtime_seconds`` is wall time;
#: ``counters`` include per-process cache counters whose values depend on
#: how the grid was split over processes (see ``docs/parallelism.md``).
NONDETERMINISTIC_FIELDS = ("software_runtime_seconds", "counters")

#: Counter names whose totals are per-cell deterministic wherever the cell
#: runs, so their *sums* over a grid are identical for any execution shape
#: (serial, multi-worker, sharded).  Cache counters are excluded: how many
#: adjacency graphs or host encodings each process builds depends on which
#: cells it received.
WORK_COUNTERS = (
    "monomorphism.searches",
    "monomorphism.nodes_explored",
    "monomorphism.mappings_yielded",
    "scheduler.full_evals",
    "scheduler.incremental_evals",
    "scheduler.ops_replayed",
    "scheduler.ops_skipped",
)


def outcome_to_dict(outcome: ExperimentOutcome) -> Dict:
    """The outcome as a plain JSON-safe dict (``result`` dropped).

    Built field by field rather than via ``dataclasses.asdict``, which
    would deep-convert an attached ``PlacementResult`` graph only for it
    to be discarded.
    """
    row = {
        field.name: getattr(outcome, field.name)
        for field in dataclasses.fields(outcome)
        if field.name != "result"
    }
    row["counters"] = {
        name: int(value) for name, value in sorted(row["counters"].items())
    }
    return row


def outcome_from_dict(row: Mapping) -> ExperimentOutcome:
    """Rebuild an :class:`ExperimentOutcome` from :func:`outcome_to_dict`."""
    known = {
        field.name for field in dataclasses.fields(ExperimentOutcome)
    } - {"result"}
    data = {key: value for key, value in row.items() if key in known}
    data["counters"] = dict(data.get("counters") or {})
    return ExperimentOutcome(**data)


def deterministic_row(outcome: ExperimentOutcome) -> Dict:
    """The outcome restricted to its deterministic fields.

    Byte-identical across execution shapes (serial, parallel, sharded)
    for the same grid — the unit of comparison of the determinism gates.
    """
    row = outcome_to_dict(outcome)
    for name in NONDETERMINISTIC_FIELDS:
        row.pop(name, None)
    return row


def deterministic_rows(outcomes: Sequence[ExperimentOutcome]) -> List[Dict]:
    """:func:`deterministic_row` over a whole outcome list."""
    return [deterministic_row(outcome) for outcome in outcomes]


def work_counters(counters: Mapping[str, int]) -> Dict[str, int]:
    """Restrict a counter mapping to the execution-shape-free counters."""
    return {
        name: int(counters[name]) for name in WORK_COUNTERS if counters.get(name)
    }


def outcomes_payload(
    outcomes: Sequence[ExperimentOutcome],
    counters: Optional[Mapping[str, int]] = None,
) -> Dict:
    """The shared ``--output json`` payload: outcome rows plus counters."""
    payload: Dict = {
        "schema_version": SCHEMA_VERSION,
        "rows": [outcome_to_dict(outcome) for outcome in outcomes],
    }
    if counters is not None:
        payload["counters"] = {
            name: int(value) for name, value in sorted(counters.items())
        }
    return payload


def dump_json(payload: object) -> str:
    """Canonical JSON encoding: sorted keys, fixed separators, newline."""
    return json.dumps(payload, sort_keys=True, separators=(",", ": "), indent=1) + "\n"
