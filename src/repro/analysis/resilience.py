"""Fault-tolerant cell execution: retries, timeouts, and fault injection.

The experiment engine's failure model used to be "every cell either
returns or the whole grid dies": a worker crash, a hung placement or an
unexpected exception poisoned the entire run.  This module gives every
failure mode a defined, tested recovery path:

==================  =====================================================
failure mode        recovery
==================  =====================================================
cell exception      retried with deterministic backoff, up to
                    ``RetryPolicy.max_attempts``; exhausted cells become
                    structured :class:`FailedOutcome` rows
hung cell           killed when it exceeds ``RetryPolicy.cell_timeout``
                    and resubmitted like an exception
killed worker       detected as a closed result pipe (no message) and
                    resubmitted like an exception
infeasible cell     *not* a fault: :class:`~repro.exceptions.ThresholdError`
                    / :class:`~repro.exceptions.PlacementError` are the
                    paper's "N/A" cells and are never retried
corrupted file      detected on read by the checksum/format checks in
                    :mod:`repro.analysis.sharding`
                    (:class:`~repro.exceptions.ShardFormatError`); the
                    shard is re-run or re-planned, not silently merged
==================  =====================================================

Resilient execution isolates every attempt in its own child process (one
``multiprocessing.Process`` per attempt, at most ``jobs`` concurrent), so
a hang can be terminated and a crash cannot take the coordinator or its
pool down.  This costs a process start per cell and per-attempt cold
caches — the per-process *cache* counters differ from a plain run — but
every deterministic outcome field is byte-identical to the fault-free
serial run, which is the contract the merge step relies on
(``docs/parallelism.md`` section 8).  When no retry policy and no fault
injector are active, :class:`~repro.analysis.runner.ExperimentRunner`
keeps its original serial/pool paths untouched.

Determinism: the backoff schedule is a pure function of the cell index
and attempt number (SHA-256 jitter — independent of ``PYTHONHASHSEED``,
wall clock and worker count), and the :class:`FaultInjector` is a
deterministic spec-indexed plan, so a faulty run is exactly reproducible:
same plan, same retries, same final grid.

The injector is a **test-only hook**: install one with
:func:`install_fault_injector` (or the ``REPRO_FAULT_PLAN`` environment
variable for subprocess/CLI tests) to exercise the recovery paths; no
production code path constructs one.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing import connection as _mp_connection
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.runner import (
    ExperimentOutcome,
    ExperimentSpec,
    ProgressCallback,
    _execute_cell,
)
from repro.core.stats import STATS
from repro.exceptions import ExperimentError, InjectedFaultError

#: STATS counters maintained by the resilient executor (coordinator-side).
CELLS_RETRIED = "cells_retried"
CELLS_TIMED_OUT = "cells_timed_out"
CELLS_FAILED = "cells_failed"

#: Environment variable carrying a fault-plan spec for subprocess tests
#: (see :meth:`FaultInjector.from_spec`).
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: Fault actions a plan may request for a cell attempt.
FAULT_ACTIONS = ("raise", "hang", "kill")

#: How long an injected hang sleeps — effectively forever next to any
#: realistic ``cell_timeout``; the coordinator terminates it long before.
_HANG_SECONDS = 3600.0


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) failed cells are retried.

    Attributes
    ----------
    max_attempts:
        Total attempts per cell (1 = no retries).  ``RunConfig.retries``
        maps to ``max_attempts = retries + 1``.
    backoff:
        Delay in seconds before the first retry; doubles (by
        ``backoff_factor``) per subsequent retry.
    backoff_factor:
        Exponential base of the backoff schedule.
    jitter:
        Fractional jitter added on top of each delay.  The jitter value is
        *deterministic* — derived by SHA-256 from the cell index and the
        attempt number — so two runs of the same faulty grid sleep the
        same schedule (and tests can assert it), while distinct cells
        still decorrelate.
    cell_timeout:
        Per-cell wall-clock budget in seconds, enforced by the
        coordinator terminating the attempt's process.  ``None`` disables
        the timeout.
    """

    max_attempts: int = 1
    backoff: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.1
    cell_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ExperimentError(
                f"max_attempts must be a positive integer, got {self.max_attempts!r}"
            )
        if self.backoff < 0:
            raise ExperimentError(f"backoff must be >= 0, got {self.backoff!r}")
        if self.backoff_factor < 1.0:
            raise ExperimentError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ExperimentError(f"jitter must be in [0, 1], got {self.jitter!r}")
        if self.cell_timeout is not None and not self.cell_timeout > 0:
            raise ExperimentError(
                f"cell_timeout must be positive (or None), got {self.cell_timeout!r}"
            )

    @property
    def is_noop(self) -> bool:
        """Whether this policy changes nothing over plain execution."""
        return self.max_attempts == 1 and self.cell_timeout is None

    def delay(self, cell_index: int, attempt: int) -> float:
        """Backoff before retrying ``cell_index`` after failed ``attempt``.

        A pure function of its arguments: exponential in the (1-based)
        attempt number, with a deterministic jitter fraction derived from
        ``sha256(cell_index:attempt)`` — no global state, no wall clock,
        no hash seed.
        """
        if attempt < 1:
            raise ExperimentError(f"attempt numbers are 1-based, got {attempt}")
        base = self.backoff * self.backoff_factor ** (attempt - 1)
        digest = hashlib.sha256(f"{cell_index}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.jitter * unit)

    def schedule(self, cell_index: int) -> Tuple[float, ...]:
        """The cell's full backoff schedule (one delay per possible retry)."""
        return tuple(
            self.delay(cell_index, attempt)
            for attempt in range(1, self.max_attempts)
        )


# ---------------------------------------------------------------------------
# Fault injection (test-only hook)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultInjector:
    """A deterministic, spec-indexed fault plan.

    ``cell_faults`` maps a cell index (the *global* grid index when the
    grid came from a shard, the local index otherwise) to the sequence of
    fault actions its attempts suffer: attempt ``k`` (1-based) performs
    ``cell_faults[index][k-1]``; attempts beyond the sequence run clean —
    which is how a fault plan models a *transient* failure that retries
    recover from.  Actions:

    ``raise``
        The attempt raises :class:`~repro.exceptions.InjectedFaultError`
        before doing any work (a cell exception).
    ``hang``
        The attempt sleeps far past any timeout (a hung cell).
    ``kill``
        The attempt's process exits abruptly via ``os._exit`` (a killed
        worker).

    ``corrupt_outputs`` lists shard indices whose outcome files are
    corrupted (truncated in half) immediately after being written by
    :func:`repro.analysis.sharding.write_outcome_shard` — exercising the
    checksum/format detection and the replan/resume recovery path.
    """

    cell_faults: Mapping[int, Tuple[str, ...]] = field(default_factory=dict)
    corrupt_outputs: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for index, actions in dict(self.cell_faults).items():
            for action in actions:
                if action not in FAULT_ACTIONS:
                    raise ExperimentError(
                        f"unknown fault action {action!r} for cell {index}; "
                        f"use one of {FAULT_ACTIONS}"
                    )

    def fault_for(self, cell_index: int, attempt: int) -> Optional[str]:
        """The action injected into ``attempt`` of ``cell_index`` (or None)."""
        actions = self.cell_faults.get(cell_index)
        if actions is None or attempt > len(actions):
            return None
        return actions[attempt - 1]

    def corrupts_output(self, shard_index: int) -> bool:
        """Whether this plan corrupts the given shard's outcome file."""
        return shard_index in self.corrupt_outputs

    @classmethod
    def from_spec(cls, text: str) -> "FaultInjector":
        """Parse the ``REPRO_FAULT_PLAN`` grammar.

        Semicolon-separated clauses: ``<cell>:<action>[,<action>...]``
        injects per-attempt faults into a cell, ``out:<shard>`` corrupts a
        shard's outcome file after writing.  Example::

            REPRO_FAULT_PLAN="2:kill;5:raise,raise;out:1"
        """
        cell_faults: Dict[int, Tuple[str, ...]] = {}
        corrupt: List[int] = []
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            head, _, tail = clause.partition(":")
            try:
                if head.strip() == "out":
                    corrupt.append(int(tail.strip()))
                    continue
                index = int(head.strip())
                actions = tuple(
                    action.strip() for action in tail.split(",") if action.strip()
                )
            except ValueError:
                raise ExperimentError(
                    f"malformed fault-plan clause {clause!r}; expected "
                    "'<cell>:<action>[,...]' or 'out:<shard>'"
                ) from None
            if not actions:
                raise ExperimentError(
                    f"fault-plan clause {clause!r} names no actions"
                )
            cell_faults[index] = actions
        return cls(cell_faults=cell_faults, corrupt_outputs=tuple(corrupt))


_INSTALLED_INJECTOR: Optional[FaultInjector] = None


def install_fault_injector(injector: FaultInjector) -> None:
    """Install a process-wide fault injector (test-only)."""
    global _INSTALLED_INJECTOR
    if not isinstance(injector, FaultInjector):
        raise ExperimentError(
            f"install_fault_injector needs a FaultInjector, got "
            f"{type(injector).__name__}"
        )
    _INSTALLED_INJECTOR = injector


def clear_fault_injector() -> None:
    """Remove the installed fault injector."""
    global _INSTALLED_INJECTOR
    _INSTALLED_INJECTOR = None


def active_fault_injector() -> Optional[FaultInjector]:
    """The installed injector, or one parsed from ``REPRO_FAULT_PLAN``.

    The environment-variable path lets subprocess tests (and the CI
    fault-injection smoke) inject faults into an unmodified CLI
    invocation; an empty/unset variable means no injection.
    """
    if _INSTALLED_INJECTOR is not None:
        return _INSTALLED_INJECTOR
    text = os.environ.get(FAULT_PLAN_ENV_VAR)
    if not text:
        return None
    return FaultInjector.from_spec(text)


def corrupt_file(path: str) -> None:
    """Truncate a file to half its size (the injector's ``out:`` action).

    Half a canonical JSON payload can neither parse nor match its
    embedded checksum, so readers fail with
    :class:`~repro.exceptions.ShardFormatError` — never silently merge.
    """
    size = os.path.getsize(path)
    with open(path, "rb+") as handle:
        handle.truncate(size // 2)


# ---------------------------------------------------------------------------
# FailedOutcome
# ---------------------------------------------------------------------------


@dataclass
class FailedOutcome(ExperimentOutcome):
    """A cell whose retries were exhausted, as a structured grid row.

    Degrades a persistent failure into data instead of poisoning the
    grid: ``feasible`` is ``False`` (sweeps render "N/A"), ``error`` /
    ``error_type`` carry the last attempt's failure, ``failure``
    classifies it (``"error"``, ``"timeout"`` or ``"crash"``) and
    ``attempts`` counts the attempts consumed.  Serialised rows keep the
    extra fields (see :func:`repro.analysis.serialization.outcome_from_dict`),
    so failure metadata survives shard-file round trips and merges.
    """

    attempts: int = 0
    failure: str = "error"


# ---------------------------------------------------------------------------
# The resilient executor
# ---------------------------------------------------------------------------


def _attempt_child(conn, index: int, spec: ExperimentSpec, fault: Optional[str]) -> None:
    """Run one attempt in a child process and report through ``conn``.

    Protocol: ``("ok", outcome)`` for a completed cell (including the
    structurally-infeasible "N/A" outcomes, which are results, not
    faults); ``("error", message, type_name, counters_delta)`` for an
    unexpected exception — the delta ships back so work performed by a
    failed attempt never vanishes from the coordinator's registry.  A
    crash sends nothing: the coordinator sees the pipe close.
    """
    try:
        if fault == "kill":
            os._exit(17)
        before = STATS.snapshot()
        try:
            if fault == "hang":
                time.sleep(_HANG_SECONDS)
            if fault == "raise":
                raise InjectedFaultError(f"injected fault (cell {index})")
            outcome = _execute_cell((index, spec))
        except (KeyboardInterrupt, SystemExit):  # pragma: no cover
            raise
        except BaseException as exc:
            conn.send(("error", str(exc), type(exc).__name__, STATS.delta_since(before)))
            return
        conn.send(("ok", outcome))
    finally:
        conn.close()


@dataclass
class _CellState:
    """Coordinator-side bookkeeping for one cell."""

    local: int
    global_index: int
    spec: ExperimentSpec
    attempts: int = 0
    eligible_at: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)


def execute_cells(
    specs: Sequence[ExperimentSpec],
    policy: Optional[RetryPolicy] = None,
    injector: Optional[FaultInjector] = None,
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
    global_indices: Optional[Sequence[int]] = None,
) -> Iterator[ExperimentOutcome]:
    """Execute cells with per-attempt process isolation, retries, timeouts.

    Yields outcomes in completion order (``outcome.index`` is the local
    spec index, exactly like the plain runner paths); the ``progress``
    callback fires once per *final* outcome.  ``global_indices`` maps
    local spec positions to grid-global cell indices — the key space of
    the fault plan and the backoff jitter — and defaults to the local
    indices.

    Failure handling per attempt: an unexpected exception, a timeout
    (process terminated at ``policy.cell_timeout``) or a crash (pipe
    closed without a message) consumes one attempt; while attempts
    remain the cell re-enters the queue after its deterministic backoff
    (``cells_retried``; timeouts also count ``cells_timed_out``), and an
    exhausted cell yields a :class:`FailedOutcome` (``cells_failed``).
    """
    policy = policy or RetryPolicy()
    specs = list(specs)
    total = len(specs)
    if total == 0:
        return
    if global_indices is None:
        global_indices = range(total)
    global_indices = list(global_indices)
    if len(global_indices) != total:
        raise ExperimentError(
            f"got {len(global_indices)} global indices for {total} spec(s)"
        )
    jobs = max(1, min(int(jobs), total))

    states = [
        _CellState(local=local, global_index=global_index, spec=spec)
        for local, (global_index, spec) in enumerate(zip(global_indices, specs))
    ]
    waiting: List[_CellState] = list(states)
    running: Dict[object, Tuple[multiprocessing.Process, _CellState]] = {}
    deadlines: Dict[object, float] = {}
    completed = 0

    def fail_or_requeue(state: _CellState, kind: str, message: str,
                        type_name: str) -> Optional[FailedOutcome]:
        if state.attempts < policy.max_attempts:
            STATS.increment(CELLS_RETRIED)
            state.eligible_at = (
                time.monotonic() + policy.delay(state.global_index, state.attempts)
            )
            waiting.append(state)
            return None
        STATS.increment(CELLS_FAILED)
        return FailedOutcome(
            index=state.local,
            label=state.spec.label,
            feasible=False,
            runtime_seconds=None,
            num_subcircuits=None,
            error=message,
            error_type=type_name,
            counters=dict(state.counters),
            attempts=state.attempts,
            failure=kind,
        )

    try:
        while completed < total:
            now = time.monotonic()
            # Launch eligible cells, lowest (eligible_at, local) first, up
            # to the concurrency budget.
            while len(running) < jobs and waiting:
                eligible = [s for s in waiting if s.eligible_at <= now]
                if not eligible:
                    break
                state = min(eligible, key=lambda s: (s.eligible_at, s.local))
                waiting.remove(state)
                fault = (
                    injector.fault_for(state.global_index, state.attempts + 1)
                    if injector is not None
                    else None
                )
                parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
                process = multiprocessing.Process(
                    target=_attempt_child,
                    args=(child_conn, state.local, state.spec, fault),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                state.attempts += 1
                running[parent_conn] = (process, state)
                deadlines[parent_conn] = (
                    now + policy.cell_timeout
                    if policy.cell_timeout is not None
                    else math.inf
                )

            # How long to block: until the nearest attempt deadline or the
            # nearest backoff expiry, whichever is sooner.
            wake_times = [d for d in deadlines.values() if d < math.inf]
            if waiting and len(running) < jobs:
                wake_times.append(min(s.eligible_at for s in waiting))
            if not running:
                if wake_times:
                    time.sleep(max(0.0, min(wake_times) - time.monotonic()))
                continue
            timeout = (
                max(0.0, min(wake_times) - time.monotonic()) if wake_times else None
            )
            ready = _mp_connection.wait(list(running), timeout=timeout)

            for conn in ready:
                process, state = running.pop(conn)
                deadlines.pop(conn)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = None
                conn.close()
                process.join()
                outcome: Optional[ExperimentOutcome] = None
                if message is not None and message[0] == "ok":
                    outcome = message[1]
                    STATS.merge(outcome.counters)
                elif message is not None and message[0] == "error":
                    _, text, type_name, counters = message
                    STATS.merge(counters)
                    for name, value in counters.items():
                        state.counters[name] = state.counters.get(name, 0) + value
                    outcome = fail_or_requeue(state, "error", text, type_name)
                else:
                    outcome = fail_or_requeue(
                        state,
                        "crash",
                        f"worker process for cell {state.spec.label or state.local!r} "
                        f"died without a result (exit code {process.exitcode})",
                        "WorkerCrash",
                    )
                if outcome is not None:
                    completed += 1
                    if progress is not None:
                        progress(completed, total, outcome)
                    yield outcome

            # Deadline sweep: terminate attempts that exceeded the budget.
            now = time.monotonic()
            for conn in [c for c, d in list(deadlines.items()) if d <= now]:
                process, state = running.pop(conn)
                deadlines.pop(conn)
                process.terminate()
                process.join()
                conn.close()
                STATS.increment(CELLS_TIMED_OUT)
                outcome = fail_or_requeue(
                    state,
                    "timeout",
                    f"cell {state.spec.label or state.local!r} exceeded "
                    f"cell_timeout={policy.cell_timeout:g}s "
                    f"(attempt {state.attempts})",
                    "CellTimeout",
                )
                if outcome is not None:
                    completed += 1
                    if progress is not None:
                        progress(completed, total, outcome)
                    yield outcome
    finally:
        # Abandoned mid-grid (consumer break, exception in a callback):
        # never leave attempt processes running.
        for conn, (process, _) in running.items():
            process.terminate()
            process.join()
            conn.close()
