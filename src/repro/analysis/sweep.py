"""Threshold sweeps (the paper's Table 3).

For a set of circuits, a molecule, and a list of ``Threshold`` values, run
the placer at each threshold and record the total runtime and the number of
subcircuits, marking combinations that cannot run (disconnected or empty
adjacency graph) as ``N/A`` exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.config import PlacementOptions
from repro.core.exhaustive import whole_circuit_runtime
from repro.core.placement import place_circuit
from repro.exceptions import PlacementError, ThresholdError
from repro.hardware.environment import PhysicalEnvironment
from repro.hardware.threshold_graph import PAPER_THRESHOLDS


@dataclass(frozen=True)
class SweepCell:
    """One cell of the sweep: a (circuit, threshold) combination.

    ``runtime_seconds`` and ``num_subcircuits`` are ``None`` when the
    combination is infeasible (the paper's "N/A").
    """

    circuit_name: str
    threshold: float
    runtime_seconds: Optional[float]
    num_subcircuits: Optional[int]

    @property
    def feasible(self) -> bool:
        """Whether the circuit could be placed at this threshold."""
        return self.runtime_seconds is not None

    def formatted(self) -> str:
        """The paper's cell format ``<runtime> sec (<subcircuits>)`` or ``N/A``."""
        if not self.feasible:
            return "N/A"
        return f"{self.runtime_seconds:.4f} sec ({self.num_subcircuits})"


@dataclass
class SweepRow:
    """All thresholds for one circuit on one environment."""

    circuit_name: str
    environment_name: str
    cells: List[SweepCell]

    def best_cell(self) -> Optional[SweepCell]:
        """The feasible cell with the smallest runtime (``None`` if none)."""
        feasible = [cell for cell in self.cells if cell.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda cell: cell.runtime_seconds)

    def cell_at(self, threshold: float) -> Optional[SweepCell]:
        """The cell at a specific threshold value."""
        for cell in self.cells:
            if cell.threshold == threshold:
                return cell
        return None


def sweep_circuit(
    circuit_factory,
    environment: PhysicalEnvironment,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    options: Optional[PlacementOptions] = None,
    reuse_equivalent_cells: bool = True,
) -> SweepRow:
    """Place one circuit at every threshold (fresh circuit per threshold).

    Two thresholds falling between the same consecutive delay values of the
    environment admit exactly the same fast interactions, so the placer
    would do byte-identical work for both cells (only the reported
    threshold differs).  With ``reuse_equivalent_cells`` (the default) such
    cells are computed once and shared via the environment's
    :meth:`~repro.hardware.environment.PhysicalEnvironment.threshold_signature`;
    disable it to force one full placement run per threshold (e.g. when
    benchmarking the placer itself).
    """
    base_options = options or PlacementOptions()
    cells: List[SweepCell] = []
    circuit_name = circuit_factory().name
    memo: Dict = {}
    for threshold in thresholds:
        signature = (
            environment.threshold_signature(threshold)
            if reuse_equivalent_cells
            else None
        )
        if signature is not None and signature in memo:
            runtime_seconds, num_subcircuits = memo[signature]
        else:
            try:
                result = place_circuit(
                    circuit_factory(),
                    environment,
                    base_options.replace(threshold=threshold),
                )
                runtime_seconds = result.runtime_seconds
                num_subcircuits = result.num_subcircuits
            except (ThresholdError, PlacementError):
                runtime_seconds = None
                num_subcircuits = None
            if signature is not None:
                memo[signature] = (runtime_seconds, num_subcircuits)
        cells.append(
            SweepCell(
                circuit_name=circuit_name,
                threshold=float(threshold),
                runtime_seconds=runtime_seconds,
                num_subcircuits=num_subcircuits,
            )
        )
    return SweepRow(circuit_name, environment.name, cells)


def sweep_environment(
    circuit_factories: Iterable,
    environment: PhysicalEnvironment,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    options: Optional[PlacementOptions] = None,
) -> List[SweepRow]:
    """Sweep several circuits over one environment (one Table 3 block)."""
    return [
        sweep_circuit(factory, environment, thresholds, options)
        for factory in circuit_factories
    ]


def whole_circuit_reference(
    circuit_factory,
    environment: PhysicalEnvironment,
    apply_interaction_cap: bool = True,
) -> float:
    """Runtime (seconds) of the optimal whole-circuit placement (no SWAPs).

    This is the last-column reference of Table 3: "circuit runtime with the
    optimal placement when placed without insertion of SWAPs".
    """
    circuit = circuit_factory()
    runtime_units = whole_circuit_runtime(
        circuit, environment, apply_interaction_cap=apply_interaction_cap
    )
    return runtime_units * environment.time_unit_seconds
