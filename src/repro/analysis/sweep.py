"""Threshold sweeps (the paper's Table 3).

For a set of circuits, a molecule, and a list of ``Threshold`` values, run
the placer at each threshold and record the total runtime and the number of
subcircuits, marking combinations that cannot run (disconnected or empty
adjacency graph) as ``N/A`` exactly as the paper does.

Cells are executed through :class:`repro.analysis.runner.ExperimentRunner`,
so a sweep can fan out over worker processes (``jobs=4``) and still return
byte-identical rows to the serial run — pass picklable circuit factories
(module-level functions or ``functools.partial``) when using ``jobs > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.runner import (
    ExperimentRunner,
    ExperimentSpec,
    constant_environment,
)
from repro.core.config import PlacementOptions
from repro.core.exhaustive import whole_circuit_runtime
from repro.hardware.environment import PhysicalEnvironment
from repro.hardware.threshold_graph import PAPER_THRESHOLDS


@dataclass(frozen=True)
class SweepCell:
    """One cell of the sweep: a (circuit, threshold) combination.

    ``runtime_seconds`` and ``num_subcircuits`` are ``None`` when the
    combination is infeasible (the paper's "N/A").
    """

    circuit_name: str
    threshold: float
    runtime_seconds: Optional[float]
    num_subcircuits: Optional[int]

    @property
    def feasible(self) -> bool:
        """Whether the circuit could be placed at this threshold."""
        return self.runtime_seconds is not None

    def formatted(self) -> str:
        """The paper's cell format ``<runtime> sec (<subcircuits>)`` or ``N/A``."""
        if not self.feasible:
            return "N/A"
        return f"{self.runtime_seconds:.4f} sec ({self.num_subcircuits})"


@dataclass
class SweepRow:
    """All thresholds for one circuit on one environment."""

    circuit_name: str
    environment_name: str
    cells: List[SweepCell]

    def best_cell(self) -> Optional[SweepCell]:
        """The feasible cell with the smallest runtime (``None`` if none)."""
        feasible = [cell for cell in self.cells if cell.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda cell: cell.runtime_seconds)

    def cell_at(self, threshold: float) -> Optional[SweepCell]:
        """The cell at a specific threshold value."""
        for cell in self.cells:
            if cell.threshold == threshold:
                return cell
        return None


def _sweep_specs(
    circuit_factory,
    circuit_name: str,
    environment: PhysicalEnvironment,
    environment_factory,
    thresholds: Sequence[float],
    options: PlacementOptions,
    reuse_equivalent_cells: bool,
) -> Tuple[List[ExperimentSpec], List[int]]:
    """Deduplicated cell specs plus, per threshold, its spec index.

    Two thresholds falling between the same consecutive delay values of the
    environment admit exactly the same fast interactions, so the placer
    would do byte-identical work for both cells (only the reported
    threshold differs); with ``reuse_equivalent_cells`` such cells share one
    spec via the environment's
    :meth:`~repro.hardware.environment.PhysicalEnvironment.threshold_signature`.
    """
    specs: List[ExperimentSpec] = []
    cell_index: List[int] = []
    memo: Dict = {}
    for position, threshold in enumerate(thresholds):
        signature = (
            environment.threshold_signature(threshold)
            if reuse_equivalent_cells
            else ("cell", position)
        )
        index = memo.get(signature)
        if index is None:
            index = len(specs)
            memo[signature] = index
            specs.append(
                ExperimentSpec(
                    circuit_factory=circuit_factory,
                    environment_factory=environment_factory,
                    threshold=float(threshold),
                    options=options,
                    label=f"{circuit_name}@{environment.name} thr {threshold:g}",
                )
            )
        cell_index.append(index)
    return specs, cell_index


def _cells_from_outcomes(
    outcomes, cell_index: List[int], thresholds: Sequence[float], circuit_name: str
) -> List[SweepCell]:
    return [
        SweepCell(
            circuit_name=circuit_name,
            threshold=float(threshold),
            runtime_seconds=outcomes[index].runtime_seconds,
            num_subcircuits=outcomes[index].num_subcircuits,
        )
        for threshold, index in zip(thresholds, cell_index)
    ]


def _run_sweep_grid(
    row_inputs: Sequence[Tuple[str, object, PhysicalEnvironment, object]],
    thresholds: Sequence[float],
    options: PlacementOptions,
    reuse_equivalent_cells: bool,
    jobs: int,
    runner: Optional[ExperimentRunner],
) -> List[SweepRow]:
    """Execute a multi-row sweep grid as one flattened cell list.

    ``row_inputs`` holds one ``(circuit_name, circuit_factory, environment,
    environment_factory)`` tuple per output row.  Flattening before
    execution means a parallel runner interleaves cells of *all* rows on a
    single worker pool instead of paying pool start-up per row.
    """
    all_specs: List[ExperimentSpec] = []
    row_layouts: List[Tuple[str, str, List[int]]] = []
    for circuit_name, circuit_factory, environment, environment_factory in row_inputs:
        specs, cell_index = _sweep_specs(
            circuit_factory,
            circuit_name,
            environment,
            environment_factory,
            thresholds,
            options,
            reuse_equivalent_cells,
        )
        offset = len(all_specs)
        all_specs.extend(specs)
        row_layouts.append(
            (circuit_name, environment.name, [offset + index for index in cell_index])
        )
    outcomes = (runner or ExperimentRunner(jobs=jobs)).run(all_specs)
    return [
        SweepRow(
            circuit_name,
            environment_name,
            _cells_from_outcomes(outcomes, cell_index, thresholds, circuit_name),
        )
        for circuit_name, environment_name, cell_index in row_layouts
    ]


def sweep_circuit(
    circuit_factory,
    environment: PhysicalEnvironment,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    options: Optional[PlacementOptions] = None,
    reuse_equivalent_cells: bool = True,
    jobs: int = 1,
    runner: Optional[ExperimentRunner] = None,
) -> SweepRow:
    """Place one circuit at every threshold (fresh circuit per threshold).

    Equivalent thresholds share one placement run by default (see
    :func:`_sweep_specs`); disable ``reuse_equivalent_cells`` to force one
    full run per threshold (e.g. when benchmarking the placer itself).
    With ``jobs > 1`` (or an explicit ``runner``) the deduplicated cells
    execute on worker processes; the row is identical to the serial one.
    """
    return _run_sweep_grid(
        [
            (
                circuit_factory().name,
                circuit_factory,
                environment,
                constant_environment(environment),
            )
        ],
        thresholds,
        options or PlacementOptions(),
        reuse_equivalent_cells,
        jobs,
        runner,
    )[0]


def sweep_environment(
    circuit_factories: Iterable,
    environment: PhysicalEnvironment,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    options: Optional[PlacementOptions] = None,
    reuse_equivalent_cells: bool = True,
    jobs: int = 1,
    runner: Optional[ExperimentRunner] = None,
) -> List[SweepRow]:
    """Sweep several circuits over one environment (one Table 3 block).

    The whole (circuit x threshold) grid is flattened into one cell list
    before execution, so a parallel runner interleaves cells of *all* rows
    instead of running one serial row at a time.
    """
    environment_factory = constant_environment(environment)
    return _run_sweep_grid(
        [
            (circuit_factory().name, circuit_factory, environment, environment_factory)
            for circuit_factory in circuit_factories
        ],
        thresholds,
        options or PlacementOptions(),
        reuse_equivalent_cells,
        jobs,
        runner,
    )


def sweep_table(
    circuit_factory,
    environments: Iterable[PhysicalEnvironment],
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    options: Optional[PlacementOptions] = None,
    reuse_equivalent_cells: bool = True,
    jobs: int = 1,
    runner: Optional[ExperimentRunner] = None,
) -> List[SweepRow]:
    """Sweep one circuit over several environments (a full Table 3).

    Like :func:`sweep_environment` but varying the environment instead of
    the circuit, and likewise flattened into a single cell list — one
    parallel run (one worker pool) covers every molecule's row instead of
    paying pool start-up per environment.
    """
    circuit_name = circuit_factory().name
    return _run_sweep_grid(
        [
            (circuit_name, circuit_factory, environment, constant_environment(environment))
            for environment in environments
        ],
        thresholds,
        options or PlacementOptions(),
        reuse_equivalent_cells,
        jobs,
        runner,
    )


def whole_circuit_reference(
    circuit_factory,
    environment: PhysicalEnvironment,
    apply_interaction_cap: bool = True,
) -> float:
    """Runtime (seconds) of the optimal whole-circuit placement (no SWAPs).

    This is the last-column reference of Table 3: "circuit runtime with the
    optimal placement when placed without insertion of SWAPs".
    """
    circuit = circuit_factory()
    runtime_units = whole_circuit_runtime(
        circuit, environment, apply_interaction_cap=apply_interaction_cap
    )
    return runtime_units * environment.time_unit_seconds
