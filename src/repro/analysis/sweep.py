"""Threshold sweeps (the paper's Table 3).

For a set of circuits, a molecule, and a list of ``Threshold`` values, run
the placer at each threshold and record the total runtime and the number of
subcircuits, marking combinations that cannot run (disconnected or empty
adjacency graph) as ``N/A`` exactly as the paper does.

Cells are executed through :class:`repro.analysis.runner.ExperimentRunner`,
so a sweep can fan out over worker processes (``jobs=4``) and still return
byte-identical rows to the serial run — pass picklable circuit factories
(module-level functions or ``functools.partial``) when using ``jobs > 1``.

Circuits and environments may also be given as registry spec strings
(``"qft:7"``, ``"trans-crotonic-acid"``, ``"grid:4x4"``; see
:mod:`repro.registry`): string specs resolve through the module-level
loaders, so the resulting grids serialise — and fingerprint — identically
in any process, exactly like the CLI's.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.runner import (
    ExperimentRunner,
    ExperimentSpec,
    constant_environment,
)
from repro.core.config import PlacementOptions
from repro.core.exhaustive import whole_circuit_runtime
from repro.exceptions import ExperimentError
from repro.hardware.environment import PhysicalEnvironment
from repro.hardware.threshold_graph import PAPER_THRESHOLDS
from repro.registry import as_circuit_factory, load_environment

#: A circuit factory, or a registry spec string resolving to one.
CircuitLike = Union[str, Callable]

#: An environment object, or a registry spec string resolving to one.
EnvironmentLike = Union[str, PhysicalEnvironment]


def _coerce_environment(
    environment: EnvironmentLike,
) -> Tuple[PhysicalEnvironment, Callable[[], PhysicalEnvironment]]:
    """The environment object plus its picklable factory.

    Spec strings become ``partial(load_environment, spec)`` factories
    (deterministic across processes); environment objects are wrapped
    with :func:`constant_environment` as before.
    """
    if isinstance(environment, str):
        return load_environment(environment), partial(load_environment, environment)
    return environment, constant_environment(environment)


@dataclass(frozen=True)
class SweepCell:
    """One cell of the sweep: a (circuit, threshold) combination.

    ``runtime_seconds`` and ``num_subcircuits`` are ``None`` when the
    combination is infeasible (the paper's "N/A").
    """

    circuit_name: str
    threshold: float
    runtime_seconds: Optional[float]
    num_subcircuits: Optional[int]

    @property
    def feasible(self) -> bool:
        """Whether the circuit could be placed at this threshold."""
        return self.runtime_seconds is not None

    def formatted(self) -> str:
        """The paper's cell format ``<runtime> sec (<subcircuits>)`` or ``N/A``."""
        if not self.feasible:
            return "N/A"
        return f"{self.runtime_seconds:.4f} sec ({self.num_subcircuits})"


@dataclass
class SweepRow:
    """All thresholds for one circuit on one environment."""

    circuit_name: str
    environment_name: str
    cells: List[SweepCell]

    def best_cell(self) -> Optional[SweepCell]:
        """The feasible cell with the smallest runtime (``None`` if none)."""
        feasible = [cell for cell in self.cells if cell.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda cell: cell.runtime_seconds)

    def cell_at(self, threshold: float) -> Optional[SweepCell]:
        """The cell at a specific threshold value."""
        for cell in self.cells:
            if cell.threshold == threshold:
                return cell
        return None


def _sweep_specs(
    circuit_factory,
    circuit_name: str,
    environment: PhysicalEnvironment,
    environment_factory,
    thresholds: Sequence[float],
    options: PlacementOptions,
    reuse_equivalent_cells: bool,
) -> Tuple[List[ExperimentSpec], List[int]]:
    """Deduplicated cell specs plus, per threshold, its spec index.

    Two thresholds falling between the same consecutive delay values of the
    environment admit exactly the same fast interactions, so the placer
    would do byte-identical work for both cells (only the reported
    threshold differs); with ``reuse_equivalent_cells`` such cells share one
    spec via the environment's
    :meth:`~repro.hardware.environment.PhysicalEnvironment.threshold_signature`.
    """
    specs: List[ExperimentSpec] = []
    cell_index: List[int] = []
    memo: Dict = {}
    for position, threshold in enumerate(thresholds):
        signature = (
            environment.threshold_signature(threshold)
            if reuse_equivalent_cells
            else ("cell", position)
        )
        index = memo.get(signature)
        if index is None:
            index = len(specs)
            memo[signature] = index
            specs.append(
                ExperimentSpec(
                    circuit_factory=circuit_factory,
                    environment_factory=environment_factory,
                    threshold=float(threshold),
                    options=options,
                    label=f"{circuit_name}@{environment.name} thr {threshold:g}",
                )
            )
        cell_index.append(index)
    return specs, cell_index


def build_sweep_specs(
    circuit_factory,
    environment: PhysicalEnvironment,
    environment_factory,
    thresholds: Sequence[float],
    options: Optional[PlacementOptions] = None,
    reuse_equivalent_cells: bool = True,
    circuit_name: Optional[str] = None,
) -> Tuple[List[ExperimentSpec], List[int]]:
    """The flattened, deduplicated cell list of one sweep row.

    Public entry point for callers that need the raw grid rather than
    executed rows — the sharding pipeline plans over exactly this list
    (``repro-place shard plan`` / ``sweep --shards``).  Returns the specs
    plus, for each threshold position, the index of the spec that serves
    it (equivalent thresholds share a spec; see :func:`_sweep_specs`).
    ``environment_factory`` is the picklable factory shipped to workers
    and into shard files; pass one that serialises deterministically
    (e.g. a ``partial`` over a module-level loader) when plans must be
    reproducible across processes.
    """
    return _sweep_specs(
        circuit_factory,
        circuit_name or circuit_factory().name,
        environment,
        environment_factory,
        thresholds,
        options or PlacementOptions(),
        reuse_equivalent_cells,
    )


def row_from_outcomes(
    outcomes,
    cell_index: List[int],
    thresholds: Sequence[float],
    circuit_name: str,
    environment_name: str,
) -> SweepRow:
    """Reassemble a :class:`SweepRow` from executed sweep-grid outcomes.

    The inverse of :func:`build_sweep_specs`: ``outcomes`` holds one
    outcome per spec (grid order — e.g. a merged shard grid) and
    ``cell_index`` fans them back out to the threshold positions.
    """
    return SweepRow(
        circuit_name,
        environment_name,
        _cells_from_outcomes(outcomes, cell_index, thresholds, circuit_name),
    )


def _cells_from_outcomes(
    outcomes, cell_index: List[int], thresholds: Sequence[float], circuit_name: str
) -> List[SweepCell]:
    return [
        SweepCell(
            circuit_name=circuit_name,
            threshold=float(threshold),
            runtime_seconds=outcomes[index].runtime_seconds,
            num_subcircuits=outcomes[index].num_subcircuits,
        )
        for threshold, index in zip(thresholds, cell_index)
    ]


def _run_sweep_grid(
    row_inputs: Sequence[Tuple[str, object, PhysicalEnvironment, object]],
    thresholds: Sequence[float],
    options: PlacementOptions,
    reuse_equivalent_cells: bool,
    jobs: int,
    runner: Optional[ExperimentRunner],
    on_row: Optional[Callable[[SweepRow], None]] = None,
) -> List[SweepRow]:
    """Execute a multi-row sweep grid as one flattened cell list.

    ``row_inputs`` holds one ``(circuit_name, circuit_factory, environment,
    environment_factory)`` tuple per output row.  Flattening before
    execution means a parallel runner interleaves cells of *all* rows on a
    single worker pool instead of paying pool start-up per row.

    With ``on_row``, cells stream through
    :meth:`ExperimentRunner.iter_outcomes` and the callback fires with
    each :class:`SweepRow` the moment its last cell completes — in row
    *completion* order, which for parallel runs need not be input order.
    The returned list is in input order either way.
    """
    all_specs: List[ExperimentSpec] = []
    row_layouts: List[Tuple[str, str, List[int]]] = []
    for circuit_name, circuit_factory, environment, environment_factory in row_inputs:
        specs, cell_index = _sweep_specs(
            circuit_factory,
            circuit_name,
            environment,
            environment_factory,
            thresholds,
            options,
            reuse_equivalent_cells,
        )
        offset = len(all_specs)
        all_specs.extend(specs)
        row_layouts.append(
            (circuit_name, environment.name, [offset + index for index in cell_index])
        )
    runner = runner or ExperimentRunner(jobs=jobs)
    if on_row is None:
        outcomes = runner.run(all_specs)
    else:
        # Per-row countdown of distinct pending cells: O(1) bookkeeping
        # per completed outcome (each spec belongs to exactly one row).
        collected: List[Optional[object]] = [None] * len(all_specs)
        remaining: List[int] = []
        row_of_spec: Dict[int, int] = {}
        for position, (_, _, cell_index) in enumerate(row_layouts):
            distinct = set(cell_index)
            remaining.append(len(distinct))
            for index in distinct:
                row_of_spec[index] = position

        def handle(outcome):
            collected[outcome.index] = outcome
            position = row_of_spec[outcome.index]
            remaining[position] -= 1
            if remaining[position] == 0:
                circuit_name, environment_name, cell_index = row_layouts[position]
                on_row(
                    row_from_outcomes(
                        collected, cell_index, thresholds, circuit_name,
                        environment_name,
                    )
                )

        outcomes = runner.run_ordered(all_specs, on_item=handle, what="sweep grid")
    return [
        row_from_outcomes(
            outcomes, cell_index, thresholds, circuit_name, environment_name
        )
        for circuit_name, environment_name, cell_index in row_layouts
    ]


def sweep_circuit(
    circuit_factory: CircuitLike,
    environment: EnvironmentLike,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    options: Optional[PlacementOptions] = None,
    reuse_equivalent_cells: bool = True,
    jobs: int = 1,
    runner: Optional[ExperimentRunner] = None,
    on_row: Optional[Callable[[SweepRow], None]] = None,
) -> SweepRow:
    """Place one circuit at every threshold (fresh circuit per threshold).

    Equivalent thresholds share one placement run by default (see
    :func:`_sweep_specs`); disable ``reuse_equivalent_cells`` to force one
    full run per threshold (e.g. when benchmarking the placer itself).
    With ``jobs > 1`` (or an explicit ``runner``) the deduplicated cells
    execute on worker processes; the row is identical to the serial one.
    """
    circuit_factory = as_circuit_factory(circuit_factory)
    environment, environment_factory = _coerce_environment(environment)
    return _run_sweep_grid(
        [
            (
                circuit_factory().name,
                circuit_factory,
                environment,
                environment_factory,
            )
        ],
        thresholds,
        options or PlacementOptions(),
        reuse_equivalent_cells,
        jobs,
        runner,
        on_row,
    )[0]


def sweep_environment(
    circuit_factories: Iterable[CircuitLike],
    environment: EnvironmentLike,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    options: Optional[PlacementOptions] = None,
    reuse_equivalent_cells: bool = True,
    jobs: int = 1,
    runner: Optional[ExperimentRunner] = None,
    on_row: Optional[Callable[[SweepRow], None]] = None,
) -> List[SweepRow]:
    """Sweep several circuits over one environment (one Table 3 block).

    The whole (circuit x threshold) grid is flattened into one cell list
    before execution, so a parallel runner interleaves cells of *all* rows
    instead of running one serial row at a time.  ``on_row`` streams each
    circuit's row as soon as its last cell completes (completion order).
    """
    environment, environment_factory = _coerce_environment(environment)
    return _run_sweep_grid(
        [
            (circuit_factory().name, circuit_factory, environment, environment_factory)
            for circuit_factory in map(as_circuit_factory, circuit_factories)
        ],
        thresholds,
        options or PlacementOptions(),
        reuse_equivalent_cells,
        jobs,
        runner,
        on_row,
    )


def sweep_table(
    circuit_factory: CircuitLike,
    environments: Iterable[EnvironmentLike],
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    options: Optional[PlacementOptions] = None,
    reuse_equivalent_cells: bool = True,
    jobs: int = 1,
    runner: Optional[ExperimentRunner] = None,
    on_row: Optional[Callable[[SweepRow], None]] = None,
) -> List[SweepRow]:
    """Sweep one circuit over several environments (a full Table 3).

    Like :func:`sweep_environment` but varying the environment instead of
    the circuit, and likewise flattened into a single cell list — one
    parallel run (one worker pool) covers every molecule's row instead of
    paying pool start-up per environment.  ``on_row`` streams each
    environment's row as soon as its last cell completes.
    """
    circuit_factory = as_circuit_factory(circuit_factory)
    circuit_name = circuit_factory().name
    return _run_sweep_grid(
        [
            (circuit_name, circuit_factory) + _coerce_environment(environment)
            for environment in environments
        ],
        thresholds,
        options or PlacementOptions(),
        reuse_equivalent_cells,
        jobs,
        runner,
        on_row,
    )


def whole_circuit_reference(
    circuit_factory,
    environment: PhysicalEnvironment,
    apply_interaction_cap: bool = True,
) -> float:
    """Runtime (seconds) of the optimal whole-circuit placement (no SWAPs).

    This is the last-column reference of Table 3: "circuit runtime with the
    optimal placement when placed without insertion of SWAPs".
    """
    circuit = as_circuit_factory(circuit_factory)()
    if isinstance(environment, str):
        environment = load_environment(environment)
    runtime_units = whole_circuit_runtime(
        circuit, environment, apply_interaction_cap=apply_interaction_cap
    )
    return runtime_units * environment.time_unit_seconds
