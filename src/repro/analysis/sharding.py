"""Sharded experiment grids: plan → execute → merge.

The :class:`~repro.analysis.runner.ExperimentRunner` fans a grid's cells
over local worker processes; this module is the next scaling layer up —
splitting one flattened grid into *shards* that can be executed anywhere
(other hosts, other containers, a batch queue) and merged back into the
exact result the serial runner would have produced.

The pipeline has three stages, each with a file format so the stages can
run in different processes on different machines:

**plan**
    :meth:`ShardPlan.build` deterministically partitions a flattened,
    deduplicated spec list into ``N`` shards — round-robin, or
    cost-balanced by circuit size (greedy longest-processing-time with
    index tie-breaks, so the same grid always yields the same plan).  The
    plan carries a ``fingerprint`` of the grid; every derived artifact
    echoes it, which is how the merge step refuses to combine shards of
    different grids.  :func:`write_shard` serialises each shard's input
    (:class:`ShardInput`: the specs plus their *global* grid indices) to a
    pickle file a shard worker can execute without any other context.

**execute**
    :func:`execute_shard` runs one shard's cells through an ordinary
    :class:`ExperimentRunner` (so a shard worker can itself use ``jobs>1``
    process parallelism) and packages an :class:`OutcomeShard`: the
    outcomes re-labelled with their global grid indices, the shard's
    :data:`~repro.core.stats.STATS` counter delta, and the plan
    fingerprint.  :func:`write_outcome_shard` serialises it to JSON (via
    :mod:`repro.analysis.serialization`, the same row format as
    ``--output json``).

**merge**
    :func:`merge_shards` verifies the shards' fingerprints and index sets
    against each other (and against the plan, when given), restores grid
    order, and merges the counter deltas with
    :meth:`~repro.core.stats.Counters.merge`.  The merged outcome list is
    exactly what ``ExperimentRunner.run`` on the whole grid returns —
    deterministic fields byte-identical, wall times shard-local.

Local execution is the degenerate case of the same path:
``ExperimentRunner.run`` builds a one-shard plan, executes it in place
and merges it, so there is a single execution pipeline whether a grid
runs in-process, over local workers, or across hosts.

Determinism contract: because the placement pipeline is hash-seed
deterministic end to end (``docs/parallelism.md``), the merged grid's
deterministic fields (everything except ``software_runtime_seconds`` and
the per-process cache counters; see
:data:`repro.analysis.serialization.WORK_COUNTERS`) are byte-identical to
the serial run for *any* shard count and either strategy.

Fault tolerance (``docs/parallelism.md`` section 8): every file this
module writes is crash-safe — atomic temp-file + ``os.replace`` writes
with an embedded SHA-256 payload checksum verified on read — and every
unreadable file fails with a one-line
:class:`~repro.exceptions.ShardFormatError` naming the path and the
cause.  :func:`execute_shard` can journal completed cells to a
*checkpoint* file (``checkpoint_path=``), so an interrupted shard resumes
from its last completed cell instead of starting over; and
:func:`merge_shards` with ``allow_partial=True`` merges whatever shards
exist, reporting the missing shards and cells explicitly so a recovery
plan (CLI ``shard replan``) can cover exactly the gaps.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import pickle
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

from repro.analysis.runner import (
    ExperimentOutcome,
    ExperimentRunner,
    ExperimentSpec,
)
from repro.analysis.serialization import (
    SCHEMA_VERSION,
    atomic_write_bytes,
    atomic_write_text,
    checksummed_payload,
    dump_json,
    outcome_from_dict,
    outcome_to_dict,
    verify_payload_checksum,
)
from repro.core.stats import STATS, Counters
from repro.exceptions import ExperimentError, ShardFormatError
from repro.registry import SHARD_STRATEGIES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.config import RunConfig


def _round_robin_buckets(
    specs: Sequence[ExperimentSpec], num_shards: int
) -> List[List[int]]:
    """Deal cell indices out to shards by position."""
    buckets: List[List[int]] = [[] for _ in range(num_shards)]
    for index in range(len(specs)):
        buckets[index % num_shards].append(index)
    return buckets


def _cost_balanced_buckets(
    specs: Sequence[ExperimentSpec], num_shards: int
) -> List[List[int]]:
    """Greedy longest-processing-time assignment with index tie-breaks."""
    buckets: List[List[int]] = [[] for _ in range(num_shards)]
    costs = _cell_costs(specs)
    heap = [(0, shard) for shard in range(num_shards)]
    heapq.heapify(heap)
    for index in sorted(range(len(specs)), key=lambda i: (-costs[i], i)):
        load, shard = heapq.heappop(heap)
        buckets[shard].append(index)
        heapq.heappush(heap, (load + costs[index], shard))
    return buckets


SHARD_STRATEGIES.add(
    "round-robin", _round_robin_buckets,
    description="deal cells out to shards by index",
)
SHARD_STRATEGIES.add(
    "cost-balanced", _cost_balanced_buckets,
    description="greedy LPT by circuit gates x qubits, index tie-breaks",
)

#: Built-in partitioning strategies (hyphenated canonical names;
#: underscores are accepted and normalised), derived from the registry at
#: import time.  Strategies registered into
#: :data:`repro.registry.SHARD_STRATEGIES` later are also accepted by
#: :meth:`ShardPlan.build` — consult the registry, not this snapshot, when
#: plugins matter.
STRATEGIES = tuple(SHARD_STRATEGIES.names())

#: Format tags written into (and checked in) the shard file headers.
SHARD_INPUT_FORMAT = "repro-shard-input"
OUTCOME_SHARD_FORMAT = "repro-outcome-shard"
CHECKPOINT_FORMAT = "repro-shard-checkpoint"

#: Pickle protocol for shard-input files: fixed, so the same plan always
#: produces the same bytes regardless of the writing interpreter's default.
_PICKLE_PROTOCOL = 4


def _normalise_strategy(strategy: str) -> str:
    canonical = strategy.replace("_", "-").lower()
    if canonical not in SHARD_STRATEGIES:
        raise ExperimentError(
            f"unknown shard strategy {strategy!r}; use one of "
            f"{tuple(SHARD_STRATEGIES.names())}"
        )
    return canonical


def grid_fingerprint(specs: Sequence[ExperimentSpec]) -> str:
    """A stable identity for a flattened spec grid.

    Hashes each spec's pickle bytes (factories pickle by reference, so the
    same module-level factories, thresholds and options give the same
    digest in any process); specs that cannot be pickled fall back to a
    repr of their fields *including both factories* — object reprs make
    that stable (and grid-distinguishing) only within one process, which
    is all an unpicklable grid supports anyway: it cannot be written to a
    shard file in the first place.
    """
    hasher = hashlib.sha256()
    hasher.update(f"grid:{len(specs)}".encode())
    for index, spec in enumerate(specs):
        try:
            blob = pickle.dumps(spec, protocol=_PICKLE_PROTOCOL)
        except Exception:  # repro: allow[ROB002]
            blob = b"unpicklable:" + repr(
                (
                    spec.label,
                    spec.threshold,
                    spec.options,
                    spec.circuit_factory,
                    spec.environment_factory,
                    spec.keep_result,
                )
            ).encode()
        hasher.update(f"\x00{index}\x00".encode())
        hasher.update(hashlib.sha256(blob).digest())
    return hasher.hexdigest()


@dataclass(frozen=True)
class ShardInput:
    """Everything a shard worker needs to execute its cells.

    ``indices`` are the cells' positions in the *full* grid; the worker
    executes ``specs`` in order and reports each outcome under its global
    index, so the merge step can restore grid order without the plan.
    ``config`` carries the :class:`repro.config.RunConfig` the grid was
    built from (when the planner had one), making shard files
    self-describing.
    """

    plan_fingerprint: str
    shard_index: int
    num_shards: int
    indices: Tuple[int, ...]
    specs: Tuple[ExperimentSpec, ...]
    config: Optional["RunConfig"] = None


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of a spec grid into shards.

    ``config`` optionally embeds the :class:`repro.config.RunConfig` the
    grid was built from; it rides along into every :class:`ShardInput` and
    the plan metadata, but is *not* part of the grid fingerprint — the
    fingerprint identifies the spec grid itself, however it was described.
    """

    specs: Tuple[ExperimentSpec, ...]
    assignments: Tuple[Tuple[int, ...], ...]
    strategy: str
    fingerprint: str
    config: Optional["RunConfig"] = None

    @property
    def num_shards(self) -> int:
        return len(self.assignments)

    @property
    def total_cells(self) -> int:
        return len(self.specs)

    @classmethod
    def build(
        cls,
        specs: Sequence[ExperimentSpec],
        num_shards: int,
        strategy: str = "round-robin",
        compute_fingerprint: bool = True,
        config: Optional["RunConfig"] = None,
    ) -> "ShardPlan":
        """Partition ``specs`` into ``num_shards`` deterministic shards.

        ``strategy`` names an entry of
        :data:`repro.registry.SHARD_STRATEGIES` — ``round-robin`` deals
        cells out by index; ``cost-balanced`` assigns the most expensive
        cells first (cost estimated from the built circuit's gate and
        qubit counts) to the least-loaded shard, with index and
        shard-number tie-breaks so the result is a pure function of the
        grid.  ``compute_fingerprint=False`` skips the grid hash — used
        by the local degenerate one-shard path, where the plan never
        leaves the process.  ``config`` embeds the run description in the
        plan and its shard files.
        """
        specs = tuple(specs)
        if num_shards < 1:
            raise ExperimentError(
                f"num_shards must be at least 1, got {num_shards}"
            )
        strategy = _normalise_strategy(strategy)
        buckets = SHARD_STRATEGIES.entry(strategy).factory(specs, num_shards)
        if len(buckets) != num_shards:  # pragma: no cover - plugin misuse
            raise ExperimentError(
                f"shard strategy {strategy!r} produced {len(buckets)} "
                f"bucket(s) for {num_shards} shard(s)"
            )
        fingerprint = (
            grid_fingerprint(specs)
            if compute_fingerprint
            else f"local:{len(specs)}"
        )
        return cls(
            specs=specs,
            assignments=tuple(tuple(sorted(bucket)) for bucket in buckets),
            strategy=strategy,
            fingerprint=fingerprint,
            config=config,
        )

    def shard_input(self, shard_index: int) -> ShardInput:
        """The self-contained input of one shard."""
        if not 0 <= shard_index < self.num_shards:
            raise ExperimentError(
                f"shard index {shard_index} out of range for a "
                f"{self.num_shards}-shard plan"
            )
        indices = self.assignments[shard_index]
        return ShardInput(
            plan_fingerprint=self.fingerprint,
            shard_index=shard_index,
            num_shards=self.num_shards,
            indices=indices,
            specs=tuple(self.specs[index] for index in indices),
            config=self.config,
        )

    def shard_inputs(self) -> List[ShardInput]:
        """All shard inputs, in shard order."""
        return [self.shard_input(index) for index in range(self.num_shards)]

    def metadata(self) -> Dict[str, Any]:
        """JSON-safe plan description (everything but the specs)."""
        metadata = {
            "schema_version": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "strategy": self.strategy,
            "num_shards": self.num_shards,
            "total_cells": self.total_cells,
            "assignments": [list(indices) for indices in self.assignments],
            "labels": [spec.label for spec in self.specs],
        }
        if self.config is not None:
            metadata["config"] = self.config.to_dict()
        return metadata


def _cell_costs(specs: Sequence[ExperimentSpec]) -> List[int]:
    """Per-cell cost estimates for the cost-balanced strategy.

    Proportional to ``num_gates * num_qubits`` of the cell's circuit —
    a crude but monotone proxy for placement work.  Circuits are built
    once per distinct factory object (sweep grids share factories across
    thresholds); a factory that fails at plan time costs 1 and fails
    properly when its cell runs.
    """
    memo: Dict[int, int] = {}
    costs: List[int] = []
    for spec in specs:
        key = id(spec.circuit_factory)
        if key not in memo:
            try:
                circuit = spec.circuit_factory()
                memo[key] = max(1, circuit.num_gates) * max(1, circuit.num_qubits)
            except Exception:  # repro: allow[ROB002]
                # Cost estimation is advisory; a failing factory falls back to
                # unit cost and fails loudly when the cell itself runs.
                memo[key] = 1
        costs.append(memo[key])
    return costs


# ---------------------------------------------------------------------------
# Shard-input files (pickle: specs carry callables)
# ---------------------------------------------------------------------------


def write_shard(shard: ShardInput, path: str) -> None:
    """Serialise a shard input to ``path`` (pickle with a format header).

    The write is crash-safe (temp file + ``os.replace``) and the shard's
    pickle bytes are wrapped with their own SHA-256 digest, so
    :func:`read_shard` detects a file corrupted after writing instead of
    unpickling garbage.
    """
    if shard.plan_fingerprint.startswith("local:"):
        raise ExperimentError(
            "refusing to write a shard of a plan built with "
            "compute_fingerprint=False: its 'local:<N>' fingerprint is not "
            "grid-specific, so merge_shards could silently combine shards "
            "of different grids; build the plan with its real fingerprint"
        )
    try:
        shard_blob = pickle.dumps(shard, protocol=_PICKLE_PROTOCOL)
    except Exception as exc:
        raise ExperimentError(
            f"shard {shard.shard_index} cannot be serialised ({exc}); shard "
            "specs need picklable factories — module-level functions, "
            "functools.partial, or constant_environment()"
        ) from exc
    payload = {
        "format": SHARD_INPUT_FORMAT,
        "schema_version": SCHEMA_VERSION,
        "shard_sha256": hashlib.sha256(shard_blob).hexdigest(),
        "shard": shard_blob,
    }
    atomic_write_bytes(path, pickle.dumps(payload, protocol=_PICKLE_PROTOCOL))


def read_shard(path: str) -> ShardInput:
    """Read a shard input written by :func:`write_shard`.

    Every low-level failure — missing file, truncated pickle, foreign
    format, checksum mismatch — raises a one-line
    :class:`~repro.exceptions.ShardFormatError` naming the path and the
    cause.  Files from before checksumming existed (the shard object
    pickled directly under ``"shard"``) remain readable.
    """
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except Exception as exc:
        raise ShardFormatError(f"cannot read shard file {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != SHARD_INPUT_FORMAT:
        raise ShardFormatError(
            f"{path!r} is not a shard-input file (expected format "
            f"{SHARD_INPUT_FORMAT!r})"
        )
    shard = payload.get("shard")
    if isinstance(shard, (bytes, bytearray)):
        declared = payload.get("shard_sha256")
        actual = hashlib.sha256(shard).hexdigest()
        if declared is not None and declared != actual:
            raise ShardFormatError(
                f"{path!r}: shard payload checksum mismatch (file says "
                f"{str(declared)[:12]}, content hashes to {actual[:12]}); "
                "the file was corrupted after it was written"
            )
        try:
            shard = pickle.loads(shard)
        except Exception as exc:
            raise ShardFormatError(
                f"cannot read shard file {path!r}: {exc}"
            ) from exc
    if not isinstance(shard, ShardInput):
        raise ShardFormatError(
            f"{path!r} is not a shard-input file (expected format "
            f"{SHARD_INPUT_FORMAT!r})"
        )
    return shard


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass
class OutcomeShard:
    """One executed shard: outcomes, counter delta, plan fingerprint.

    ``outcomes`` are in shard-local spec order with each outcome's
    ``index`` set to its *global* grid position; ``counters`` is the
    shard's aggregate :data:`~repro.core.stats.STATS` delta (worker
    deltas already folded in when the shard itself ran with ``jobs>1``).
    """

    plan_fingerprint: str
    shard_index: int
    num_shards: int
    indices: Tuple[int, ...]
    outcomes: List[ExperimentOutcome]
    counters: Dict[str, int] = field(default_factory=dict)


def load_shard_checkpoint(
    path: str, shard: ShardInput
) -> Tuple[Dict[int, ExperimentOutcome], bool]:
    """Read a checkpoint journal: completed outcomes by global cell index.

    Returns ``(outcomes, header_valid)``.  A missing or empty file (and a
    file whose only line is a torn header) is simply "no progress yet" —
    ``({}, False)`` — so resume is idempotent; a header belonging to a
    different shard or grid, or a malformed interior line, raises
    :class:`~repro.exceptions.ShardFormatError`.  A torn *final* line
    (crash mid-append) is dropped: its cell re-runs.
    """
    if not os.path.exists(path):
        return {}, False
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line.strip()]
    except OSError as exc:
        raise ShardFormatError(
            f"cannot read checkpoint file {path!r}: {exc}"
        ) from exc
    parsed: List[object] = []
    for position, line in enumerate(lines):
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if position == len(lines) - 1:
                break  # torn tail from a crash mid-append; the cell re-runs
            raise ShardFormatError(
                f"checkpoint file {path!r}: line {position + 1} is not valid "
                f"JSON ({exc}); the file is corrupt"
            ) from exc
    if not parsed:
        return {}, False
    header = parsed[0]
    if not isinstance(header, dict) or header.get("format") != CHECKPOINT_FORMAT:
        raise ShardFormatError(
            f"{path!r} is not a shard-checkpoint file (expected format "
            f"{CHECKPOINT_FORMAT!r})"
        )
    for key, expected in (
        ("plan_fingerprint", shard.plan_fingerprint),
        ("shard_index", shard.shard_index),
        ("num_shards", shard.num_shards),
    ):
        if header.get(key) != expected:
            raise ShardFormatError(
                f"checkpoint file {path!r} belongs to a different run "
                f"({key}={header.get(key)!r}, this shard has {expected!r}); "
                "delete it or point --checkpoint elsewhere"
            )
    valid_indices = set(shard.indices)
    completed: Dict[int, ExperimentOutcome] = {}
    for position, row in enumerate(parsed[1:], start=2):
        try:
            index = int(row["index"])
            outcome = outcome_from_dict(row["row"])
        except Exception as exc:
            raise ShardFormatError(
                f"checkpoint file {path!r}: row at line {position} is "
                f"malformed ({exc!r})"
            ) from exc
        if index not in valid_indices:
            raise ShardFormatError(
                f"checkpoint file {path!r} records cell {index}, which is "
                f"not assigned to shard {shard.shard_index}"
            )
        outcome.index = index
        completed[index] = outcome
    return completed, True


def _append_checkpoint_line(handle: TextIO, record: Dict[str, Any]) -> None:
    """Append one durable journal line (flushed and fsynced).

    Durability per line is the point of a checkpoint: a crash right after
    a cell completes must not lose that cell.  A crash *during* this
    append leaves a torn final line, which the reader drops.
    """
    handle.write(json.dumps(record, sort_keys=True) + "\n")
    handle.flush()
    os.fsync(handle.fileno())


def execute_shard(
    shard: ShardInput,
    runner: Optional[ExperimentRunner] = None,
    checkpoint_path: Optional[str] = None,
) -> OutcomeShard:
    """Run one shard's cells and package the outcome shard.

    ``runner`` controls *how* the shard's own cells execute (serially or
    over local worker processes, progress callbacks, backend override,
    retry policy); defaults to a serial runner.  The shard's cells run
    exactly as they would inside a whole-grid run — same per-cell work,
    same counters — and cell indices are passed through to the runner as
    *global* grid indices, so retry backoff and fault injection are
    invariant to how the grid was sharded.

    With ``checkpoint_path``, each completed cell is appended to a
    durable JSON-lines journal; re-running with the same path (CLI
    ``shard run --resume``) skips the journaled cells and executes only
    the missing ones.  The resumed shard's counters fold the journaled
    cells' counters together with the live run's, so the merged grid's
    aggregate counters match an uninterrupted execution.
    """
    runner = runner or ExperimentRunner()
    specs = runner.prepared_specs(shard.specs)
    resumed: Dict[int, ExperimentOutcome] = {}
    header_valid = False
    if checkpoint_path is not None:
        resumed, header_valid = load_shard_checkpoint(checkpoint_path, shard)
    pending = [
        position
        for position, global_index in enumerate(shard.indices)
        if global_index not in resumed
    ]
    collected: Dict[int, ExperimentOutcome] = dict(resumed)
    before = STATS.snapshot()
    handle: Optional[TextIO] = None
    try:
        if checkpoint_path is not None:
            # The checkpoint is an append-only journal with a per-line fsync;
            # atomic whole-file replacement would defeat its purpose.
            handle = open(  # repro: allow[ROB001]
                checkpoint_path, "a" if header_valid else "w", encoding="utf-8"
            )
            if not header_valid:
                _append_checkpoint_line(handle, {
                    "format": CHECKPOINT_FORMAT,
                    "schema_version": SCHEMA_VERSION,
                    "plan_fingerprint": shard.plan_fingerprint,
                    "shard_index": shard.shard_index,
                    "num_shards": shard.num_shards,
                })
        if pending:
            run_specs = [specs[position] for position in pending]
            run_globals = [shard.indices[position] for position in pending]
            for outcome in runner._iter_prepared(
                run_specs, global_indices=run_globals
            ):
                global_index = run_globals[outcome.index]
                outcome.index = global_index
                collected[global_index] = outcome
                if handle is not None:
                    _append_checkpoint_line(handle, {
                        "index": global_index,
                        "row": outcome_to_dict(outcome),
                    })
    finally:
        if handle is not None:
            handle.close()
    counters = STATS.delta_since(before)
    if resumed:
        folded = Counters()
        folded.merge(counters)
        for outcome in resumed.values():
            folded.merge(outcome.counters)
        counters = folded.snapshot()
    missing = [
        global_index for global_index in shard.indices
        if global_index not in collected
    ]
    if missing:  # pragma: no cover - cells either return or raise
        raise ExperimentError(
            f"shard {shard.shard_index} execution returned no outcome for "
            f"cell(s) {missing}"
        )
    return OutcomeShard(
        plan_fingerprint=shard.plan_fingerprint,
        shard_index=shard.shard_index,
        num_shards=shard.num_shards,
        indices=tuple(shard.indices),
        outcomes=[collected[global_index] for global_index in shard.indices],
        counters=counters,
    )


# ---------------------------------------------------------------------------
# Outcome-shard files (JSON: outcomes are plain data)
# ---------------------------------------------------------------------------


def outcome_shard_to_payload(shard: OutcomeShard) -> Dict[str, Any]:
    """The JSON-safe form of an outcome shard (``--output json`` rows).

    The payload embeds its own SHA-256 checksum
    (:func:`repro.analysis.serialization.checksummed_payload`), so the
    file :func:`write_outcome_shard` produces — and the identical payload
    a ``sweep --shard-index --output json`` worker prints — is verifiable
    on read.  Checksumming is deterministic, so equal shards still
    serialise to byte-identical payloads.
    """
    return checksummed_payload({
        "format": OUTCOME_SHARD_FORMAT,
        "schema_version": SCHEMA_VERSION,
        "plan_fingerprint": shard.plan_fingerprint,
        "shard_index": shard.shard_index,
        "num_shards": shard.num_shards,
        "indices": list(shard.indices),
        "rows": [outcome_to_dict(outcome) for outcome in shard.outcomes],
        "counters": {
            name: int(value) for name, value in sorted(shard.counters.items())
        },
    })


def outcome_shard_from_payload(payload: Mapping[str, Any]) -> OutcomeShard:
    """Rebuild an :class:`OutcomeShard` from its JSON payload.

    The embedded checksum, if any, is ignored here (file readers verify
    it against the raw file first; in-memory payloads need no integrity
    check), so pre-checksum payloads remain loadable.
    """
    if payload.get("format") != OUTCOME_SHARD_FORMAT:
        raise ShardFormatError(
            f"not an outcome-shard payload (expected format "
            f"{OUTCOME_SHARD_FORMAT!r}, got {payload.get('format')!r})"
        )
    try:
        return OutcomeShard(
            plan_fingerprint=payload["plan_fingerprint"],
            shard_index=int(payload["shard_index"]),
            num_shards=int(payload["num_shards"]),
            indices=tuple(int(index) for index in payload["indices"]),
            outcomes=[outcome_from_dict(row) for row in payload["rows"]],
            counters={str(k): int(v) for k, v in payload.get("counters", {}).items()},
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ShardFormatError(
            f"malformed outcome-shard payload ({exc!r}); the file is "
            "truncated or was not written by write_outcome_shard"
        ) from exc


def write_outcome_shard(shard: OutcomeShard, path: str) -> None:
    """Serialise an outcome shard to canonical JSON at ``path``.

    The write is atomic (temp file + ``os.replace``) and the payload
    carries its own checksum, so an interrupted or corrupted write is
    detected on read instead of merged silently.  Note that file round
    trips drop any attached :class:`~repro.core.result.PlacementResult`
    objects (see :mod:`repro.analysis.serialization`); shard grids ship
    scalar rows.
    """
    atomic_write_text(path, dump_json(outcome_shard_to_payload(shard)))
    # Test-only hook: a fault plan may corrupt this shard's output file
    # after the (successful, atomic) write, to exercise the detection and
    # replan/resume recovery paths end to end.
    from repro.analysis import resilience

    injector = resilience.active_fault_injector()
    if injector is not None and injector.corrupts_output(shard.shard_index):
        resilience.corrupt_file(path)


def read_outcome_shard(path: str) -> OutcomeShard:
    """Read an outcome shard written by :func:`write_outcome_shard`.

    Unreadable or corrupt files — missing, truncated, foreign format,
    payload-checksum mismatch — raise a one-line
    :class:`~repro.exceptions.ShardFormatError` naming the path and the
    cause (including the expected digest for checksum mismatches).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except Exception as exc:
        raise ShardFormatError(
            f"cannot read outcome-shard file {path!r}: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ShardFormatError(f"{path!r} is not an outcome-shard file")
    verify_payload_checksum(payload, path)
    return outcome_shard_from_payload(payload)


# ---------------------------------------------------------------------------
# Merge
# ---------------------------------------------------------------------------


@dataclass
class MergedGrid:
    """The reassembled grid: outcomes in grid order plus merged counters.

    A *partial* merge (``merge_shards(..., allow_partial=True)``) leaves
    ``None`` holes in ``outcomes`` for cells no present shard delivered
    and reports the gaps explicitly: ``missing_shards`` lists the absent
    shard indices and ``missing_cells`` the uncovered global cell indices
    — exactly the manifest a recovery plan (CLI ``shard replan``) needs.
    Complete merges leave both empty.
    """

    outcomes: List[Optional[ExperimentOutcome]]
    counters: Dict[str, int]
    plan_fingerprint: str
    num_shards: int
    missing_shards: Tuple[int, ...] = ()
    missing_cells: Tuple[int, ...] = ()

    @property
    def is_complete(self) -> bool:
        """Whether every cell of the grid is covered."""
        return not self.missing_shards and not self.missing_cells


def merge_shards(
    shards: Sequence[OutcomeShard],
    plan: Optional[ShardPlan] = None,
    allow_partial: bool = False,
) -> MergedGrid:
    """Verify and merge outcome shards back into one grid.

    Checks, before touching any data: every shard echoes the same plan
    fingerprint (and the given ``plan``'s, when provided), shard indices
    are unique and in range, each shard's outcome list matches its index
    list, and the union of indices covers the grid exactly once.  Counter
    deltas are folded with :meth:`Counters.merge` in shard order — merge
    order cannot matter, since merging is per-name addition.

    ``allow_partial=True`` relaxes only the *coverage* requirement:
    missing shards and cells become the returned grid's
    ``missing_shards``/``missing_cells`` manifest (with ``None`` holes in
    the outcome list) instead of an error.  Duplicated shards or cells,
    fingerprint mismatches and malformed shards are always errors — a
    partial merge is still a verified merge.
    """
    shards = sorted(shards, key=lambda shard: shard.shard_index)
    if not shards:
        raise ExperimentError("cannot merge an empty list of outcome shards")

    fingerprints = {shard.plan_fingerprint for shard in shards}
    if len(fingerprints) > 1:
        raise ExperimentError(
            "outcome shards come from different plans (fingerprints "
            f"{sorted(fingerprints)}); refusing to merge"
        )
    fingerprint = shards[0].plan_fingerprint
    if plan is not None and plan.fingerprint != fingerprint:
        raise ExperimentError(
            f"outcome shards carry fingerprint {fingerprint!r} but the plan "
            f"is {plan.fingerprint!r}; these shards belong to a different grid"
        )

    declared = {shard.num_shards for shard in shards}
    if len(declared) > 1:
        raise ExperimentError(
            f"outcome shards disagree on the shard count ({sorted(declared)})"
        )
    num_shards = shards[0].num_shards
    if plan is not None and plan.num_shards != num_shards:
        raise ExperimentError(
            f"shards declare {num_shards} shard(s) but the plan has "
            f"{plan.num_shards}"
        )

    seen_shards = [shard.shard_index for shard in shards]
    duplicate_shards = sorted(
        {index for index in seen_shards if seen_shards.count(index) > 1}
    )
    out_of_range = [
        index for index in seen_shards if not 0 <= index < num_shards
    ]
    missing_shards = sorted(set(range(num_shards)) - set(seen_shards))
    if duplicate_shards or out_of_range or (missing_shards and not allow_partial):
        raise ExperimentError(
            f"merging a {num_shards}-shard plan needs every shard exactly "
            f"once, got shard indices {sorted(seen_shards)} "
            f"(missing {missing_shards}); re-run the missing shards (or "
            "rebuild their inputs with 'repro-place shard replan'), or "
            "merge what exists with allow_partial=True (--allow-partial)"
        )

    for shard in shards:
        if len(shard.outcomes) != len(shard.indices):
            raise ExperimentError(
                f"shard {shard.shard_index} has {len(shard.outcomes)} "
                f"outcome(s) for {len(shard.indices)} cell(s)"
            )
        for outcome, expected in zip(shard.outcomes, shard.indices):
            if outcome.index != expected:
                raise ExperimentError(
                    f"shard {shard.shard_index} outcome index "
                    f"{outcome.index} does not match its assigned cell "
                    f"{expected}"
                )
        if plan is not None and shard.indices != plan.assignments[shard.shard_index]:
            raise ExperimentError(
                f"shard {shard.shard_index} cell assignment "
                f"{list(shard.indices)} does not match the plan's "
                f"{list(plan.assignments[shard.shard_index])}"
            )

    all_indices = [index for shard in shards for index in shard.indices]
    if plan is not None:
        total = plan.total_cells
    elif allow_partial:
        # Without a plan the grid size is unknowable from a partial shard
        # set; the tightest lower bound is the highest delivered index.
        total = max(all_indices) + 1 if all_indices else 0
    else:
        total = len(all_indices)
    duplicates = sorted(
        {index for index in all_indices if all_indices.count(index) > 1}
    )
    missing_cells = sorted(set(range(total)) - set(all_indices))
    bad_indices = [index for index in all_indices if not 0 <= index < total]
    if duplicates or bad_indices or (missing_cells and not allow_partial):
        raise ExperimentError(
            "outcome shards do not cover the grid exactly once "
            f"(missing cells {missing_cells}, duplicated cells {duplicates})"
        )

    outcomes: List[Optional[ExperimentOutcome]] = [None] * total
    merged = Counters()
    for shard in shards:
        merged.merge(shard.counters)
        for outcome in shard.outcomes:
            outcomes[outcome.index] = outcome
    return MergedGrid(
        outcomes=outcomes,
        counters=merged.snapshot(),
        plan_fingerprint=fingerprint,
        num_shards=num_shards,
        missing_shards=tuple(missing_shards),
        missing_cells=tuple(missing_cells),
    )
