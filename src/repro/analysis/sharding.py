"""Sharded experiment grids: plan → execute → merge.

The :class:`~repro.analysis.runner.ExperimentRunner` fans a grid's cells
over local worker processes; this module is the next scaling layer up —
splitting one flattened grid into *shards* that can be executed anywhere
(other hosts, other containers, a batch queue) and merged back into the
exact result the serial runner would have produced.

The pipeline has three stages, each with a file format so the stages can
run in different processes on different machines:

**plan**
    :meth:`ShardPlan.build` deterministically partitions a flattened,
    deduplicated spec list into ``N`` shards — round-robin, or
    cost-balanced by circuit size (greedy longest-processing-time with
    index tie-breaks, so the same grid always yields the same plan).  The
    plan carries a ``fingerprint`` of the grid; every derived artifact
    echoes it, which is how the merge step refuses to combine shards of
    different grids.  :func:`write_shard` serialises each shard's input
    (:class:`ShardInput`: the specs plus their *global* grid indices) to a
    pickle file a shard worker can execute without any other context.

**execute**
    :func:`execute_shard` runs one shard's cells through an ordinary
    :class:`ExperimentRunner` (so a shard worker can itself use ``jobs>1``
    process parallelism) and packages an :class:`OutcomeShard`: the
    outcomes re-labelled with their global grid indices, the shard's
    :data:`~repro.core.stats.STATS` counter delta, and the plan
    fingerprint.  :func:`write_outcome_shard` serialises it to JSON (via
    :mod:`repro.analysis.serialization`, the same row format as
    ``--output json``).

**merge**
    :func:`merge_shards` verifies the shards' fingerprints and index sets
    against each other (and against the plan, when given), restores grid
    order, and merges the counter deltas with
    :meth:`~repro.core.stats.Counters.merge`.  The merged outcome list is
    exactly what ``ExperimentRunner.run`` on the whole grid returns —
    deterministic fields byte-identical, wall times shard-local.

Local execution is the degenerate case of the same path:
``ExperimentRunner.run`` builds a one-shard plan, executes it in place
and merges it, so there is a single execution pipeline whether a grid
runs in-process, over local workers, or across hosts.

Determinism contract: because the placement pipeline is hash-seed
deterministic end to end (``docs/parallelism.md``), the merged grid's
deterministic fields (everything except ``software_runtime_seconds`` and
the per-process cache counters; see
:data:`repro.analysis.serialization.WORK_COUNTERS`) are byte-identical to
the serial run for *any* shard count and either strategy.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.runner import (
    ExperimentOutcome,
    ExperimentRunner,
    ExperimentSpec,
)
from repro.analysis.serialization import (
    SCHEMA_VERSION,
    dump_json,
    outcome_from_dict,
    outcome_to_dict,
)
from repro.core.stats import STATS, Counters
from repro.exceptions import ExperimentError
from repro.registry import SHARD_STRATEGIES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.config import RunConfig


def _round_robin_buckets(
    specs: Sequence[ExperimentSpec], num_shards: int
) -> List[List[int]]:
    """Deal cell indices out to shards by position."""
    buckets: List[List[int]] = [[] for _ in range(num_shards)]
    for index in range(len(specs)):
        buckets[index % num_shards].append(index)
    return buckets


def _cost_balanced_buckets(
    specs: Sequence[ExperimentSpec], num_shards: int
) -> List[List[int]]:
    """Greedy longest-processing-time assignment with index tie-breaks."""
    buckets: List[List[int]] = [[] for _ in range(num_shards)]
    costs = _cell_costs(specs)
    heap = [(0, shard) for shard in range(num_shards)]
    heapq.heapify(heap)
    for index in sorted(range(len(specs)), key=lambda i: (-costs[i], i)):
        load, shard = heapq.heappop(heap)
        buckets[shard].append(index)
        heapq.heappush(heap, (load + costs[index], shard))
    return buckets


SHARD_STRATEGIES.add(
    "round-robin", _round_robin_buckets,
    description="deal cells out to shards by index",
)
SHARD_STRATEGIES.add(
    "cost-balanced", _cost_balanced_buckets,
    description="greedy LPT by circuit gates x qubits, index tie-breaks",
)

#: Built-in partitioning strategies (hyphenated canonical names;
#: underscores are accepted and normalised), derived from the registry at
#: import time.  Strategies registered into
#: :data:`repro.registry.SHARD_STRATEGIES` later are also accepted by
#: :meth:`ShardPlan.build` — consult the registry, not this snapshot, when
#: plugins matter.
STRATEGIES = tuple(SHARD_STRATEGIES.names())

#: Format tags written into (and checked in) the shard file headers.
SHARD_INPUT_FORMAT = "repro-shard-input"
OUTCOME_SHARD_FORMAT = "repro-outcome-shard"

#: Pickle protocol for shard-input files: fixed, so the same plan always
#: produces the same bytes regardless of the writing interpreter's default.
_PICKLE_PROTOCOL = 4


def _normalise_strategy(strategy: str) -> str:
    canonical = strategy.replace("_", "-").lower()
    if canonical not in SHARD_STRATEGIES:
        raise ExperimentError(
            f"unknown shard strategy {strategy!r}; use one of "
            f"{tuple(SHARD_STRATEGIES.names())}"
        )
    return canonical


def grid_fingerprint(specs: Sequence[ExperimentSpec]) -> str:
    """A stable identity for a flattened spec grid.

    Hashes each spec's pickle bytes (factories pickle by reference, so the
    same module-level factories, thresholds and options give the same
    digest in any process); specs that cannot be pickled fall back to a
    repr of their fields *including both factories* — object reprs make
    that stable (and grid-distinguishing) only within one process, which
    is all an unpicklable grid supports anyway: it cannot be written to a
    shard file in the first place.
    """
    hasher = hashlib.sha256()
    hasher.update(f"grid:{len(specs)}".encode())
    for index, spec in enumerate(specs):
        try:
            blob = pickle.dumps(spec, protocol=_PICKLE_PROTOCOL)
        except Exception:
            blob = b"unpicklable:" + repr(
                (
                    spec.label,
                    spec.threshold,
                    spec.options,
                    spec.circuit_factory,
                    spec.environment_factory,
                    spec.keep_result,
                )
            ).encode()
        hasher.update(f"\x00{index}\x00".encode())
        hasher.update(hashlib.sha256(blob).digest())
    return hasher.hexdigest()


@dataclass(frozen=True)
class ShardInput:
    """Everything a shard worker needs to execute its cells.

    ``indices`` are the cells' positions in the *full* grid; the worker
    executes ``specs`` in order and reports each outcome under its global
    index, so the merge step can restore grid order without the plan.
    ``config`` carries the :class:`repro.config.RunConfig` the grid was
    built from (when the planner had one), making shard files
    self-describing.
    """

    plan_fingerprint: str
    shard_index: int
    num_shards: int
    indices: Tuple[int, ...]
    specs: Tuple[ExperimentSpec, ...]
    config: Optional["RunConfig"] = None


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of a spec grid into shards.

    ``config`` optionally embeds the :class:`repro.config.RunConfig` the
    grid was built from; it rides along into every :class:`ShardInput` and
    the plan metadata, but is *not* part of the grid fingerprint — the
    fingerprint identifies the spec grid itself, however it was described.
    """

    specs: Tuple[ExperimentSpec, ...]
    assignments: Tuple[Tuple[int, ...], ...]
    strategy: str
    fingerprint: str
    config: Optional["RunConfig"] = None

    @property
    def num_shards(self) -> int:
        return len(self.assignments)

    @property
    def total_cells(self) -> int:
        return len(self.specs)

    @classmethod
    def build(
        cls,
        specs: Sequence[ExperimentSpec],
        num_shards: int,
        strategy: str = "round-robin",
        compute_fingerprint: bool = True,
        config: Optional["RunConfig"] = None,
    ) -> "ShardPlan":
        """Partition ``specs`` into ``num_shards`` deterministic shards.

        ``strategy`` names an entry of
        :data:`repro.registry.SHARD_STRATEGIES` — ``round-robin`` deals
        cells out by index; ``cost-balanced`` assigns the most expensive
        cells first (cost estimated from the built circuit's gate and
        qubit counts) to the least-loaded shard, with index and
        shard-number tie-breaks so the result is a pure function of the
        grid.  ``compute_fingerprint=False`` skips the grid hash — used
        by the local degenerate one-shard path, where the plan never
        leaves the process.  ``config`` embeds the run description in the
        plan and its shard files.
        """
        specs = tuple(specs)
        if num_shards < 1:
            raise ExperimentError(
                f"num_shards must be at least 1, got {num_shards}"
            )
        strategy = _normalise_strategy(strategy)
        buckets = SHARD_STRATEGIES.entry(strategy).factory(specs, num_shards)
        if len(buckets) != num_shards:  # pragma: no cover - plugin misuse
            raise ExperimentError(
                f"shard strategy {strategy!r} produced {len(buckets)} "
                f"bucket(s) for {num_shards} shard(s)"
            )
        fingerprint = (
            grid_fingerprint(specs)
            if compute_fingerprint
            else f"local:{len(specs)}"
        )
        return cls(
            specs=specs,
            assignments=tuple(tuple(sorted(bucket)) for bucket in buckets),
            strategy=strategy,
            fingerprint=fingerprint,
            config=config,
        )

    def shard_input(self, shard_index: int) -> ShardInput:
        """The self-contained input of one shard."""
        if not 0 <= shard_index < self.num_shards:
            raise ExperimentError(
                f"shard index {shard_index} out of range for a "
                f"{self.num_shards}-shard plan"
            )
        indices = self.assignments[shard_index]
        return ShardInput(
            plan_fingerprint=self.fingerprint,
            shard_index=shard_index,
            num_shards=self.num_shards,
            indices=indices,
            specs=tuple(self.specs[index] for index in indices),
            config=self.config,
        )

    def shard_inputs(self) -> List[ShardInput]:
        """All shard inputs, in shard order."""
        return [self.shard_input(index) for index in range(self.num_shards)]

    def metadata(self) -> Dict:
        """JSON-safe plan description (everything but the specs)."""
        metadata = {
            "schema_version": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "strategy": self.strategy,
            "num_shards": self.num_shards,
            "total_cells": self.total_cells,
            "assignments": [list(indices) for indices in self.assignments],
            "labels": [spec.label for spec in self.specs],
        }
        if self.config is not None:
            metadata["config"] = self.config.to_dict()
        return metadata


def _cell_costs(specs: Sequence[ExperimentSpec]) -> List[int]:
    """Per-cell cost estimates for the cost-balanced strategy.

    Proportional to ``num_gates * num_qubits`` of the cell's circuit —
    a crude but monotone proxy for placement work.  Circuits are built
    once per distinct factory object (sweep grids share factories across
    thresholds); a factory that fails at plan time costs 1 and fails
    properly when its cell runs.
    """
    memo: Dict[int, int] = {}
    costs: List[int] = []
    for spec in specs:
        key = id(spec.circuit_factory)
        if key not in memo:
            try:
                circuit = spec.circuit_factory()
                memo[key] = max(1, circuit.num_gates) * max(1, circuit.num_qubits)
            except Exception:
                memo[key] = 1
        costs.append(memo[key])
    return costs


# ---------------------------------------------------------------------------
# Shard-input files (pickle: specs carry callables)
# ---------------------------------------------------------------------------


def write_shard(shard: ShardInput, path: str) -> None:
    """Serialise a shard input to ``path`` (pickle with a format header)."""
    if shard.plan_fingerprint.startswith("local:"):
        raise ExperimentError(
            "refusing to write a shard of a plan built with "
            "compute_fingerprint=False: its 'local:<N>' fingerprint is not "
            "grid-specific, so merge_shards could silently combine shards "
            "of different grids; build the plan with its real fingerprint"
        )
    payload = {
        "format": SHARD_INPUT_FORMAT,
        "schema_version": SCHEMA_VERSION,
        "shard": shard,
    }
    try:
        blob = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
    except Exception as exc:
        raise ExperimentError(
            f"shard {shard.shard_index} cannot be serialised ({exc}); shard "
            "specs need picklable factories — module-level functions, "
            "functools.partial, or constant_environment()"
        ) from exc
    with open(path, "wb") as handle:
        handle.write(blob)


def read_shard(path: str) -> ShardInput:
    """Read a shard input written by :func:`write_shard`."""
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except Exception as exc:
        raise ExperimentError(f"cannot read shard file {path!r}: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("format") != SHARD_INPUT_FORMAT
        or not isinstance(payload.get("shard"), ShardInput)
    ):
        raise ExperimentError(
            f"{path!r} is not a shard-input file (expected format "
            f"{SHARD_INPUT_FORMAT!r})"
        )
    return payload["shard"]


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass
class OutcomeShard:
    """One executed shard: outcomes, counter delta, plan fingerprint.

    ``outcomes`` are in shard-local spec order with each outcome's
    ``index`` set to its *global* grid position; ``counters`` is the
    shard's aggregate :data:`~repro.core.stats.STATS` delta (worker
    deltas already folded in when the shard itself ran with ``jobs>1``).
    """

    plan_fingerprint: str
    shard_index: int
    num_shards: int
    indices: Tuple[int, ...]
    outcomes: List[ExperimentOutcome]
    counters: Dict[str, int] = field(default_factory=dict)


def execute_shard(
    shard: ShardInput,
    runner: Optional[ExperimentRunner] = None,
) -> OutcomeShard:
    """Run one shard's cells and package the outcome shard.

    ``runner`` controls *how* the shard's own cells execute (serially or
    over local worker processes, progress callbacks, backend override);
    defaults to a serial runner.  The shard's cells run exactly as they
    would inside a whole-grid run — same per-cell work, same counters.
    """
    runner = runner or ExperimentRunner()
    specs = runner.prepared_specs(shard.specs)
    before = STATS.snapshot()
    outcomes = runner.execute_prepared(specs)
    counters = STATS.delta_since(before)
    for outcome, global_index in zip(outcomes, shard.indices):
        outcome.index = global_index
    return OutcomeShard(
        plan_fingerprint=shard.plan_fingerprint,
        shard_index=shard.shard_index,
        num_shards=shard.num_shards,
        indices=tuple(shard.indices),
        outcomes=outcomes,
        counters=counters,
    )


# ---------------------------------------------------------------------------
# Outcome-shard files (JSON: outcomes are plain data)
# ---------------------------------------------------------------------------


def outcome_shard_to_payload(shard: OutcomeShard) -> Dict:
    """The JSON-safe form of an outcome shard (``--output json`` rows)."""
    return {
        "format": OUTCOME_SHARD_FORMAT,
        "schema_version": SCHEMA_VERSION,
        "plan_fingerprint": shard.plan_fingerprint,
        "shard_index": shard.shard_index,
        "num_shards": shard.num_shards,
        "indices": list(shard.indices),
        "rows": [outcome_to_dict(outcome) for outcome in shard.outcomes],
        "counters": {
            name: int(value) for name, value in sorted(shard.counters.items())
        },
    }


def outcome_shard_from_payload(payload: Mapping) -> OutcomeShard:
    """Rebuild an :class:`OutcomeShard` from its JSON payload."""
    if payload.get("format") != OUTCOME_SHARD_FORMAT:
        raise ExperimentError(
            f"not an outcome-shard payload (expected format "
            f"{OUTCOME_SHARD_FORMAT!r}, got {payload.get('format')!r})"
        )
    try:
        return OutcomeShard(
            plan_fingerprint=payload["plan_fingerprint"],
            shard_index=int(payload["shard_index"]),
            num_shards=int(payload["num_shards"]),
            indices=tuple(int(index) for index in payload["indices"]),
            outcomes=[outcome_from_dict(row) for row in payload["rows"]],
            counters={str(k): int(v) for k, v in payload.get("counters", {}).items()},
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ExperimentError(
            f"malformed outcome-shard payload ({exc!r}); the file is "
            "truncated or was not written by write_outcome_shard"
        ) from exc


def write_outcome_shard(shard: OutcomeShard, path: str) -> None:
    """Serialise an outcome shard to canonical JSON at ``path``.

    Note that file round-trips drop any attached
    :class:`~repro.core.result.PlacementResult` objects (see
    :mod:`repro.analysis.serialization`); shard grids ship scalar rows.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_json(outcome_shard_to_payload(shard)))


def read_outcome_shard(path: str) -> OutcomeShard:
    """Read an outcome shard written by :func:`write_outcome_shard`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except Exception as exc:
        raise ExperimentError(
            f"cannot read outcome-shard file {path!r}: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ExperimentError(f"{path!r} is not an outcome-shard file")
    return outcome_shard_from_payload(payload)


# ---------------------------------------------------------------------------
# Merge
# ---------------------------------------------------------------------------


@dataclass
class MergedGrid:
    """The reassembled grid: outcomes in grid order plus merged counters."""

    outcomes: List[ExperimentOutcome]
    counters: Dict[str, int]
    plan_fingerprint: str
    num_shards: int


def merge_shards(
    shards: Sequence[OutcomeShard],
    plan: Optional[ShardPlan] = None,
) -> MergedGrid:
    """Verify and merge outcome shards back into one grid.

    Checks, before touching any data: every shard echoes the same plan
    fingerprint (and the given ``plan``'s, when provided), shard indices
    are unique and in range, each shard's outcome list matches its index
    list, and the union of indices covers the grid exactly once.  Counter
    deltas are folded with :meth:`Counters.merge` in shard order — merge
    order cannot matter, since merging is per-name addition.
    """
    shards = sorted(shards, key=lambda shard: shard.shard_index)
    if not shards:
        raise ExperimentError("cannot merge an empty list of outcome shards")

    fingerprints = {shard.plan_fingerprint for shard in shards}
    if len(fingerprints) > 1:
        raise ExperimentError(
            "outcome shards come from different plans (fingerprints "
            f"{sorted(fingerprints)}); refusing to merge"
        )
    fingerprint = shards[0].plan_fingerprint
    if plan is not None and plan.fingerprint != fingerprint:
        raise ExperimentError(
            f"outcome shards carry fingerprint {fingerprint!r} but the plan "
            f"is {plan.fingerprint!r}; these shards belong to a different grid"
        )

    declared = {shard.num_shards for shard in shards}
    if len(declared) > 1:
        raise ExperimentError(
            f"outcome shards disagree on the shard count ({sorted(declared)})"
        )
    num_shards = shards[0].num_shards
    if plan is not None and plan.num_shards != num_shards:
        raise ExperimentError(
            f"shards declare {num_shards} shard(s) but the plan has "
            f"{plan.num_shards}"
        )

    seen_shards = [shard.shard_index for shard in shards]
    if sorted(seen_shards) != list(range(num_shards)):
        missing = sorted(set(range(num_shards)) - set(seen_shards))
        raise ExperimentError(
            f"merging a {num_shards}-shard plan needs every shard exactly "
            f"once, got shard indices {sorted(seen_shards)} "
            f"(missing {missing})"
        )

    for shard in shards:
        if len(shard.outcomes) != len(shard.indices):
            raise ExperimentError(
                f"shard {shard.shard_index} has {len(shard.outcomes)} "
                f"outcome(s) for {len(shard.indices)} cell(s)"
            )
        for outcome, expected in zip(shard.outcomes, shard.indices):
            if outcome.index != expected:
                raise ExperimentError(
                    f"shard {shard.shard_index} outcome index "
                    f"{outcome.index} does not match its assigned cell "
                    f"{expected}"
                )
        if plan is not None and shard.indices != plan.assignments[shard.shard_index]:
            raise ExperimentError(
                f"shard {shard.shard_index} cell assignment "
                f"{list(shard.indices)} does not match the plan's "
                f"{list(plan.assignments[shard.shard_index])}"
            )

    all_indices = [index for shard in shards for index in shard.indices]
    total = plan.total_cells if plan is not None else len(all_indices)
    if sorted(all_indices) != list(range(total)):
        missing = sorted(set(range(total)) - set(all_indices))
        duplicates = sorted(
            {index for index in all_indices if all_indices.count(index) > 1}
        )
        raise ExperimentError(
            "outcome shards do not cover the grid exactly once "
            f"(missing cells {missing}, duplicated cells {duplicates})"
        )

    outcomes: List[Optional[ExperimentOutcome]] = [None] * total
    merged = Counters()
    for shard in shards:
        merged.merge(shard.counters)
        for outcome in shard.outcomes:
            outcomes[outcome.index] = outcome
    return MergedGrid(
        outcomes=outcomes,
        counters=merged.snapshot(),
        plan_fingerprint=fingerprint,
        num_shards=num_shards,
    )
