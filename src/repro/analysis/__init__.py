"""Experiment harnesses reproducing the paper's tables."""

from repro.analysis.experiments import TABLE2_ROWS, Table2Result, run_table2
from repro.analysis.runner import (
    ExperimentOutcome,
    ExperimentRunner,
    ExperimentSpec,
    benchmark_circuit_factory,
    constant_environment,
    molecule_factory,
    run_experiments,
    stderr_progress,
)
from repro.analysis.reporting import (
    format_runtime_and_stages,
    format_seconds,
    format_table,
    paper_vs_measured,
)
from repro.analysis.scalability import (
    SCALABILITY_OPTIONS,
    ScalabilityRecord,
    expected_hidden_stages,
    run_scalability_point,
    run_scalability_sweep,
)
from repro.analysis.sweep import (
    SweepCell,
    SweepRow,
    sweep_circuit,
    sweep_environment,
    sweep_table,
    whole_circuit_reference,
)

__all__ = [
    "ExperimentSpec",
    "ExperimentOutcome",
    "ExperimentRunner",
    "run_experiments",
    "benchmark_circuit_factory",
    "molecule_factory",
    "constant_environment",
    "stderr_progress",
    "run_table2",
    "Table2Result",
    "TABLE2_ROWS",
    "sweep_circuit",
    "sweep_environment",
    "sweep_table",
    "whole_circuit_reference",
    "SweepCell",
    "SweepRow",
    "run_scalability_point",
    "run_scalability_sweep",
    "expected_hidden_stages",
    "ScalabilityRecord",
    "SCALABILITY_OPTIONS",
    "format_table",
    "format_seconds",
    "format_runtime_and_stages",
    "paper_vs_measured",
]
