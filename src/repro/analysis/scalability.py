"""Scalability experiment over chain architectures (the paper's Table 4).

The workload: ``N``-qubit circuits built from ``log2(N)`` *hidden stages*;
each stage randomly permutes the qubits into a virtual chain and emits
``N * log2(N)`` random nearest-neighbour gates of maximal length
(``T(G) = 3``).  The environment is the linear nearest-neighbour chain with a
0.001-second interaction ("a 1 kHz quantum processor").

The paper reports, per ``N``: the number of gates, the number of hidden
stages, the number of subcircuits the placer discovered (expected to equal
the number of hidden stages), the placed circuit's runtime, and the
software's own running time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial
from typing import Callable, List, Optional, Sequence

from repro.analysis.runner import ExperimentRunner, ExperimentSpec
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.random_circuits import hidden_stage_circuit
from repro.core.config import PlacementOptions
from repro.hardware.architectures import linear_chain


@dataclass(frozen=True)
class ScalabilityRecord:
    """One row of the Table 4 style report."""

    num_qubits: int
    num_gates: int
    hidden_stages: int
    num_subcircuits: int
    circuit_runtime_seconds: float
    software_runtime_seconds: float


#: Options tuned for large chain instances: fine tuning and wide lookahead
#: are disabled because their cost grows quadratically with the qubit count
#: while the chain instances only admit two monomorphisms per stage anyway.
SCALABILITY_OPTIONS = PlacementOptions(
    threshold=10.0,
    max_monomorphisms=4,
    fine_tuning=False,
    lookahead=False,
    lookahead_width=2,
)


def _chain_instance_circuit(num_qubits: int, seed: int) -> QuantumCircuit:
    """Module-level (hence picklable) circuit factory for one chain instance."""
    return hidden_stage_circuit(num_qubits, seed=seed).circuit


def run_scalability_point(
    num_qubits: int,
    seed: int = 0,
    options: Optional[PlacementOptions] = None,
) -> ScalabilityRecord:
    """Generate and place one hidden-stage instance of ``num_qubits`` qubits."""
    return run_scalability_sweep((num_qubits,), seed=seed, options=options)[0]


def _record_from_outcome(num_qubits: int, outcome) -> ScalabilityRecord:
    """Build one Table 4 record from its executed cell.

    Chain instances are feasible by construction; a failure means the
    caller passed broken options — raise, as the pre-runner code did.
    """
    outcome.raise_if_infeasible()
    return ScalabilityRecord(
        num_qubits=num_qubits,
        num_gates=outcome.num_gates,
        hidden_stages=expected_hidden_stages(num_qubits),
        num_subcircuits=outcome.num_subcircuits,
        circuit_runtime_seconds=outcome.runtime_seconds,
        software_runtime_seconds=outcome.software_runtime_seconds,
    )


def run_scalability_sweep(
    qubit_counts: Sequence[int] = (8, 16, 32, 64),
    seed: int = 0,
    options: Optional[PlacementOptions] = None,
    jobs: int = 1,
    runner: Optional[ExperimentRunner] = None,
    on_record: Optional[Callable[[ScalabilityRecord], None]] = None,
) -> List[ScalabilityRecord]:
    """Run the Table 4 sweep over a list of qubit counts.

    The default sizes stop at 64 qubits so the sweep completes in seconds;
    the paper's 512- and 1024-qubit points took hours even in C++ and can be
    requested explicitly.  ``jobs > 1`` distributes the points over worker
    processes; each worker regenerates its instance from ``(num_qubits,
    seed)``, so records match the serial run field for field (wall times
    aside).  ``on_record`` streams each point's record as its cell
    completes — with parallel jobs the small chains usually finish (and
    render) long before the largest one does.
    """
    opts = options or SCALABILITY_OPTIONS
    qubit_counts = list(qubit_counts)
    specs = [
        ExperimentSpec(
            circuit_factory=partial(_chain_instance_circuit, num_qubits, seed),
            environment_factory=partial(linear_chain, num_qubits),
            options=opts,
            label=f"chain {num_qubits}q seed {seed}",
        )
        for num_qubits in qubit_counts
    ]
    runner = runner or ExperimentRunner(jobs=jobs)
    if on_record is None:
        outcomes = runner.run(specs)
        return [
            _record_from_outcome(num_qubits, outcome)
            for num_qubits, outcome in zip(qubit_counts, outcomes)
        ]
    return runner.run_ordered(
        specs,
        build=lambda outcome: _record_from_outcome(
            qubit_counts[outcome.index], outcome
        ),
        on_item=on_record,
        what="scalability sweep",
    )


def expected_hidden_stages(num_qubits: int) -> int:
    """The number of hidden stages the generator uses for ``num_qubits``."""
    return max(1, int(round(math.log2(num_qubits))))
