"""The unified workload API: a :class:`Session` façade over place/sweep/shard.

One :class:`~repro.config.RunConfig` describes a run; a :class:`Session`
executes it.  The CLI (:mod:`repro.cli`), the examples and the shard
pipeline are thin delegates of this layer, so a run launched from Python,
from flags, from a ``--config run.json`` file or from a shard payload
goes through the same grid construction and produces byte-identical
deterministic output.

Typical use::

    from repro import RunConfig, Session

    cfg = RunConfig(circuit="qft6", environment="trans-crotonic-acid",
                    thresholds=(50, 100, 200))
    result = Session(cfg).sweep()
    print(result.table())          # the Table-3 style row
    print(result.counters)         # aggregated work counters

Results are typed objects (:class:`PlaceResult`, :class:`SweepResult`,
:class:`GridResult`) carrying the outcome rows, the run's aggregated
:data:`~repro.core.stats.STATS` counter delta and (where applicable) the
grid fingerprint — not bare dicts or tuples.  Their ``payload()`` methods
emit exactly the canonical JSON the CLI prints with ``--output json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis import sharding
from repro.analysis.reporting import format_table
from repro.analysis.runner import (
    ExperimentOutcome,
    ExperimentRunner,
    ExperimentSpec,
    ProgressCallback,
)
from repro.analysis.serialization import outcome_to_dict, outcomes_payload
from repro.analysis.sweep import SweepRow, build_sweep_specs, row_from_outcomes
from repro.config import RunConfig
from repro.core.result import PlacementResult
from repro.core.stats import STATS
from repro.exceptions import ConfigError
from repro.hardware.environment import PhysicalEnvironment
from repro.hardware.threshold_graph import PAPER_THRESHOLDS
from repro.registry import load_circuit, load_environment

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.analysis.experiments import Table2Result
    from repro.analysis.resilience import RetryPolicy
    from repro.analysis.scalability import ScalabilityRecord
    from repro.analysis.sweep import SweepCell
    from repro.core.config import PlacementOptions


# ---------------------------------------------------------------------------
# Shared renderers (used by result objects and the CLI merge path)
# ---------------------------------------------------------------------------


def sweep_payload(
    row: SweepRow,
    outcomes: Sequence[ExperimentOutcome],
    counters: Mapping[str, int],
    fingerprint: Optional[str] = None,
) -> Dict[str, Any]:
    """The canonical ``sweep --output json`` payload for one sweep row."""
    payload = outcomes_payload(outcomes, counters=counters)
    payload["circuit"] = row.circuit_name
    payload["environment"] = row.environment_name
    payload["cells"] = [
        {
            "threshold": cell.threshold,
            "feasible": cell.feasible,
            "runtime_seconds": cell.runtime_seconds,
            "num_subcircuits": cell.num_subcircuits,
        }
        for cell in row.cells
    ]
    if fingerprint is not None:
        payload["plan_fingerprint"] = fingerprint
    return payload


def sweep_table_text(row: SweepRow) -> str:
    """The human-readable sweep table for one sweep row."""
    table_rows = [
        [f"threshold {cell.threshold:g}", cell.formatted()] for cell in row.cells
    ]
    return format_table(["threshold", "runtime (subcircuits)"], table_rows,
                        title=f"{row.circuit_name} on {row.environment_name}")


# ---------------------------------------------------------------------------
# Typed results
# ---------------------------------------------------------------------------


@dataclass
class GridResult:
    """An executed spec grid: outcomes in grid order, counters, fingerprint.

    ``counters`` is the run's aggregate :data:`~repro.core.stats.STATS`
    delta; ``fingerprint`` (when computed) is the grid identity of
    :func:`repro.analysis.sharding.grid_fingerprint` — the same value a
    shard plan over these specs would carry.
    """

    config: RunConfig
    outcomes: List[ExperimentOutcome]
    counters: Dict[str, int] = field(default_factory=dict)
    fingerprint: Optional[str] = None

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """The outcomes as JSON-safe row dicts (shared row format)."""
        return [outcome_to_dict(outcome) for outcome in self.outcomes]

    def payload(self) -> Dict[str, Any]:
        """The canonical JSON payload (rows + counters [+ fingerprint])."""
        payload = outcomes_payload(self.outcomes, counters=self.counters)
        if self.fingerprint is not None:
            payload["plan_fingerprint"] = self.fingerprint
        return payload


@dataclass
class PlaceResult:
    """One placed circuit: the outcome row plus the full placement."""

    config: RunConfig
    outcome: ExperimentOutcome
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.outcome.feasible

    @property
    def placement(self) -> Optional[PlacementResult]:
        """The full :class:`PlacementResult` (``None`` for infeasible runs)."""
        return self.outcome.result

    def payload(self) -> Dict[str, Any]:
        """The canonical ``place --output json`` payload."""
        payload = outcomes_payload([self.outcome], counters=self.counters)
        payload["circuit"] = self.config.circuit
        payload["environment"] = self.config.environment
        return payload


@dataclass
class SweepResult:
    """One executed threshold sweep: the Table-3 row plus grid outcomes."""

    config: RunConfig
    row: SweepRow
    outcomes: List[ExperimentOutcome]
    counters: Dict[str, int] = field(default_factory=dict)
    thresholds: Tuple[float, ...] = ()
    fingerprint: Optional[str] = None

    @property
    def cells(self) -> "List[SweepCell]":
        return self.row.cells

    def payload(self) -> Dict[str, Any]:
        """The canonical ``sweep --output json`` payload."""
        return sweep_payload(
            self.row, self.outcomes, self.counters, self.fingerprint
        )

    def table(self) -> str:
        """The human-readable sweep table (exactly the CLI's output)."""
        return sweep_table_text(self.row)


@dataclass
class SweepGrid:
    """The flattened sweep grid of one config, before execution.

    ``backend`` is the whole-grid scheduler-backend override extracted
    from the config's options: the specs themselves stay on ``"auto"`` so
    that plans (and their fingerprints) are identical whatever backend an
    invocation selects — backends are bit-identical by contract.
    """

    environment: PhysicalEnvironment
    thresholds: List[float]
    circuit_name: str
    specs: List[ExperimentSpec]
    cell_index: List[int]
    backend: Optional[str]


# ---------------------------------------------------------------------------
# The façade
# ---------------------------------------------------------------------------


class Session:
    """Execute the run a :class:`RunConfig` describes.

    Parameters
    ----------
    config:
        The run description (a :class:`RunConfig`).
    progress:
        Optional per-cell progress callback forwarded to every
        :class:`~repro.analysis.runner.ExperimentRunner` the session
        builds (see :func:`~repro.analysis.runner.stderr_progress`).
    """

    def __init__(
        self,
        config: RunConfig,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if not isinstance(config, RunConfig):
            raise ConfigError(
                f"Session needs a RunConfig, got {type(config).__name__}; "
                "use Session.from_config() for dicts and file paths"
            )
        self.config = config
        self.progress = progress

    @classmethod
    def from_config(
        cls,
        config: Union[RunConfig, Mapping, str],
        progress: Optional[ProgressCallback] = None,
    ) -> "Session":
        """Build a session from a :class:`RunConfig`, dict, or file path."""
        if isinstance(config, RunConfig):
            return cls(config, progress=progress)
        if isinstance(config, Mapping):
            return cls(RunConfig.from_dict(config), progress=progress)
        if isinstance(config, str):
            return cls(RunConfig.load(config), progress=progress)
        raise ConfigError(
            f"cannot build a Session from {type(config).__name__}; expected "
            "a RunConfig, a mapping, or a config file path"
        )

    # -- building blocks -----------------------------------------------------

    def circuit_factory(self) -> Callable[[], Any]:
        """The picklable circuit factory of this run's circuit spec."""
        return partial(load_circuit, self.config.circuit)

    def environment_factory(self) -> Callable[[], Any]:
        """The picklable environment factory of this run's environment spec."""
        return partial(load_environment, self.config.environment)

    def backend_override(self) -> Optional[str]:
        """The whole-grid scheduler-backend override (``None`` for auto)."""
        backend = self.config.options.scheduler_backend
        return None if backend == "auto" else backend

    def retry_policy(self) -> "Optional[RetryPolicy]":
        """The config's :class:`~repro.analysis.resilience.RetryPolicy`.

        ``None`` when the config asks for no resilience (``retries=0``
        and no ``cell_timeout``) — runners then keep their plain
        serial/pool execution paths.  ``retries`` counts *re*-executions,
        so the policy allows ``retries + 1`` total attempts per cell.
        """
        if self.config.retries == 0 and self.config.cell_timeout is None:
            return None
        from repro.analysis.resilience import RetryPolicy

        return RetryPolicy(
            max_attempts=self.config.retries + 1,
            cell_timeout=self.config.cell_timeout,
        )

    def runner(self) -> ExperimentRunner:
        """An :class:`ExperimentRunner` shaped by this config."""
        return ExperimentRunner(
            jobs=self.config.jobs,
            progress=self.progress,
            scheduler_backend=self.backend_override(),
            retry_policy=self.retry_policy(),
        )

    def run(
        self, specs: Sequence[ExperimentSpec], fingerprint: bool = False
    ) -> GridResult:
        """Execute an arbitrary spec grid under this config's runner."""
        specs = list(specs)
        before = STATS.snapshot()
        outcomes = self.runner().run(specs)
        return GridResult(
            config=self.config,
            outcomes=outcomes,
            counters=STATS.delta_since(before),
            fingerprint=sharding.grid_fingerprint(specs) if fingerprint else None,
        )

    # -- place ---------------------------------------------------------------

    def place(self) -> PlaceResult:
        """Place the configured circuit into the configured environment.

        Runs through the experiment engine so the result row has the same
        shape (and serialisation) as sweep cells and shard outputs; the
        full :class:`~repro.core.result.PlacementResult` is kept on the
        outcome for callers that need stages and mappings.
        """
        spec = ExperimentSpec(
            circuit_factory=self.circuit_factory(),
            environment_factory=self.environment_factory(),
            options=self.config.options,
            label=f"{self.config.circuit}@{self.config.environment}",
            keep_result=True,
        )
        grid = self.run([spec])
        return PlaceResult(
            config=self.config,
            outcome=grid.outcomes[0],
            counters=grid.counters,
        )

    # -- sweep ---------------------------------------------------------------

    def sweep_grid(self) -> SweepGrid:
        """Build the deduplicated sweep grid this config describes.

        Factories are module-level loader partials, so specs — and
        therefore the plan fingerprint — serialise identically in any
        process; the scheduler backend is kept *out* of the specs (they
        stay on ``"auto"``) and carried as the grid's runner override.
        """
        environment = load_environment(self.config.environment)
        thresholds = [
            float(value)
            for value in (self.config.thresholds or list(PAPER_THRESHOLDS))
        ]
        options = self.config.options.replace(scheduler_backend="auto")
        circuit_factory = self.circuit_factory()
        circuit_name = circuit_factory().name
        specs, cell_index = build_sweep_specs(
            circuit_factory,
            environment,
            self.environment_factory(),
            thresholds,
            options,
            circuit_name=circuit_name,
        )
        return SweepGrid(
            environment=environment,
            thresholds=thresholds,
            circuit_name=circuit_name,
            specs=specs,
            cell_index=cell_index,
            backend=self.backend_override(),
        )

    def grid_runner(self, grid: SweepGrid) -> ExperimentRunner:
        """The runner for one built grid (its backend override applied)."""
        return ExperimentRunner(
            jobs=self.config.jobs,
            progress=self.progress,
            scheduler_backend=grid.backend,
            retry_policy=self.retry_policy(),
        )

    def sweep(self, grid: Optional[SweepGrid] = None) -> SweepResult:
        """Run the whole threshold sweep and assemble its Table-3 row."""
        grid = grid or self.sweep_grid()
        before = STATS.snapshot()
        outcomes = self.grid_runner(grid).run(grid.specs)
        counters = STATS.delta_since(before)
        row = row_from_outcomes(
            outcomes,
            grid.cell_index,
            grid.thresholds,
            grid.circuit_name,
            grid.environment.name,
        )
        return SweepResult(
            config=self.config,
            row=row,
            outcomes=outcomes,
            counters=counters,
            thresholds=tuple(grid.thresholds),
        )

    # -- shard ---------------------------------------------------------------

    def shard_plan(
        self, grid: Optional[SweepGrid] = None, embed_config: bool = True
    ) -> sharding.ShardPlan:
        """Partition this config's sweep grid into its deterministic shards.

        The returned plan embeds the config (``embed_config``), so shard
        input files written from it are self-describing.  The config's
        ``scheduler_backend`` is deliberately *not* part of the planned
        grid (see :class:`SweepGrid`).
        """
        grid = grid or self.sweep_grid()
        return sharding.ShardPlan.build(
            grid.specs,
            num_shards=self.config.shards,
            strategy=self.config.strategy,
            config=self.config if embed_config else None,
        )

    def sweep_shard(
        self,
        shard_index: Optional[int] = None,
        grid: Optional[SweepGrid] = None,
    ) -> sharding.OutcomeShard:
        """Execute one shard of the sweep grid (the shard-worker mode).

        ``shard_index`` defaults to the config's; the returned outcome
        shard merges with its siblings into exactly the serial sweep.
        """
        index = self.config.shard_index if shard_index is None else shard_index
        if index is None:
            raise ConfigError(
                "sweep_shard needs a shard index (config.shard_index or the "
                "shard_index argument)"
            )
        grid = grid or self.sweep_grid()
        plan = self.shard_plan(grid=grid)
        return sharding.execute_shard(
            plan.shard_input(index), self.grid_runner(grid)
        )

    # -- table harnesses -----------------------------------------------------

    def table2(
        self, on_result: "Optional[Callable[[Table2Result], None]]" = None
    ) -> "List[Table2Result]":
        """The paper's Table 2 under this config's options and runner."""
        from repro.analysis.experiments import run_table2

        return run_table2(
            options=self.config.options,
            runner=self.runner(),
            on_result=on_result,
        )

    def scalability(
        self,
        qubit_counts: Sequence[int] = (8, 16, 32, 64),
        seed: int = 0,
        options: "Optional[PlacementOptions]" = None,
        on_record: "Optional[Callable[[ScalabilityRecord], None]]" = None,
    ) -> "List[ScalabilityRecord]":
        """The paper's Table 4 chains under this config's runner.

        ``options`` defaults to the harness's tuned
        :data:`~repro.analysis.scalability.SCALABILITY_OPTIONS` (not the
        config's placement options, which target single placements).
        """
        from repro.analysis.scalability import run_scalability_sweep

        return run_scalability_sweep(
            qubit_counts,
            seed=seed,
            options=options,
            runner=self.runner(),
            on_record=on_record,
        )
