"""``python -m repro`` — the command-line interface.

Delegates to :func:`repro.cli.main`, so ``python -m repro place qft6
histidine`` behaves exactly like the installed ``repro-place`` script.
"""

import sys

from repro.cli import main

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
