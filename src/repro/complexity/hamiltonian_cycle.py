"""The NP-completeness reduction of Section 4.

The paper proves that even the simplified place-all-at-once version of the
placement problem is NP-complete by reducing from Hamiltonian cycle:

* the *physical environment* has the same vertex set as the input graph
  ``H``; a pair of vertices gets weight 0 when it is an edge of ``H`` and
  weight 1 otherwise (single-qubit delays are 0);
* the *circuit* has ``m`` qubits and ``m`` levels, the ``i``-th level holding
  a single two-qubit gate between qubits ``q_i`` and ``q_{(i mod m)+1}`` with
  ``T(G) = 1``;
* a placement of runtime 0 exists **iff** ``H`` has a Hamiltonian cycle.

This module builds the reduction instance, evaluates candidate placements,
and — for small graphs — solves both sides so that the equivalence can be
checked experimentally (experiment E8).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Qubit
from repro.core._bitset import canonical_order
from repro.exceptions import ReproError
from repro.hardware.environment import Node, PhysicalEnvironment
from repro.timing.scheduler import circuit_runtime


def reduction_environment(graph: nx.Graph) -> PhysicalEnvironment:
    """The physical environment modelling graph ``H`` of the reduction.

    Edges of ``H`` have weight 0 (free interactions); non-edges have weight 1.
    """
    nodes = canonical_order(graph.nodes())
    if len(nodes) < 3:
        raise ReproError("the Hamiltonian-cycle reduction needs at least 3 vertices")
    single = {node: 0.0 for node in nodes}
    pairs: Dict[Tuple[Node, Node], float] = {}
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            pairs[(a, b)] = 0.0 if graph.has_edge(a, b) else 1.0
    return PhysicalEnvironment(
        single, pairs, default_pair_delay=1.0, name="hamiltonian-cycle-reduction"
    )


def reduction_circuit(num_vertices: int) -> QuantumCircuit:
    """The cycle circuit of the reduction: gate ``(q_i, q_{i+1 mod m})`` per level."""
    if num_vertices < 3:
        raise ReproError("the reduction circuit needs at least 3 qubits")
    qubits: List[Qubit] = [f"q{i}" for i in range(num_vertices)]
    circuit = QuantumCircuit(qubits, name=f"hamiltonian-cycle-{num_vertices}")
    for i in range(num_vertices):
        circuit.append(
            g.generic_2q(qubits[i], qubits[(i + 1) % num_vertices], 1.0, name="CYC")
        )
    return circuit


def placement_cost(
    graph: nx.Graph,
    assignment: Sequence[Node],
) -> float:
    """Runtime of the reduction circuit under ``q_i -> assignment[i]``.

    Because every gate has ``T = 1`` and weights are 0/1, the runtime equals
    the number of consecutive pairs of the assignment (cyclically) that are
    *not* edges of ``H``.
    """
    environment = reduction_environment(graph)
    circuit = reduction_circuit(len(assignment))
    placement = {f"q{i}": node for i, node in enumerate(assignment)}
    return circuit_runtime(circuit, placement, environment, validate=True)


def find_zero_cost_placement(graph: nx.Graph) -> Optional[List[Node]]:
    """Exhaustively search for a runtime-0 placement of the reduction instance.

    Returns the vertex order (which is then a Hamiltonian cycle of ``H``) or
    ``None`` when no zero-cost placement exists.  Exponential — small graphs
    only.
    """
    nodes = canonical_order(graph.nodes())
    if len(nodes) < 3:
        return None
    first = nodes[0]
    for rest in itertools.permutations(nodes[1:]):
        assignment = [first, *rest]
        cyclic_pairs = zip(assignment, assignment[1:] + [assignment[0]])
        if all(graph.has_edge(a, b) for a, b in cyclic_pairs):
            return assignment
    return None


def has_hamiltonian_cycle(graph: nx.Graph) -> bool:
    """Direct exponential Hamiltonian-cycle test (ground truth for E8)."""
    return find_zero_cost_placement(graph) is not None


def verify_reduction(graph: nx.Graph) -> bool:
    """Check both directions of the reduction on one (small) graph instance."""
    placement = find_zero_cost_placement(graph)
    if placement is None:
        return not has_hamiltonian_cycle(graph)
    if placement_cost(graph, placement) != 0.0:
        return False
    cyclic_pairs = zip(placement, placement[1:] + [placement[0]])
    return all(graph.has_edge(a, b) for a, b in cyclic_pairs)
