"""The NP-completeness reduction of the placement problem (Section 4)."""

from repro.complexity.hamiltonian_cycle import (
    find_zero_cost_placement,
    has_hamiltonian_cycle,
    placement_cost,
    reduction_circuit,
    reduction_environment,
    verify_reduction,
)

__all__ = [
    "reduction_environment",
    "reduction_circuit",
    "placement_cost",
    "find_zero_cost_placement",
    "has_hamiltonian_cycle",
    "verify_reduction",
]
