"""Statevector simulation and placement verification."""

from repro.simulation.statevector import (
    StatevectorSimulator,
    circuit_unitary,
    statevector,
)
from repro.simulation.unitaries import (
    cphase_matrix,
    gate_unitary,
    is_unitary,
    quantum_fourier_transform_matrix,
    rx_matrix,
    ry_matrix,
    rz_matrix,
    zz_matrix,
)
from repro.simulation.verify import (
    VerificationReport,
    verify_placement,
    verify_routing_layers,
)

__all__ = [
    "StatevectorSimulator",
    "statevector",
    "circuit_unitary",
    "gate_unitary",
    "rx_matrix",
    "ry_matrix",
    "rz_matrix",
    "zz_matrix",
    "cphase_matrix",
    "is_unitary",
    "quantum_fourier_transform_matrix",
    "verify_placement",
    "verify_routing_layers",
    "VerificationReport",
]
