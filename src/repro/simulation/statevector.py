"""Dense statevector / unitary simulator for small circuits.

Used to *verify* placements and routings rather than to perform interesting
quantum computations: after the placer has turned a logical circuit into a
physical circuit (gates remapped to physical nodes, SWAP stages inserted),
simulating both and comparing — modulo the qubit relocation tracked by the
placer — certifies that the transformation preserved the computation.

The simulator is deliberately simple (dense ``numpy`` vectors / matrices,
little-endian qubit ordering with qubit 0 the least-significant bit) and is
limited to circuits small enough for that to be practical.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, Qubit
from repro.exceptions import SimulationError
from repro.simulation.unitaries import gate_unitary

#: Hard ceiling on the number of simulated qubits (2^16 amplitudes already
#: costs a megabyte per state vector; unitaries grow quadratically).
MAX_STATEVECTOR_QUBITS = 16
MAX_UNITARY_QUBITS = 10


class StatevectorSimulator:
    """Applies circuits to dense state vectors.

    Parameters
    ----------
    qubit_order:
        The qubits, least-significant first.  Basis state ``|b_{n-1} ... b_0>``
        assigns bit ``b_i`` to ``qubit_order[i]``.
    """

    def __init__(self, qubit_order: Sequence[Qubit]) -> None:
        qubits = list(qubit_order)
        if len(set(qubits)) != len(qubits):
            raise SimulationError("duplicate qubits in simulator qubit order")
        if len(qubits) > MAX_STATEVECTOR_QUBITS:
            raise SimulationError(
                f"refusing to simulate {len(qubits)} qubits "
                f"(limit {MAX_STATEVECTOR_QUBITS})"
            )
        self.qubits = qubits
        self.index: Dict[Qubit, int] = {q: i for i, q in enumerate(qubits)}

    @property
    def num_qubits(self) -> int:
        """Number of simulated qubits."""
        return len(self.qubits)

    @property
    def dimension(self) -> int:
        """Dimension of the state space."""
        return 2 ** self.num_qubits

    # -- states -----------------------------------------------------------------

    def zero_state(self) -> np.ndarray:
        """The all-zeros computational basis state."""
        state = np.zeros(self.dimension, dtype=complex)
        state[0] = 1.0
        return state

    def basis_state(self, bits: Dict[Qubit, int]) -> np.ndarray:
        """A computational basis state with the given bit per qubit (default 0)."""
        index = 0
        for qubit, bit in bits.items():
            if qubit not in self.index:
                raise SimulationError(f"unknown qubit {qubit!r}")
            if bit not in (0, 1):
                raise SimulationError(f"bit for {qubit!r} must be 0 or 1")
            if bit:
                index |= 1 << self.index[qubit]
        state = np.zeros(self.dimension, dtype=complex)
        state[index] = 1.0
        return state

    # -- evolution ---------------------------------------------------------------

    def apply_gate(self, state: np.ndarray, gate: Gate) -> np.ndarray:
        """Return ``gate`` applied to ``state``."""
        matrix = gate_unitary(gate)
        targets = [self.index[q] for q in gate.qubits]
        return _apply_matrix(state, matrix, targets, self.num_qubits)

    def run(self, circuit: QuantumCircuit, state: Optional[np.ndarray] = None) -> np.ndarray:
        """Apply every gate of ``circuit`` to ``state`` (default ``|0...0>``)."""
        for qubit in circuit.used_qubits():
            if qubit not in self.index:
                raise SimulationError(
                    f"circuit qubit {qubit!r} is unknown to the simulator"
                )
        if state is None:
            state = self.zero_state()
        current = np.array(state, dtype=complex)
        if current.shape != (self.dimension,):
            raise SimulationError(
                f"state vector has shape {current.shape}, expected ({self.dimension},)"
            )
        for gate in circuit:
            current = self.apply_gate(current, gate)
        return current

    def unitary(self, circuit: QuantumCircuit) -> np.ndarray:
        """The full unitary matrix of ``circuit`` (small circuits only)."""
        if self.num_qubits > MAX_UNITARY_QUBITS:
            raise SimulationError(
                f"refusing to build a unitary on {self.num_qubits} qubits "
                f"(limit {MAX_UNITARY_QUBITS})"
            )
        dimension = self.dimension
        matrix = np.zeros((dimension, dimension), dtype=complex)
        for column in range(dimension):
            state = np.zeros(dimension, dtype=complex)
            state[column] = 1.0
            matrix[:, column] = self.run(circuit, state)
        return matrix

    # -- measurement-style queries -------------------------------------------------

    def probabilities(self, state: np.ndarray) -> np.ndarray:
        """Measurement probabilities of every basis state."""
        return np.abs(state) ** 2

    def marginal_probability(self, state: np.ndarray, qubit: Qubit, value: int) -> float:
        """Probability that measuring ``qubit`` yields ``value``."""
        if value not in (0, 1):
            raise SimulationError("measurement value must be 0 or 1")
        position = self.index[qubit]
        probabilities = self.probabilities(state)
        total = 0.0
        for basis_index, probability in enumerate(probabilities):
            if ((basis_index >> position) & 1) == value:
                total += probability
        return float(total)


def _apply_matrix(
    state: np.ndarray,
    matrix: np.ndarray,
    targets: List[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a 1- or 2-qubit matrix to the given target qubit positions."""
    tensor = state.reshape([2] * num_qubits)
    # numpy's reshape of the flat vector puts qubit 0 (least significant bit)
    # on the *last* tensor axis.
    axes = [num_qubits - 1 - t for t in targets]
    k = len(targets)
    operator = matrix.reshape([2] * (2 * k))
    moved = np.moveaxis(tensor, axes, range(k))
    contracted = np.tensordot(operator, moved, axes=(list(range(k, 2 * k)), list(range(k))))
    result = np.moveaxis(contracted, range(k), axes)
    return result.reshape(-1)


def statevector(circuit: QuantumCircuit) -> np.ndarray:
    """Convenience: simulate ``circuit`` from ``|0...0>`` in its own qubit order."""
    return StatevectorSimulator(circuit.qubits).run(circuit)


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Convenience: the unitary of ``circuit`` in its own qubit order."""
    return StatevectorSimulator(circuit.qubits).unitary(circuit)
