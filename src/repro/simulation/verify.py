"""Verification that a placement preserves the computation.

A placed circuit differs from the abstract circuit in two ways: gates act on
physical nodes instead of logical qubits, and SWAP stages move values around
between subcircuits.  The placer tracks where every logical qubit lives at
the start (``initial_placement``) and at the end (``final_placement``); if
the bookkeeping and the routing are correct, then for *any* product input

    simulate(physical circuit, input embedded at the initial placement)
        ==  embed(simulate(logical circuit, input), final placement)

up to global phase, with every unused physical node back in ``|0>``.

:func:`verify_placement` checks exactly that identity on the all-zeros state,
every single-excitation basis state and a configurable number of random
product states, and reports the worst fidelity encountered.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Qubit
from repro.core.result import PlacementResult
from repro.exceptions import SimulationError
from repro.hardware.environment import Node, PhysicalEnvironment
from repro.simulation.statevector import StatevectorSimulator

Placement = Dict[Qubit, Node]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of verifying one placement result.

    Attributes
    ----------
    equivalent:
        ``True`` when every tested input matched up to global phase.
    worst_fidelity:
        The smallest ``|<expected|actual>|`` observed over all tested inputs.
    num_states_tested:
        How many input states were compared.
    """

    equivalent: bool
    worst_fidelity: float
    num_states_tested: int


def _embed_state(
    logical_state: np.ndarray,
    logical_qubits: Sequence[Qubit],
    placement: Placement,
    physical_qubits: Sequence[Node],
) -> np.ndarray:
    """Embed a logical state into the physical register (idle nodes in ``|0>``)."""
    logical_index = {q: i for i, q in enumerate(logical_qubits)}
    physical_index = {n: i for i, n in enumerate(physical_qubits)}
    num_logical = len(logical_qubits)
    num_physical = len(physical_qubits)
    physical_state = np.zeros(2 ** num_physical, dtype=complex)
    for basis in range(2 ** num_logical):
        amplitude = logical_state[basis]
        if amplitude == 0:
            continue
        physical_basis = 0
        for qubit in logical_qubits:
            bit = (basis >> logical_index[qubit]) & 1
            if bit:
                physical_basis |= 1 << physical_index[placement[qubit]]
        physical_state[physical_basis] = amplitude
    return physical_state


def _random_preparation(
    qubits: Sequence[Qubit], rng: random.Random
) -> List[Tuple[Qubit, float, float]]:
    """Random product-state preparation angles (Ry, Rz per qubit)."""
    return [
        (qubit, rng.uniform(0.0, 360.0), rng.uniform(0.0, 360.0)) for qubit in qubits
    ]


def _preparation_circuit(
    qubits: Sequence[Qubit],
    angles: Sequence[Tuple[Qubit, float, float]],
    relabel: Optional[Placement] = None,
) -> QuantumCircuit:
    """A circuit preparing the product state described by ``angles``."""
    labels = list(qubits)
    circuit = QuantumCircuit(labels, name="preparation")
    for qubit, theta, phi in angles:
        target = relabel[qubit] if relabel is not None else qubit
        circuit.append(g.ry(target, theta))
        circuit.append(g.rz(target, phi))
    return circuit


def verify_placement(
    circuit: QuantumCircuit,
    result: PlacementResult,
    environment: PhysicalEnvironment,
    num_random_states: int = 2,
    seed: int = 0,
    atol: float = 1e-7,
) -> VerificationReport:
    """Check that ``result.physical_circuit`` implements ``circuit``.

    Only circuits whose gates have defined unitaries can be verified (the
    generic random workloads cannot); a
    :class:`~repro.exceptions.SimulationError` is raised otherwise.
    """
    logical_qubits = list(circuit.qubits)
    physical_qubits = list(environment.nodes)
    if len(physical_qubits) > 14:
        raise SimulationError(
            f"verification of a {len(physical_qubits)}-node environment is too large"
        )

    logical_sim = StatevectorSimulator(logical_qubits)
    physical_sim = StatevectorSimulator(physical_qubits)

    initial = result.initial_placement
    final = result.final_placement
    rng = random.Random(seed)

    preparations: List[List[Tuple[Qubit, float, float]]] = []
    # The all-zeros state.
    preparations.append([])
    # Single-excitation basis states (Ry(180) flips one qubit up to phase).
    for qubit in logical_qubits:
        preparations.append([(qubit, 180.0, 0.0)])
    # Random product states.
    for _ in range(num_random_states):
        preparations.append(_random_preparation(logical_qubits, rng))

    worst = 1.0
    for angles in preparations:
        logical_input = logical_sim.run(
            _preparation_circuit(logical_qubits, angles)
        )
        logical_output = logical_sim.run(circuit, logical_input)
        expected_physical = _embed_state(
            logical_output, logical_qubits, final, physical_qubits
        )

        physical_input = physical_sim.run(
            _preparation_circuit(physical_qubits, angles, relabel=initial)
        )
        actual_physical = physical_sim.run(result.physical_circuit, physical_input)

        fidelity = abs(np.vdot(expected_physical, actual_physical))
        worst = min(worst, fidelity)

    return VerificationReport(
        equivalent=bool(worst >= 1.0 - atol),
        worst_fidelity=float(worst),
        num_states_tested=len(preparations),
    )


def verify_routing_layers(
    layers: Sequence[Sequence[Tuple[Node, Node]]],
    permutation: Dict[Node, Node],
) -> bool:
    """Classically check that SWAP layers realise a node permutation.

    Simulates the layers on classical tokens; cheaper than a quantum check
    and sufficient because SWAP circuits permute basis states.
    """
    return _tokens_delivered(layers, permutation)


def _tokens_delivered(
    layers: Sequence[Sequence[Tuple[Node, Node]]],
    permutation: Dict[Node, Node],
) -> bool:
    """Track tokens through the layers and compare with the permutation."""
    token_at: Dict[Node, Node] = {node: node for node in permutation}
    for layer in layers:
        for a, b in layer:
            token_a = token_at.get(a, a)
            token_b = token_at.get(b, b)
            token_at[a], token_at[b] = token_b, token_a
    # Token originally on ``source`` must now sit on ``permutation[source]``.
    location: Dict[Node, Node] = {}
    for node, token in token_at.items():
        location[token] = node
    return all(
        location.get(source, source) == target for source, target in permutation.items()
    )
