"""Gate unitaries for the verification simulator.

Angles follow the paper's conventions (degrees; rotation matrices as printed
in Section 2)::

    Rx(t) = [[cos(t/2), -i sin(t/2)], [-i sin(t/2), cos(t/2)]]
    Ry(t) = [[cos(t/2), -sin(t/2)],  [sin(t/2),  cos(t/2)]]
    Rz(t) = diag(exp(-i t/2), exp(+i t/2))
    ZZ(t) = diag(exp(-i t/2), exp(+i t/2), exp(+i t/2), exp(-i t/2))

Gates whose names carry no angle (H, X, CNOT, SWAP, ...) use their standard
matrices.  Generic placeholder gates (``U1``/``U2`` from the random workload
generators) have no defined unitary and are rejected — simulation is meant
for the concrete benchmark circuits.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.circuits.gates import Gate
from repro.exceptions import SimulationError

_SQRT2_INV = 1.0 / math.sqrt(2.0)

_FIXED_1Q: Dict[str, np.ndarray] = {
    "H": np.array([[1, 1], [1, -1]], dtype=complex) * _SQRT2_INV,
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

_FIXED_2Q: Dict[str, np.ndarray] = {
    "CNOT": np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
    ),
    "CZ": np.diag([1, 1, 1, -1]).astype(complex),
    "SWAP": np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
}


def _radians(angle_degrees: float) -> float:
    return math.radians(angle_degrees)


def rx_matrix(angle_degrees: float) -> np.ndarray:
    """Single-qubit X rotation."""
    half = _radians(angle_degrees) / 2.0
    return np.array(
        [[math.cos(half), -1j * math.sin(half)], [-1j * math.sin(half), math.cos(half)]],
        dtype=complex,
    )


def ry_matrix(angle_degrees: float) -> np.ndarray:
    """Single-qubit Y rotation."""
    half = _radians(angle_degrees) / 2.0
    return np.array(
        [[math.cos(half), -math.sin(half)], [math.sin(half), math.cos(half)]],
        dtype=complex,
    )


def rz_matrix(angle_degrees: float) -> np.ndarray:
    """Single-qubit Z rotation."""
    half = _radians(angle_degrees) / 2.0
    return np.diag([np.exp(-1j * half), np.exp(1j * half)]).astype(complex)


def zz_matrix(angle_degrees: float) -> np.ndarray:
    """Two-qubit Ising ``ZZ`` rotation."""
    half = _radians(angle_degrees) / 2.0
    phase_same = np.exp(-1j * half)
    phase_diff = np.exp(1j * half)
    return np.diag([phase_same, phase_diff, phase_diff, phase_same]).astype(complex)


def cphase_matrix(angle_degrees: float) -> np.ndarray:
    """Controlled phase rotation by ``angle_degrees``."""
    phase = np.exp(1j * _radians(angle_degrees))
    return np.diag([1, 1, 1, phase]).astype(complex)


def gate_unitary(gate: Gate) -> np.ndarray:
    """The unitary matrix of ``gate`` (2x2 or 4x4).

    Raises :class:`~repro.exceptions.SimulationError` for gates without a
    defined matrix (generic placeholder gates).
    """
    name = gate.name
    if name == "Rx":
        return rx_matrix(gate.angle if gate.angle is not None else 90.0)
    if name == "Ry":
        return ry_matrix(gate.angle if gate.angle is not None else 90.0)
    if name == "Rz":
        return rz_matrix(gate.angle if gate.angle is not None else 90.0)
    if name == "ZZ":
        return zz_matrix(gate.angle if gate.angle is not None else 90.0)
    if name == "CPHASE":
        return cphase_matrix(gate.angle if gate.angle is not None else 90.0)
    if name in _FIXED_1Q:
        return _FIXED_1Q[name].copy()
    if name in _FIXED_2Q:
        return _FIXED_2Q[name].copy()
    raise SimulationError(f"gate {gate!r} has no defined unitary matrix")


def is_unitary(matrix: np.ndarray, tolerance: float = 1e-9) -> bool:
    """Whether ``matrix`` is unitary up to ``tolerance``."""
    identity = np.eye(matrix.shape[0], dtype=complex)
    return bool(np.allclose(matrix @ matrix.conj().T, identity, atol=tolerance))


def quantum_fourier_transform_matrix(num_qubits: int) -> np.ndarray:
    """The exact ``2^n``-dimensional QFT matrix (for simulator cross-checks)."""
    dimension = 2 ** num_qubits
    omega = np.exp(2j * np.pi / dimension)
    indices = np.arange(dimension)
    return omega ** np.outer(indices, indices) / math.sqrt(dimension)
