"""Turning routing results into SWAP circuits and costing them.

A :class:`~repro.routing.bubble.RoutingResult` is a sequence of parallel SWAP
layers over *physical* nodes.  To account for its execution time it is
converted into a :class:`~repro.circuits.circuit.QuantumCircuit` whose
"logical" qubits are the physical nodes themselves (so the identity placement
applies) and scheduled with the usual runtime model: each SWAP uses its
interaction three times (``T(SWAP) = 3``), so a SWAP on edge ``(u, v)`` takes
``3 * W(u, v)``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.hardware.environment import PhysicalEnvironment
from repro.routing.bubble import Layer, RoutingResult
from repro.timing.scheduler import circuit_runtime, sequential_level_runtime

Node = Hashable


def swap_stage_circuit(
    layers: Sequence[Layer],
    nodes: Iterable[Node],
    name: str = "swap-stage",
) -> QuantumCircuit:
    """Build a SWAP circuit (over physical node labels) from routing layers."""
    node_list = list(nodes)
    circuit = QuantumCircuit(node_list if node_list else ["_"], name=name)
    for layer in layers:
        for a, b in layer:
            circuit.append(g.swap(a, b))
    return circuit


def routing_circuit(
    result: RoutingResult,
    environment: PhysicalEnvironment,
    name: str = "swap-stage",
) -> QuantumCircuit:
    """SWAP circuit of a routing result over all environment nodes."""
    return swap_stage_circuit(result.layers, environment.nodes, name=name)


def swap_stage_runtime(
    layers: Sequence[Layer],
    environment: PhysicalEnvironment,
    sequential_levels: bool = False,
) -> float:
    """Execution time of a swap stage on ``environment``.

    With the default asynchronous model the SWAPs of one layer run in
    parallel and consecutive layers overlap on disjoint qubits exactly as the
    scheduler allows.  With ``sequential_levels`` every layer waits for the
    slowest SWAP of the previous one (the stricter model mentioned in the
    paper).
    """
    if not layers or all(not layer for layer in layers):
        return 0.0
    if sequential_levels:
        # Each routing layer is one logic level; a level costs as much as its
        # slowest SWAP and levels do not overlap.
        total = 0.0
        for layer in layers:
            if not layer:
                continue
            total += max(3.0 * environment.pair_delay(a, b) for a, b in layer)
        return total
    circuit = swap_stage_circuit(layers, environment.nodes)
    placement = {node: node for node in environment.nodes}
    return circuit_runtime(circuit, placement, environment)


def routing_runtime(
    result: RoutingResult,
    environment: PhysicalEnvironment,
    sequential_levels: bool = False,
) -> float:
    """Execution time of a :class:`RoutingResult` on ``environment``."""
    return swap_stage_runtime(
        result.layers, environment, sequential_levels=sequential_levels
    )


def uniform_swap_depth_cost(result: RoutingResult, swap_time: float = 1.0) -> float:
    """Cost under the paper's simplifying assumption of equal SWAP times.

    Section 5.2 assumes "all SWAP gates applied to the qubits joined by the
    edges of the adjacency graph require the same time"; the cost of a stage
    is then simply its depth times the common SWAP time.
    """
    return result.depth * swap_time


def apply_layers_to_placement(
    placement: Dict[Hashable, Node],
    layers: Sequence[Layer],
) -> Dict[Hashable, Node]:
    """Track where each logical qubit ends up after executing ``layers``.

    ``placement`` maps logical qubits to the nodes they occupy before the
    stage; the returned mapping gives their nodes afterwards.
    """
    node_to_qubit: Dict[Node, Hashable] = {node: qubit for qubit, node in placement.items()}
    for layer in layers:
        for a, b in layer:
            qubit_a = node_to_qubit.pop(a, None)
            qubit_b = node_to_qubit.pop(b, None)
            if qubit_b is not None:
                node_to_qubit[a] = qubit_b
            if qubit_a is not None:
                node_to_qubit[b] = qubit_a
    return {qubit: node for node, qubit in node_to_qubit.items()}
