"""SWAP-based routing of qubit values over adjacency graphs."""

from repro.routing.bubble import RoutingResult, route_between_placements, route_permutation
from repro.routing.odd_even import chain_order_from_graph, route_permutation_odd_even
from repro.routing.permutation import (
    Permutation,
    complete_partial_permutation,
    permutation_between_placements,
    required_permutation,
)
from repro.routing.separators import (
    Bisection,
    balanced_connected_bisection,
    degree_separability_bound,
    separability,
)
from repro.routing.swap_circuit import (
    apply_layers_to_placement,
    routing_circuit,
    routing_runtime,
    swap_stage_circuit,
    swap_stage_runtime,
    uniform_swap_depth_cost,
)
from repro.routing.token_swapping import (
    greedy_token_swapping,
    pack_layers,
    route_permutation_greedy,
)

__all__ = [
    "route_permutation",
    "route_between_placements",
    "RoutingResult",
    "Permutation",
    "required_permutation",
    "complete_partial_permutation",
    "permutation_between_placements",
    "balanced_connected_bisection",
    "Bisection",
    "separability",
    "degree_separability_bound",
    "swap_stage_circuit",
    "routing_circuit",
    "swap_stage_runtime",
    "routing_runtime",
    "uniform_swap_depth_cost",
    "apply_layers_to_placement",
    "greedy_token_swapping",
    "pack_layers",
    "route_permutation_greedy",
    "route_permutation_odd_even",
    "chain_order_from_graph",
]
