"""Balanced connected graph bisection and well-separability.

The routing algorithm of the paper recursively cuts the adjacency graph into
two *connected* subgraphs of as equal size as possible ("cut the graph into
two connected subgraphs with the number of vertices equal to or as close to
n/2 as possible").  The quality of the cut is captured by the separability
parameter ``s``: the ratio of the smaller part to the larger part, taken over
the whole recursion.  The appendix of the paper shows every graph of maximal
degree ``k`` admits ``s >= 1/k``; chains and 2D lattices achieve ``s >= 1/2``.

Every tie-break in this module — spanning-tree traversal order, channel-edge
orientation, boundary-refinement order — is resolved through one
:func:`repro.core._bitset.node_index_table` per call, so the bisection found
for a given node/edge set is independent of the input graph's internal
iteration order (and hence of ``PYTHONHASHSEED``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.core._bitset import node_index_table
from repro.exceptions import RoutingError

Node = Hashable


@dataclass(frozen=True)
class Bisection:
    """A connected bisection of a graph into two parts.

    Attributes
    ----------
    part_one, part_two:
        The node sets; ``part_one`` is never smaller than ``part_two``.
    channel_edges:
        The graph edges with one endpoint in each part (the "communication
        channels" of the paper), each oriented lower-index endpoint first
        and listed in node-index order.
    """

    part_one: FrozenSet[Node]
    part_two: FrozenSet[Node]
    channel_edges: Tuple[Tuple[Node, Node], ...]

    @property
    def ratio(self) -> float:
        """Smaller-to-larger size ratio (the local separability)."""
        return len(self.part_two) / len(self.part_one)

    @property
    def balance(self) -> int:
        """Absolute size difference (0 means a perfect split)."""
        return len(self.part_one) - len(self.part_two)


def _channel_edges(
    graph: nx.Graph,
    part_one: Set[Node],
    part_two: Set[Node],
    order: Dict[Node, int],
) -> Tuple:
    """Cut edges, canonically oriented and sorted by node index."""
    edges = []
    for a, b in graph.edges():
        if (a in part_one and b in part_two) or (a in part_two and b in part_one):
            if order[b] < order[a]:
                a, b = b, a
            edges.append((a, b))
    edges.sort(key=lambda edge: (order[edge[0]], order[edge[1]]))
    return tuple(edges)


def _bisection_from_parts(
    graph: nx.Graph,
    part_a: Set[Node],
    part_b: Set[Node],
    order: Dict[Node, int],
) -> Bisection:
    if len(part_a) < len(part_b):
        part_a, part_b = part_b, part_a
    return Bisection(
        frozenset(part_a),
        frozenset(part_b),
        _channel_edges(graph, set(part_a), set(part_b), order),
    )


def bfs_tree_parents(
    graph: nx.Graph,
    root: Node,
    order: Dict[Node, int],
    nodes: Optional[Set[Node]] = None,
) -> Dict[Node, Node]:
    """Index-ordered BFS spanning-tree parent pointers (discovery order).

    Each node's neighbours are visited in node-index order, so the tree is
    independent of the graph's adjacency insertion order.  ``nodes``
    optionally restricts the traversal to an induced subset.  The dict's
    insertion order is BFS discovery order — the determinism-critical
    traversal shared by this module's spanning-tree cuts and the bubble
    router's per-side trees (:mod:`repro.routing.bubble`).
    """
    parents: Dict[Node, Node] = {}
    visited: Set[Node] = {root}
    queue: deque = deque([root])
    while queue:
        parent = queue.popleft()
        for child in sorted(graph.adj[parent], key=order.__getitem__):
            if (nodes is None or child in nodes) and child not in visited:
                visited.add(child)
                parents[child] = parent
                queue.append(child)
    return parents


def _bfs_tree_edges(
    graph: nx.Graph, root: Node, order: Dict[Node, int]
) -> List[Tuple[Node, Node]]:
    """BFS spanning-tree edges with neighbours visited in node-index order."""
    return [
        (parent, child)
        for child, parent in bfs_tree_parents(graph, root, order).items()
    ]


def _dfs_tree_edges(
    graph: nx.Graph, root: Node, order: Dict[Node, int]
) -> List[Tuple[Node, Node]]:
    """DFS spanning-tree edges with neighbours visited in node-index order."""
    edges: List[Tuple[Node, Node]] = []
    visited: Set[Node] = {root}
    stack: List[Tuple[Node, Iterable[Node]]] = [
        (root, iter(sorted(graph.adj[root], key=order.__getitem__)))
    ]
    while stack:
        parent, children = stack[-1]
        advanced = False
        for child in children:
            if child not in visited:
                visited.add(child)
                edges.append((parent, child))
                stack.append(
                    (child, iter(sorted(graph.adj[child], key=order.__getitem__)))
                )
                advanced = True
                break
        if not advanced:
            stack.pop()
    return edges


def _tree_edge_split(
    graph: nx.Graph, tree: nx.Graph, order: Dict[Node, int]
) -> Optional[Bisection]:
    """Best bisection obtained by deleting a single spanning-tree edge."""
    total = graph.number_of_nodes()
    best: Optional[Bisection] = None
    for edge in list(tree.edges()):
        tree.remove_edge(*edge)
        components = list(nx.connected_components(tree))
        tree.add_edge(*edge)
        if len(components) != 2:
            continue
        part_a, part_b = components
        candidate = _bisection_from_parts(graph, set(part_a), set(part_b), order)
        if best is None or abs(candidate.balance) < abs(best.balance):
            best = candidate
        if best.balance <= total % 2:
            break
    return best


def _refine_by_moving_boundary(
    graph: nx.Graph, bisection: Bisection, order: Dict[Node, int]
) -> Bisection:
    """Greedy local improvement: move boundary nodes from the big part to the small one.

    A node is moved only when both induced subgraphs stay connected, so the
    result is always a valid connected bisection at least as balanced as the
    input.
    """
    part_one = set(bisection.part_one)
    part_two = set(bisection.part_two)
    improved = True
    while improved and len(part_one) - len(part_two) >= 2:
        improved = False
        for a, b in _channel_edges(graph, part_one, part_two, order):
            candidate = a if a in part_one else b
            new_one = part_one - {candidate}
            new_two = part_two | {candidate}
            if not new_one:
                continue
            if nx.is_connected(graph.subgraph(new_one)) and nx.is_connected(
                graph.subgraph(new_two)
            ):
                part_one, part_two = new_one, new_two
                improved = True
                break
    return _bisection_from_parts(graph, part_one, part_two, order)


def balanced_connected_bisection(
    graph: nx.Graph, order: Optional[Dict[Node, int]] = None
) -> Bisection:
    """Cut a connected graph into two connected parts of near-equal size.

    The cut is found by deleting single edges of several spanning trees (BFS
    trees rooted at a few different nodes plus a DFS tree) and keeping the
    most balanced result, followed by a connectivity-preserving local
    improvement.  For trees this is exactly the optimal single-edge cut; for
    general bounded-degree graphs it comfortably achieves the ``s >= 1/k``
    guarantee of the appendix on all the architectures used in this project.

    ``order`` may supply an existing node-index table covering (a superset
    of) the graph's nodes — the bubble router passes its whole-graph table
    so the recursion does not re-``repr``-sort every subgraph.  Only the
    relative order of the graph's own nodes is used, so any consistent
    table yields the same cut as the freshly built default.
    """
    if graph.number_of_nodes() < 2:
        raise RoutingError("cannot bisect a graph with fewer than two nodes")
    if not nx.is_connected(graph):
        raise RoutingError("cannot bisect a disconnected graph")

    if order is None:
        order = node_index_table(graph.nodes())
    nodes = sorted(graph.nodes(), key=order.__getitem__)
    roots = [nodes[0], nodes[len(nodes) // 2], nodes[-1]]
    best: Optional[Bisection] = None
    seen_roots = set()
    for root in roots:
        if root in seen_roots:
            continue
        seen_roots.add(root)
        for tree_builder in (_bfs_tree_edges, _dfs_tree_edges):
            tree = nx.Graph(tree_builder(graph, root, order))
            tree.add_nodes_from(nodes)
            candidate = _tree_edge_split(graph, tree, order)
            if candidate is None:
                continue
            if best is None or abs(candidate.balance) < abs(best.balance):
                best = candidate
    if best is None:  # pragma: no cover - a connected graph always has a spanning tree
        raise RoutingError("failed to bisect the graph")
    return _refine_by_moving_boundary(graph, best, order)


def recursive_bisections(graph: nx.Graph) -> List[Bisection]:
    """All bisections performed by the full recursion (in discovery order)."""
    result: List[Bisection] = []
    stack = [graph]
    while stack:
        current = stack.pop()
        if current.number_of_nodes() < 2:
            continue
        bisection = balanced_connected_bisection(current)
        result.append(bisection)
        stack.append(graph.subgraph(bisection.part_one).copy())
        stack.append(graph.subgraph(bisection.part_two).copy())
    return result


def separability(graph: nx.Graph) -> float:
    """The separability parameter ``s`` achieved by the recursive bisection.

    Defined as the minimum, over every cut of the recursion, of the ratio of
    the smaller to the larger part.  Graphs with a single node have
    separability 1 by convention.
    """
    if graph.number_of_nodes() <= 1:
        return 1.0
    ratios = [bisection.ratio for bisection in recursive_bisections(graph)]
    return min(ratios) if ratios else 1.0


def degree_separability_bound(graph: nx.Graph) -> float:
    """The appendix's guaranteed lower bound ``s >= 1 / max_degree``."""
    degrees = [d for _, d in graph.degree()]
    max_degree = max(degrees) if degrees else 1
    return 1.0 / max(1, max_degree)
