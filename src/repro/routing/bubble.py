"""Recursive "water and air" SWAP routing (Section 5.2 of the paper).

Given an adjacency graph of fast interactions and a permutation of the
values stored on its nodes, build a circuit of SWAP *layers* (sets of
non-intersecting SWAPs, executable in parallel) that realises the
permutation.

The algorithm follows the paper:

1. Cut the graph into two connected, size-balanced subgraphs ``G1``/``G2``
   (:func:`repro.routing.separators.balanced_connected_bisection`).
2. Colour every token by the side its destination lies on, then move every
   token to its side: inside each side, tokens of the wrong colour "bubble"
   towards the root of a spanning tree rooted at the communication channel;
   the channel edge exchanges a wrong token of ``G1`` with a wrong token of
   ``G2`` whenever both roots hold one.  Each round of swaps forms one
   parallel layer.
3. Recurse independently on the two sides; their layers are merged
   position-wise because they act on disjoint nodes.

The implementation keeps the paper's practical relaxation ("in our
implementation we do not block the communication channel"), and adds the
*leaf–target value override* heuristic as an optional pre-pass: whenever a
leaf's desired final value sits on its only neighbour, swap it in and freeze
the leaf, shrinking the instance (the paper reports a 0–5% depth reduction).

The routine is fully deterministic and always terminates: every emitted swap
strictly decreases the potential "sum over wrong-side tokens of (tree depth
+ 1)", and the recursion only receives instances whose tokens already live
on the correct side.

Determinism contract
--------------------

Every choice the router makes — spanning-tree traversal order, channel-edge
selection, leaf processing order, subgraph construction — is resolved
through one :func:`repro.core._bitset.node_index_table` built at entry, so
the emitted layers are byte-identical across interpreter processes and
``PYTHONHASHSEED`` values.  In particular the router never iterates a plain
``set`` (or a networkx subgraph *view* over one, whose iteration order
follows the set's hash order) where the order can reach the output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import networkx as nx

from repro.core._bitset import node_index_table
from repro.exceptions import RoutingError
from repro.routing.permutation import (
    Permutation,
    complete_partial_permutation,
    required_permutation,
)
from repro.routing.separators import balanced_connected_bisection, bfs_tree_parents

Node = Hashable
Swap = Tuple[Node, Node]
Layer = List[Swap]


@dataclass
class RoutingResult:
    """Outcome of routing one permutation.

    Attributes
    ----------
    layers:
        Parallel SWAP layers, in execution order.  Every swap is an edge of
        the adjacency graph; swaps within one layer touch disjoint nodes.
    permutation:
        The full permutation that was realised (after completion of
        don't-care tokens).
    """

    layers: List[Layer]
    permutation: Permutation

    @property
    def depth(self) -> int:
        """Number of SWAP layers."""
        return len(self.layers)

    @property
    def num_swaps(self) -> int:
        """Total number of SWAP gates."""
        return sum(len(layer) for layer in self.layers)

    def all_swaps(self) -> List[Swap]:
        """All swaps flattened in execution order."""
        return [swap for layer in self.layers for swap in layer]


def _as_full_permutation(
    graph: nx.Graph,
    permutation: Union[Permutation, Mapping[Node, Node]],
) -> Permutation:
    """Normalise the input to a full permutation over the graph's nodes."""
    if isinstance(permutation, Permutation):
        if set(permutation.nodes) == set(graph.nodes()):
            return permutation
        return complete_partial_permutation(graph, permutation.as_dict())
    return complete_partial_permutation(graph, dict(permutation))


def _apply_layer(token_target: Dict[Node, Node], layer: Layer) -> None:
    """Swap token destinations along every edge of the layer."""
    for a, b in layer:
        token_target[a], token_target[b] = token_target[b], token_target[a]


def _verify_layers(graph: nx.Graph, layers: Sequence[Layer]) -> None:
    """Internal consistency check: swaps are graph edges and layer-disjoint."""
    for layer in layers:
        used: Set[Node] = set()
        for a, b in layer:
            if not graph.has_edge(a, b):
                raise RoutingError(f"swap ({a!r}, {b!r}) is not an edge of the graph")
            if a in used or b in used:
                raise RoutingError(f"layer reuses node in swap ({a!r}, {b!r})")
            used.update((a, b))


def route_permutation(
    graph: nx.Graph,
    permutation: Union[Permutation, Mapping[Node, Node]],
    leaf_override: bool = True,
    validate: bool = True,
) -> RoutingResult:
    """Realise a (possibly partial) node permutation as parallel SWAP layers.

    Parameters
    ----------
    graph:
        The adjacency graph of fast interactions.  Swaps are only placed on
        its edges.  The graph may be disconnected as long as every token's
        destination lies in its own component.
    permutation:
        Either a full :class:`~repro.routing.permutation.Permutation` over
        the graph's nodes, or a partial mapping ``source node -> destination
        node``; the partial form is completed with don't-care tokens staying
        as close to home as possible.
    leaf_override:
        Enable the leaf–target value override pre-pass.
    validate:
        Run internal consistency checks on the produced layers (cheap; keep
        on unless routing is in a tight inner loop).
    """
    if graph.number_of_nodes() == 0:
        return RoutingResult([], Permutation({}))

    order = node_index_table(graph.nodes())
    full = _as_full_permutation(graph, permutation)
    token_target: Dict[Node, Node] = full.as_dict()

    for source, target in token_target.items():
        if source == target:
            continue
        if not nx.has_path(graph, source, target):
            raise RoutingError(
                f"token at {source!r} cannot reach {target!r}: "
                "no path in the adjacency graph"
            )

    layers: List[Layer] = []
    frozen: Set[Node] = set()
    if leaf_override:
        layers.extend(_leaf_override_pass(graph, token_target, frozen, order))

    active_nodes = set(graph.nodes()) - frozen
    active = _canonical_subgraph(graph, active_nodes, order)
    component_layers: List[Layer] = []
    components = sorted(
        nx.connected_components(active),
        key=lambda component: min(order[node] for node in component),
    )
    for component in components:
        routed = _route_component(
            _canonical_subgraph(active, component, order), token_target, order
        )
        # Distinct components act on disjoint nodes, so their layer
        # sequences can run in parallel.
        component_layers = _merge_layer_sequences(component_layers, routed)
    layers.extend(component_layers)

    if validate:
        _verify_layers(graph, layers)
        remaining = [n for n, t in token_target.items() if t != n]
        if remaining:
            raise RoutingError(
                f"routing failed to deliver tokens on nodes {sorted(map(repr, remaining))}"
            )
    return RoutingResult(layers, full)


def _canonical_subgraph(
    graph: nx.Graph, nodes: Set[Node], order: Dict[Node, int]
) -> nx.Graph:
    """A deterministic induced-subgraph copy.

    ``graph.subgraph(node_set)`` yields a view whose iteration order can
    follow the *set*'s hash order, and ``.copy()`` freezes that order into
    the new graph's adjacency — making every later traversal depend on
    ``PYTHONHASHSEED``.  Rebuilding with nodes and edges inserted in
    node-index order makes the copy's iteration order canonical.
    """
    members = sorted(nodes, key=order.__getitem__)
    member_set = set(members)
    sub = nx.Graph()
    sub.add_nodes_from(members)
    for a in members:
        for b in sorted(graph.adj[a], key=order.__getitem__):
            if b in member_set and order[a] < order[b]:
                sub.add_edge(a, b)
    return sub


def _merge_layer_sequences(first: List[Layer], second: List[Layer]) -> List[Layer]:
    """Merge two layer sequences position-wise (they act on disjoint nodes)."""
    merged: List[Layer] = []
    for index in range(max(len(first), len(second))):
        layer: Layer = []
        if index < len(first):
            layer.extend(first[index])
        if index < len(second):
            layer.extend(second[index])
        merged.append(layer)
    return merged


def _leaf_override_pass(
    graph: nx.Graph,
    token_target: Dict[Node, Node],
    frozen: Set[Node],
    order: Dict[Node, int],
) -> List[Layer]:
    """The leaf–target value override heuristic.

    Repeatedly: freeze every leaf that already holds its destination value;
    and whenever a leaf's destination value sits on the leaf's unique active
    neighbour, swap it in (one layer can serve many leaves in parallel) and
    freeze the leaf.  Frozen leaves are excluded from the rest of the
    routing, shrinking the instance.
    """
    layers: List[Layer] = []
    while True:
        active = graph.subgraph(set(graph.nodes()) - frozen)
        progress = False

        # Freeze satisfied leaves first (no swaps needed).
        for node in list(active.nodes()):
            if active.degree(node) == 1 and token_target[node] == node:
                frozen.add(node)
                progress = True
        if progress:
            continue

        layer: Layer = []
        used: Set[Node] = set()
        for leaf in sorted(
            (n for n in active.nodes() if active.degree(n) == 1),
            key=order.__getitem__,
        ):
            if leaf in used:
                continue
            neighbours = list(active.neighbors(leaf))
            if len(neighbours) != 1:
                continue
            neighbour = neighbours[0]
            if neighbour in used:
                continue
            if token_target[neighbour] == leaf:
                layer.append((leaf, neighbour))
                used.update((leaf, neighbour))
        if not layer:
            break
        _apply_layer(token_target, layer)
        layers.append(layer)
        for leaf, _ in layer:
            frozen.add(leaf)
    return layers


def _route_component(
    graph: nx.Graph, token_target: Dict[Node, Node], order: Dict[Node, int]
) -> List[Layer]:
    """Recursive routing of a connected component (tokens stay inside it)."""
    n = graph.number_of_nodes()
    if n <= 1:
        return []
    if all(token_target[node] == node for node in graph.nodes()):
        return []
    if n == 2:
        a, b = sorted(graph.nodes(), key=order.__getitem__)
        if token_target[a] == b:
            layer = [(a, b)]
            _apply_layer(token_target, layer)
            return [layer]
        return []

    bisection = balanced_connected_bisection(graph, order)
    side_one: Set[Node] = set(bisection.part_one)
    side_two: Set[Node] = set(bisection.part_two)

    separation_layers = _separate_sides(
        graph, side_one, side_two, bisection.channel_edges, token_target, order
    )

    sub_one = _canonical_subgraph(graph, side_one, order)
    sub_two = _canonical_subgraph(graph, side_two, order)
    layers_one = _route_component(sub_one, token_target, order)
    layers_two = _route_component(sub_two, token_target, order)
    return separation_layers + _merge_layer_sequences(layers_one, layers_two)


def _spanning_tree_parents(
    graph: nx.Graph, nodes: Set[Node], root: Node, order: Dict[Node, int]
) -> Dict[Node, Node]:
    """Parent pointers of a BFS spanning tree of ``nodes`` rooted at ``root``.

    The BFS visits each node's neighbours in node-index order (shared
    traversal: :func:`repro.routing.separators.bfs_tree_parents`), so the
    tree — and hence every bubble trajectory — is independent of the
    adjacency dict's insertion order.
    """
    return bfs_tree_parents(graph, root, order, nodes=nodes)


def _depths_from_parents(parents: Dict[Node, Node], root: Node, nodes: Set[Node]) -> Dict[Node, int]:
    depths = {root: 0}
    for node in nodes:
        if node in depths:
            continue
        chain = []
        current = node
        while current not in depths:
            chain.append(current)
            current = parents[current]
        base = depths[current]
        for offset, member in enumerate(reversed(chain), start=1):
            depths[member] = base + offset
    return depths


def _separate_sides(
    graph: nx.Graph,
    side_one: Set[Node],
    side_two: Set[Node],
    channel_edges: Sequence[Swap],
    token_target: Dict[Node, Node],
    order: Dict[Node, int],
) -> List[Layer]:
    """Move every token to the side that contains its destination.

    Implements the bubble phase: wrong-side tokens rise towards the
    communication channel along a spanning tree of their side and cross over
    whenever both channel endpoints hold wrong-side tokens.
    """
    if not channel_edges:
        raise RoutingError("bisection produced no communication channel")
    # A single channel edge, as in the paper's analysis.
    # ``Bisection.channel_edges`` arrives canonically oriented
    # (lower-index endpoint first) and sorted by node index — see
    # ``repro.routing.separators._channel_edges`` — so the first edge is
    # the canonical minimum.
    channel = channel_edges[0]
    root_one = channel[0] if channel[0] in side_one else channel[1]
    root_two = channel[1] if channel[0] in side_one else channel[0]

    parents_one = _spanning_tree_parents(graph, side_one, root_one, order)
    parents_two = _spanning_tree_parents(graph, side_two, root_two, order)
    depths_one = _depths_from_parents(parents_one, root_one, side_one)
    depths_two = _depths_from_parents(parents_two, root_two, side_two)

    def wrong(node: Node) -> bool:
        target = token_target[node]
        if node in side_one:
            return target in side_two
        return target in side_one

    layers: List[Layer] = []
    max_iterations = 4 * graph.number_of_nodes() + 8
    for _ in range(max_iterations):
        wrong_nodes = [node for node in graph.nodes() if wrong(node)]
        if not wrong_nodes:
            break

        layer: Layer = []
        used: Set[Node] = set()

        # Rule 1: exchange across the communication channel when both
        # endpoints hold tokens destined for the other side.
        if wrong(root_one) and wrong(root_two):
            layer.append((root_one, root_two))
            used.update((root_one, root_two))

        # Rule 2: within each side, wrong tokens bubble one step towards the
        # root, passing right-side tokens downwards.  Deepest first.
        for side_nodes, parents, depths in (
            (side_one, parents_one, depths_one),
            (side_two, parents_two, depths_two),
        ):
            candidates = sorted(
                (node for node in side_nodes if node in parents),
                key=lambda node: (-depths[node], order[node]),
            )
            for child in candidates:
                parent = parents[child]
                if child in used or parent in used:
                    continue
                if wrong(child) and not wrong(parent):
                    layer.append((child, parent))
                    used.update((child, parent))

        if not layer:
            raise RoutingError(
                "bubble separation stalled; this indicates an inconsistent "
                "bisection or token assignment"
            )
        _apply_layer(token_target, layer)
        layers.append(layer)
    else:
        raise RoutingError("bubble separation exceeded its iteration budget")
    return layers


def route_between_placements(
    graph: nx.Graph,
    placement_from: Mapping[Hashable, Node],
    placement_to: Mapping[Hashable, Node],
    leaf_override: bool = True,
) -> RoutingResult:
    """Route the permutation that converts one placement into another."""
    partial = required_permutation(placement_from, placement_to)
    return route_permutation(graph, partial, leaf_override=leaf_override)
