"""Greedy token-swapping baseline router.

Serves as a comparison point for the paper's recursive bubble router.  The
algorithm is a deterministic two-phase greedy:

1. *Happy swaps* — while some edge swap moves **both** of its tokens strictly
   closer to their destinations, perform it (bounded: every happy swap
   reduces the total displacement by two).
2. *Leaf fixing* — when no happy swap exists, satisfy one spanning-tree leaf:
   walk the token destined for the deepest unfixed leaf to it along the tree
   path and retire that leaf from further consideration.  Because only
   leaves are retired, the unfixed nodes always induce a connected subtree,
   so the walk never needs a retired node and the phase terminates after at
   most ``n`` retirements of at most ``diameter`` swaps each.

The combination is guaranteed to terminate with ``O(n^2)`` swaps on any
connected graph (per connected component).  The sequential swap list is then
packed into parallel layers with the usual ASAP rule.  The greedy router
often uses fewer total swaps than the bubble router on small instances but
has no linear-depth guarantee; the ablation benchmark
``benchmarks/test_ablation_router_comparison.py`` quantifies the trade-off.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Set, Tuple, Union

import networkx as nx

from repro.core._bitset import node_index_table
from repro.exceptions import RoutingError
from repro.routing.bubble import Layer, RoutingResult, Swap, _as_full_permutation
from repro.routing.permutation import Permutation

Node = Hashable


def _happy_swaps(
    graph: nx.Graph,
    token_target: Dict[Node, Node],
    distances: Dict[Node, Dict[Node, int]],
    swaps: List[Swap],
) -> None:
    """Perform happy swaps (both tokens strictly closer) until none remain."""
    improved = True
    while improved:
        improved = False
        for a, b in graph.edges():
            target_a = token_target[a]
            target_b = token_target[b]
            if target_a == a and target_b == b:
                continue
            gain_a = distances[a][target_a] - distances[b][target_a]
            gain_b = distances[b][target_b] - distances[a][target_b]
            if gain_a > 0 and gain_b > 0:
                token_target[a], token_target[b] = target_b, target_a
                swaps.append((a, b))
                improved = True


def _fix_component(
    graph: nx.Graph,
    component: Set[Node],
    token_target: Dict[Node, Node],
    distances: Dict[Node, Dict[Node, int]],
    swaps: List[Swap],
) -> None:
    """Deliver every token of one connected component."""
    for node in component:
        target = token_target[node]
        if target not in component:
            raise RoutingError(
                f"token at {node!r} cannot reach {target!r} in the graph"
            )

    sub = graph.subgraph(component)
    node_order = node_index_table(component)
    root = min(component, key=node_order.__getitem__)
    tree = nx.Graph(nx.bfs_tree(sub, root).edges())
    tree.add_nodes_from(component)
    depth = nx.single_source_shortest_path_length(tree, root)
    remaining: Set[Node] = set(component)

    while len(remaining) > 1:
        _happy_swaps(sub.subgraph(remaining), token_target, distances, swaps)

        active_tree = tree.subgraph(remaining)
        leaves = [
            node for node in remaining if active_tree.degree(node) <= 1
        ]
        # Deepest leaf first gives a deterministic, roughly balanced order.
        leaf = max(leaves, key=lambda node: (depth[node], node_order[node]))
        if token_target[leaf] != leaf:
            holder = next(
                node for node in remaining if token_target[node] == leaf
            )
            path = nx.shortest_path(active_tree, holder, leaf)
            for current, nxt in zip(path, path[1:]):
                token_target[current], token_target[nxt] = (
                    token_target[nxt],
                    token_target[current],
                )
                swaps.append((current, nxt))
        remaining.remove(leaf)


def greedy_token_swapping(
    graph: nx.Graph,
    permutation: Union[Permutation, Mapping[Node, Node]],
) -> List[Swap]:
    """Sequential swap list realising ``permutation`` on ``graph``.

    Every swap is a graph edge; the list is guaranteed to deliver every
    token (see the module docstring for the termination argument).
    """
    full = _as_full_permutation(graph, permutation)
    token_target: Dict[Node, Node] = full.as_dict()
    distances = {
        source: dict(lengths)
        for source, lengths in nx.all_pairs_shortest_path_length(graph)
    }
    swaps: List[Swap] = []
    for component in nx.connected_components(graph):
        _fix_component(graph, set(component), token_target, distances, swaps)

    undelivered = [node for node, target in token_target.items() if node != target]
    if undelivered:  # pragma: no cover - the algorithm always delivers
        raise RoutingError(f"tokens not delivered on nodes {undelivered!r}")
    return swaps


def pack_layers(swaps: List[Swap]) -> List[Layer]:
    """Greedily pack a sequential swap list into parallel layers.

    A swap is placed in the earliest layer after every earlier swap that
    shares a node with it — the standard ASAP list-scheduling rule, which
    preserves the sequential semantics.
    """
    node_layer: Dict[Node, int] = {}
    layers: List[Layer] = []
    for a, b in swaps:
        earliest = max(node_layer.get(a, -1), node_layer.get(b, -1)) + 1
        while len(layers) <= earliest:
            layers.append([])
        layers[earliest].append((a, b))
        node_layer[a] = earliest
        node_layer[b] = earliest
    return layers


def route_permutation_greedy(
    graph: nx.Graph,
    permutation: Union[Permutation, Mapping[Node, Node]],
) -> RoutingResult:
    """Greedy token-swapping router with the same interface as the bubble router."""
    full = _as_full_permutation(graph, permutation)
    swaps = greedy_token_swapping(graph, full)
    return RoutingResult(pack_layers(swaps), full)
