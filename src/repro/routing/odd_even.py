"""Odd–even transposition routing on linear nearest-neighbour chains.

The paper motivates its general routing algorithm by noting that the chain
nearest-neighbour architecture is the most studied special case.  On a chain
there is a classical exact technique: *odd–even transposition sort*.  In
round ``r`` one compares (and, when the destination order demands it, swaps)
every adjacent pair starting at an even or odd position alternately; after
at most ``n`` rounds every token sits at its destination.  This gives a
permutation routing with depth at most ``n`` — within a small constant of
optimal, and better in practice than the general bubble router on chains.

The router is used as an additional baseline in the router-comparison
benchmark and is exposed for users who target genuinely linear devices.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Union

import networkx as nx

from repro.core._bitset import canonical_min
from repro.exceptions import RoutingError
from repro.routing.bubble import Layer, RoutingResult, Swap, _as_full_permutation
from repro.routing.permutation import Permutation

Node = Hashable


def chain_order_from_graph(graph: nx.Graph) -> List[Node]:
    """Recover the left-to-right node order of a path graph.

    Raises :class:`~repro.exceptions.RoutingError` when the graph is not a
    simple path (that is the only topology this router supports).
    """
    if graph.number_of_nodes() == 0:
        return []
    if graph.number_of_nodes() == 1:
        return list(graph.nodes())
    if not nx.is_connected(graph):
        raise RoutingError("odd-even routing needs a connected chain")
    degrees = dict(graph.degree())
    endpoints = [node for node, degree in degrees.items() if degree == 1]
    if len(endpoints) != 2 or any(degree > 2 for degree in degrees.values()):
        raise RoutingError("odd-even routing only supports path (chain) graphs")
    start = canonical_min(endpoints)
    order = [start]
    previous = None
    current = start
    while len(order) < graph.number_of_nodes():
        neighbours = [n for n in graph.neighbors(current) if n != previous]
        if not neighbours:  # pragma: no cover - impossible on a path
            raise RoutingError("failed to traverse the chain")
        previous, current = current, neighbours[0]
        order.append(current)
    return order


def route_permutation_odd_even(
    graph: nx.Graph,
    permutation: Union[Permutation, Mapping[Node, Node]],
) -> RoutingResult:
    """Route a permutation on a chain with odd–even transposition rounds.

    The permutation may be partial; don't-care tokens are completed exactly
    as in the other routers.  Depth is at most the number of chain nodes.
    """
    full = _as_full_permutation(graph, permutation)
    order = chain_order_from_graph(graph)
    position_of = {node: index for index, node in enumerate(order)}

    # destination_rank[i] = chain position the token currently at order[i]
    # must reach.
    destination_rank: List[int] = [
        position_of[full[node]] for node in order
    ]

    layers: List[Layer] = []
    num_nodes = len(order)
    for round_index in range(num_nodes):
        start = round_index % 2
        layer: Layer = []
        for left in range(start, num_nodes - 1, 2):
            right = left + 1
            if destination_rank[left] > destination_rank[right]:
                destination_rank[left], destination_rank[right] = (
                    destination_rank[right],
                    destination_rank[left],
                )
                layer.append((order[left], order[right]))
        if layer:
            layers.append(layer)
        if all(destination_rank[i] == i for i in range(num_nodes)):
            break
    if any(destination_rank[i] != i for i in range(num_nodes)):  # pragma: no cover
        raise RoutingError("odd-even transposition failed to sort the tokens")
    return RoutingResult(layers, full)
