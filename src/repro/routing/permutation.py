"""Permutations of qubit values over physical nodes.

Between two consecutive subcircuits the placer must move every logical
qubit's value from its old physical node (placement ``P_i``) to its new one
(placement ``P_{i+1}``).  That movement is a *partial permutation* of the
physical nodes: nodes holding a logical qubit have a definite destination,
nodes holding no logical qubit ("don't-care" tokens) may end up anywhere.

:class:`Permutation` stores the full (completed) permutation; helpers build
the partial requirement from two placements and complete it over a given
adjacency graph while keeping don't-care tokens as close to home as possible.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.core._bitset import node_index_table
from repro.exceptions import RoutingError

Node = Hashable


class Permutation:
    """A bijection of a finite node set onto itself.

    ``mapping[v]`` is the node where the token currently sitting on ``v``
    must end up.
    """

    def __init__(self, mapping: Mapping[Node, Node]) -> None:
        sources = set(mapping.keys())
        targets = set(mapping.values())
        if sources != targets:
            raise RoutingError(
                "permutation must be a bijection of its node set onto itself; "
                f"sources {sorted(map(repr, sources - targets))} and targets "
                f"{sorted(map(repr, targets - sources))} do not match"
            )
        self._mapping: Dict[Node, Node] = dict(mapping)

    # -- construction ----------------------------------------------------------

    @classmethod
    def identity(cls, nodes: Iterable[Node]) -> "Permutation":
        """The identity permutation on ``nodes``."""
        return cls({node: node for node in nodes})

    @classmethod
    def from_cycle(cls, cycle: Sequence[Node], nodes: Iterable[Node]) -> "Permutation":
        """A single cycle ``cycle[0] -> cycle[1] -> ... -> cycle[0]`` over ``nodes``."""
        mapping = {node: node for node in nodes}
        for index, node in enumerate(cycle):
            mapping[node] = cycle[(index + 1) % len(cycle)]
        return cls(mapping)

    # -- queries ----------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[Node, ...]:
        """The node set, in insertion order."""
        return tuple(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def __getitem__(self, node: Node) -> Node:
        return self._mapping[node]

    def __contains__(self, node: Node) -> bool:
        return node in self._mapping

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return self._mapping == other._mapping

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        moved = {s: t for s, t in self._mapping.items() if s != t}
        return f"Permutation({moved!r})"

    def as_dict(self) -> Dict[Node, Node]:
        """A copy of the underlying mapping."""
        return dict(self._mapping)

    def is_identity(self) -> bool:
        """Whether every token already sits at its destination."""
        return all(source == target for source, target in self._mapping.items())

    def displaced_nodes(self) -> List[Node]:
        """Nodes whose token must move."""
        return [source for source, target in self._mapping.items() if source != target]

    def cycles(self, include_fixed_points: bool = False) -> List[List[Node]]:
        """Cycle decomposition of the permutation."""
        seen = set()
        cycles: List[List[Node]] = []
        for start in self._mapping:
            if start in seen:
                continue
            cycle = [start]
            seen.add(start)
            current = self._mapping[start]
            while current != start:
                cycle.append(current)
                seen.add(current)
                current = self._mapping[current]
            if len(cycle) > 1 or include_fixed_points:
                cycles.append(cycle)
        return cycles

    def num_non_fixed(self) -> int:
        """Number of displaced tokens."""
        return len(self.displaced_nodes())

    # -- algebra -----------------------------------------------------------------

    def inverse(self) -> "Permutation":
        """The inverse permutation."""
        return Permutation({target: source for source, target in self._mapping.items()})

    def compose(self, other: "Permutation") -> "Permutation":
        """The permutation "apply ``self`` first, then ``other``"."""
        if set(self._mapping) != set(other._mapping):
            raise RoutingError("cannot compose permutations over different node sets")
        return Permutation(
            {node: other[self[node]] for node in self._mapping}
        )

    def apply_to_assignment(self, assignment: Mapping[Hashable, Node]) -> Dict[Hashable, Node]:
        """Push an assignment ``key -> node`` through the permutation.

        If a logical qubit sits on node ``v`` before routing, it sits on
        ``self[v]`` after routing.
        """
        return {key: self._mapping.get(node, node) for key, node in assignment.items()}


def required_permutation(
    placement_from: Mapping[Hashable, Node],
    placement_to: Mapping[Hashable, Node],
) -> Dict[Node, Node]:
    """The partial node permutation turning one placement into another.

    For every logical qubit ``q`` placed at ``placement_from[q]`` and wanted
    at ``placement_to[q]``, the token at the former node must be delivered to
    the latter node.  Qubits present in only one of the two placements are
    ignored (their value is not live across the boundary).
    """
    partial: Dict[Node, Node] = {}
    for qubit, source in placement_from.items():
        if qubit not in placement_to:
            continue
        target = placement_to[qubit]
        if source in partial and partial[source] != target:
            raise RoutingError(
                f"conflicting destinations for the token at {source!r}"
            )
        partial[source] = target
    targets = list(partial.values())
    if len(set(targets)) != len(targets):
        raise RoutingError("two tokens require the same destination node")
    return partial


def complete_partial_permutation(
    graph: nx.Graph,
    partial: Mapping[Node, Node],
) -> Permutation:
    """Extend a partial node permutation to a full one over ``graph``'s nodes.

    Don't-care tokens (tokens on nodes without an entry in ``partial``) are
    assigned to the remaining free destination nodes.  The completion keeps a
    don't-care token in place whenever its own node is free, and otherwise
    sends it to the nearest free node (by unweighted graph distance), which
    keeps the extra routing work small.
    """
    nodes = list(graph.nodes())
    node_set = set(nodes)
    for source, target in partial.items():
        if source not in node_set or target not in node_set:
            raise RoutingError(
                f"partial permutation references node(s) outside the graph: "
                f"{source!r} -> {target!r}"
            )

    mapping: Dict[Node, Node] = dict(partial)
    used_targets = set(mapping.values())
    free_targets = [node for node in nodes if node not in used_targets]
    unassigned_sources = [node for node in nodes if node not in mapping]

    # First pass: keep don't-care tokens in place when possible.
    remaining_sources = []
    free_target_set = set(free_targets)
    for source in unassigned_sources:
        if source in free_target_set:
            mapping[source] = source
            free_target_set.remove(source)
        else:
            remaining_sources.append(source)

    # Second pass: nearest free node by BFS distance.
    node_order = node_index_table(nodes)
    for source in remaining_sources:
        if not free_target_set:
            raise RoutingError("ran out of free destination nodes")  # pragma: no cover
        distances = nx.single_source_shortest_path_length(graph, source)
        best = min(
            free_target_set,
            key=lambda target: (distances.get(target, float("inf")), node_order[target]),
        )
        mapping[source] = best
        free_target_set.remove(best)

    return Permutation(mapping)


def permutation_between_placements(
    graph: nx.Graph,
    placement_from: Mapping[Hashable, Node],
    placement_to: Mapping[Hashable, Node],
) -> Permutation:
    """Full permutation over ``graph`` realising ``placement_from -> placement_to``."""
    return complete_partial_permutation(
        graph, required_permutation(placement_from, placement_to)
    )
