"""Synthetic physical environments (chains, rings, grids, complete graphs).

The scalability experiment of the paper (Table 4) uses a linear
nearest-neighbour architecture with a uniform interaction delay of ``0.001``
seconds per 90-degree two-qubit rotation — "a 1 kHz quantum processor".
These generators produce such environments for arbitrary sizes, plus a few
other standard topologies that are useful for routing experiments and tests.

All generated environments use integer node labels ``0..n-1`` and express
delays in units of ``1e-4`` seconds so that they compose with the NMR
molecule data set; the 1 kHz chain therefore has pair delay 10 units.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.exceptions import EnvironmentError_
from repro.hardware.environment import PhysicalEnvironment
from repro.registry import ENVIRONMENTS

#: Pair delay (in 1e-4 s units) of the paper's "1 kHz" processor: 0.001 s.
KILOHERTZ_PAIR_DELAY = 10.0

#: Single-qubit delay used by the synthetic architectures; single-qubit
#: pulses are much faster than two-qubit interactions.
DEFAULT_SINGLE_QUBIT_DELAY = 1.0


def _check_size(num_qubits: int, minimum: int = 2) -> None:
    if num_qubits < minimum:
        raise EnvironmentError_(
            f"architecture needs at least {minimum} qubits, got {num_qubits}"
        )


def linear_chain(
    num_qubits: int,
    pair_delay: float = KILOHERTZ_PAIR_DELAY,
    single_qubit_delay: float = DEFAULT_SINGLE_QUBIT_DELAY,
    slow_pair_delay: float = math.inf,
) -> PhysicalEnvironment:
    """Linear nearest-neighbour chain ``0 - 1 - ... - (n-1)``.

    Non-neighbouring pairs get ``slow_pair_delay`` (infinite by default: they
    simply cannot interact directly, which is the usual chain model).
    """
    _check_size(num_qubits)
    single = {i: single_qubit_delay for i in range(num_qubits)}
    pairs = {(i, i + 1): pair_delay for i in range(num_qubits - 1)}
    return PhysicalEnvironment(
        single,
        pairs,
        default_pair_delay=slow_pair_delay,
        name=f"chain-{num_qubits}",
    )


def ring(
    num_qubits: int,
    pair_delay: float = KILOHERTZ_PAIR_DELAY,
    single_qubit_delay: float = DEFAULT_SINGLE_QUBIT_DELAY,
) -> PhysicalEnvironment:
    """Cycle architecture ``0 - 1 - ... - (n-1) - 0``."""
    _check_size(num_qubits, minimum=3)
    single = {i: single_qubit_delay for i in range(num_qubits)}
    pairs = {(i, (i + 1) % num_qubits): pair_delay for i in range(num_qubits)}
    return PhysicalEnvironment(
        single, pairs, name=f"ring-{num_qubits}"
    )


def grid(
    rows: int,
    cols: int,
    pair_delay: float = KILOHERTZ_PAIR_DELAY,
    single_qubit_delay: float = DEFAULT_SINGLE_QUBIT_DELAY,
) -> PhysicalEnvironment:
    """2D lattice architecture with ``rows x cols`` qubits.

    Node ``(r, c)`` is labelled ``r * cols + c``; edges connect horizontal and
    vertical neighbours.  2D lattices have separability ``s >= 1/2`` which is
    the regime the routing depth bound of the paper targets.
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise EnvironmentError_("grid needs at least two qubits")
    single = {r * cols + c: single_qubit_delay for r in range(rows) for c in range(cols)}
    pairs: Dict[Tuple[int, int], float] = {}
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                pairs[(node, node + 1)] = pair_delay
            if r + 1 < rows:
                pairs[(node, node + cols)] = pair_delay
    return PhysicalEnvironment(single, pairs, name=f"grid-{rows}x{cols}")


def complete(
    num_qubits: int,
    pair_delay: float = KILOHERTZ_PAIR_DELAY,
    single_qubit_delay: float = DEFAULT_SINGLE_QUBIT_DELAY,
) -> PhysicalEnvironment:
    """All-to-all architecture: every pair interacts with the same delay.

    This is the idealised abstract model where placement does not matter;
    useful as a control in experiments and as a sanity check in tests.
    """
    _check_size(num_qubits)
    single = {i: single_qubit_delay for i in range(num_qubits)}
    pairs = {
        (i, j): pair_delay
        for i in range(num_qubits)
        for j in range(i + 1, num_qubits)
    }
    return PhysicalEnvironment(single, pairs, name=f"complete-{num_qubits}")


def star(
    num_qubits: int,
    pair_delay: float = KILOHERTZ_PAIR_DELAY,
    single_qubit_delay: float = DEFAULT_SINGLE_QUBIT_DELAY,
) -> PhysicalEnvironment:
    """Star architecture: qubit 0 is coupled to every other qubit.

    A maximal-degree topology; useful to exercise the well-separability
    theorem's worst case (``s = 1/k`` for maximal degree ``k``).
    """
    _check_size(num_qubits)
    single = {i: single_qubit_delay for i in range(num_qubits)}
    pairs = {(0, i): pair_delay for i in range(1, num_qubits)}
    return PhysicalEnvironment(single, pairs, name=f"star-{num_qubits}")


def heavy_hex(
    distance: int,
    pair_delay: float = KILOHERTZ_PAIR_DELAY,
    single_qubit_delay: float = DEFAULT_SINGLE_QUBIT_DELAY,
) -> PhysicalEnvironment:
    """A small heavy-hexagon-like lattice (degree at most 3).

    Constructed as a ``distance x distance`` grid whose horizontal edges are
    subdivided by an extra qubit, giving a bounded-degree sparse topology of
    the kind used by modern superconducting devices.  Included as an extra
    architecture for routing and scalability experiments beyond the paper.
    """
    if distance < 2:
        raise EnvironmentError_("heavy_hex needs distance >= 2")
    single: Dict[int, float] = {}
    pairs: Dict[Tuple[int, int], float] = {}
    next_label = 0

    def new_node() -> int:
        nonlocal next_label
        label = next_label
        next_label += 1
        single[label] = single_qubit_delay
        return label

    grid_nodes = [[new_node() for _ in range(distance)] for _ in range(distance)]
    for r in range(distance):
        for c in range(distance):
            node = grid_nodes[r][c]
            if c + 1 < distance:
                bridge = new_node()
                pairs[(node, bridge)] = pair_delay
                pairs[(bridge, grid_nodes[r][c + 1])] = pair_delay
            if r + 1 < distance:
                pairs[(node, grid_nodes[r + 1][c])] = pair_delay
    return PhysicalEnvironment(single, pairs, name=f"heavy-hex-{distance}")


ENVIRONMENTS.add("chain", linear_chain, min_params=1,
                 description="linear nearest-neighbour chain of N qubits")
ENVIRONMENTS.add("ring", ring, min_params=1,
                 description="cycle architecture of N qubits")
ENVIRONMENTS.add("grid", grid, min_params=2,
                 description="NxM 2D lattice")
ENVIRONMENTS.add("complete", complete, min_params=1,
                 description="all-to-all architecture of N qubits")
ENVIRONMENTS.add("star", star, min_params=1,
                 description="star architecture of N qubits")
ENVIRONMENTS.add("heavy-hex", heavy_hex, min_params=1,
                 description="heavy-hexagon-like lattice of distance N")
