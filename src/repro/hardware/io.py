"""JSON serialization of physical environments.

The on-disk format is a single JSON object::

    {
      "name": "acetyl chloride",
      "time_unit_seconds": 1e-4,
      "default_pair_delay": 5000.0,          // or "inf"
      "nodes": {"M": 8.0, "C1": 8.0, "C2": 1.0},
      "pairs": [["M", "C1", 38.0], ["C1", "C2", 89.0], ["M", "C2", 672.0]]
    }

Node labels are stored as strings; integer-looking labels are converted back
to integers on load so that synthetic architectures round-trip.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Union

from repro.core._bitset import node_index_table
from repro.exceptions import SerializationError
from repro.hardware.environment import Node, PhysicalEnvironment


def _label_to_json(node: Node) -> Union[str, int]:
    """Represent a node label in JSON (ints stay ints, everything else str)."""
    if isinstance(node, bool):
        raise SerializationError("boolean node labels are not supported")
    if isinstance(node, int):
        return node
    return str(node)


def _label_from_json(value: Any) -> Node:
    """Parse a node label back, converting integer-looking strings to ints."""
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return value
    raise SerializationError(f"unsupported node label {value!r} in environment file")


def to_dict(environment: PhysicalEnvironment) -> Dict[str, Any]:
    """Convert an environment to a JSON-serialisable dictionary."""
    default = environment.default_pair_delay
    pairs = environment.explicit_pairs()
    pair_order = node_index_table(pairs)
    return {
        "name": environment.name,
        "time_unit_seconds": environment.time_unit_seconds,
        "default_pair_delay": "inf" if math.isinf(default) else default,
        "nodes": {
            str(_label_to_json(node)): environment.single_qubit_delay(node)
            for node in environment.nodes
        },
        "pairs": [
            [_label_to_json(a), _label_to_json(b), delay]
            for (a, b), delay in sorted(
                pairs.items(), key=lambda item: pair_order[item[0]]
            )
        ],
    }


def from_dict(data: Dict[str, Any]) -> PhysicalEnvironment:
    """Build an environment from a dictionary produced by :func:`to_dict`."""
    try:
        raw_nodes = data["nodes"]
        raw_pairs = data.get("pairs", [])
    except (TypeError, KeyError) as exc:
        raise SerializationError(f"malformed environment data: {exc}") from exc

    def parse_node_key(key: str) -> Node:
        # Node keys in the "nodes" mapping are always strings in JSON;
        # convert integer-looking keys back to integers.
        if isinstance(key, str) and (key.isdigit() or (key.startswith("-") and key[1:].isdigit())):
            return int(key)
        return _label_from_json(key)

    single = {parse_node_key(key): float(delay) for key, delay in raw_nodes.items()}

    pairs = {}
    for entry in raw_pairs:
        if len(entry) != 3:
            raise SerializationError(f"malformed pair entry {entry!r}")
        a, b, delay = entry
        pairs[(_label_from_json(a), _label_from_json(b))] = float(delay)

    default = data.get("default_pair_delay", "inf")
    if isinstance(default, str):
        if default.lower() not in {"inf", "infinity"}:
            raise SerializationError(f"unsupported default_pair_delay {default!r}")
        default_value = math.inf
    else:
        default_value = float(default)

    return PhysicalEnvironment(
        single,
        pairs,
        default_pair_delay=default_value,
        name=str(data.get("name", "environment")),
        time_unit_seconds=float(data.get("time_unit_seconds", 1e-4)),
    )


def dumps(environment: PhysicalEnvironment, indent: int = 2) -> str:
    """Serialize an environment to a JSON string."""
    return json.dumps(to_dict(environment), indent=indent, sort_keys=True)


def loads(text: str) -> PhysicalEnvironment:
    """Parse an environment from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid environment JSON: {exc}") from exc
    return from_dict(data)


def save(environment: PhysicalEnvironment, path: str) -> None:
    """Write an environment to a JSON file (crash-safe: temp file + rename)."""
    # Imported here: analysis.serialization transitively imports repro.hardware.
    from repro.analysis.serialization import atomic_write_text

    atomic_write_text(path, dumps(environment))


def load(path: str) -> PhysicalEnvironment:
    """Read an environment from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
