"""Building environments from spectrometer calibration data.

Experimentalists characterise a molecule by chemical shifts and scalar
(J-)coupling constants in hertz, not by 90-degree-pulse delays.  This module
converts such calibration tables into the
:class:`~repro.hardware.environment.PhysicalEnvironment` delay form used by
the placer, following the paper's convention:

* delays are expressed in units of ``1e-4`` seconds and rounded to integers
  ("The delays are measured in terms of 1/10000 sec, and are rounded to keep
  the numbers integer");
* a 90-degree ``ZZ`` rotation under a scalar coupling of ``J`` hertz takes
  ``1 / (4 J)`` seconds of free evolution, so its delay is ``10^4 / (4 J)``
  units;
* single-qubit 90-degree pulses are specified directly by their duration in
  microseconds (typical hard pulses are 5–20 us).

Couplings below ``min_coupling_hz`` (default 0.2 Hz — the paper's "seen as
noise" scale) are treated as unusable and receive ``unusable_delay``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.exceptions import EnvironmentError_
from repro.hardware.environment import Node, PhysicalEnvironment

#: Delay units per second in the paper's convention (1e-4 s per unit).
UNITS_PER_SECOND = 10_000.0

#: Couplings weaker than this are effectively noise (paper, Section 1).
DEFAULT_MIN_COUPLING_HZ = 0.2


def coupling_to_delay(coupling_hz: float) -> float:
    """Delay (in 1e-4 s units) of a 90-degree ZZ rotation under ``coupling_hz``.

    The free-evolution time for a ``ZZ(pi/2)`` rotation under an Ising
    coupling of ``J`` hertz is ``1 / (4 |J|)`` seconds.
    """
    if coupling_hz == 0:
        raise EnvironmentError_("cannot convert a zero coupling to a delay")
    seconds = 1.0 / (4.0 * abs(coupling_hz))
    return max(1.0, round(seconds * UNITS_PER_SECOND))


def pulse_to_delay(pulse_microseconds: float) -> float:
    """Delay (in 1e-4 s units) of a single-qubit pulse given in microseconds."""
    if pulse_microseconds <= 0:
        raise EnvironmentError_("pulse durations must be positive")
    return max(1.0, round(pulse_microseconds * 1e-6 * UNITS_PER_SECOND))


def environment_from_couplings(
    pulse_durations_us: Mapping[Node, float],
    couplings_hz: Mapping[Tuple[Node, Node], float],
    name: str = "calibrated molecule",
    min_coupling_hz: float = DEFAULT_MIN_COUPLING_HZ,
    unusable_delay: Optional[float] = None,
) -> PhysicalEnvironment:
    """Build a :class:`PhysicalEnvironment` from spectrometer calibration data.

    Parameters
    ----------
    pulse_durations_us:
        90-degree single-qubit pulse duration per nucleus, in microseconds.
        The keys define the qubit set.
    couplings_hz:
        Scalar coupling constants per nucleus pair, in hertz (signs are
        ignored — only the magnitude sets the interaction speed).
    min_coupling_hz:
        Couplings weaker than this are dropped (treated as unusable).
    unusable_delay:
        Delay assigned to dropped and unspecified pairs; defaults to the
        delay of a coupling at ``min_coupling_hz``.
    """
    if not pulse_durations_us:
        raise EnvironmentError_("at least one nucleus is required")
    if min_coupling_hz <= 0:
        raise EnvironmentError_("min_coupling_hz must be positive")

    single = {
        node: pulse_to_delay(duration)
        for node, duration in pulse_durations_us.items()
    }

    if unusable_delay is None:
        unusable_delay = coupling_to_delay(min_coupling_hz)

    pairs: Dict[Tuple[Node, Node], float] = {}
    for (a, b), coupling in couplings_hz.items():
        if a not in single or b not in single:
            raise EnvironmentError_(
                f"coupling ({a!r}, {b!r}) references an unknown nucleus"
            )
        if abs(coupling) < min_coupling_hz:
            continue
        pairs[(a, b)] = coupling_to_delay(coupling)

    return PhysicalEnvironment(
        single,
        pairs,
        default_pair_delay=unusable_delay,
        name=name,
    )


def acetyl_chloride_couplings_example() -> PhysicalEnvironment:
    """A calibrated-input example approximating the Figure-1 molecule.

    The coupling constants are chosen so the resulting delays are close to
    the exact Figure-1 values (38 / 89 / 672 units); used in tests and in the
    documentation to demonstrate the calibration workflow.
    """
    return environment_from_couplings(
        pulse_durations_us={"M": 800.0, "C1": 800.0, "C2": 100.0},
        couplings_hz={
            ("M", "C1"): 65.8,
            ("C1", "C2"): 28.1,
            ("M", "C2"): 3.7,
        },
        name="acetyl chloride (calibrated)",
    )
