"""Physical environments: weighted graphs of physical qubits.

Definition 1 of the paper: a physical environment (molecule) is a complete
non-oriented graph over a finite set of vertices (nuclei) with non-negative
edge weights.  ``W(v_i, v_j)`` for ``i != j`` is the delay needed to apply a
fixed-angle (90-degree) two-qubit interaction between the two nuclei, and
``W(v_i, v_i)`` is the delay of a fixed-angle single-qubit rotation on that
nucleus.  All delays are expressed in a single *time unit* (the NMR data set
uses ``1e-4`` seconds per unit, matching the paper's tables).

The placement algorithm never works directly on the complete graph; it first
extracts the *adjacency graph* of "fast" interactions, i.e. the pairs whose
delay is at most a chosen ``Threshold`` (see
:mod:`repro.hardware.threshold_graph`).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from repro.exceptions import EnvironmentError_

Node = Hashable
Pair = Tuple[Node, Node]


def _canonical_pair(a: Node, b: Node) -> Pair:
    """Return an unordered pair in a deterministic canonical order."""
    return (a, b) if repr(a) <= repr(b) else (b, a)


class PhysicalEnvironment:
    """A complete weighted graph of physical qubits (nuclei).

    Parameters
    ----------
    single_qubit_delays:
        Mapping ``node -> delay`` of a 90-degree single-qubit pulse on each
        nucleus.  The keys define the node set.
    pair_delays:
        Mapping ``(node_a, node_b) -> delay`` of a 90-degree two-qubit
        interaction.  Pairs are unordered; missing pairs fall back to
        ``default_pair_delay``.
    default_pair_delay:
        Delay assumed for pairs without an explicit entry.  ``math.inf``
        (the default) models interactions that are effectively unusable —
        they will never be below any finite threshold, and using them in a
        schedule yields an infinite runtime, which keeps such placements from
        ever being selected.
    name:
        Human-readable environment name used in reports.
    time_unit_seconds:
        Physical duration of one delay unit (``1e-4`` s for the NMR data).
    """

    def __init__(
        self,
        single_qubit_delays: Mapping[Node, float],
        pair_delays: Mapping[Tuple[Node, Node], float],
        default_pair_delay: float = math.inf,
        name: str = "environment",
        time_unit_seconds: float = 1e-4,
    ) -> None:
        if not single_qubit_delays:
            raise EnvironmentError_("an environment needs at least one node")
        self.name = str(name)
        self.time_unit_seconds = float(time_unit_seconds)
        self._nodes: Tuple[Node, ...] = tuple(single_qubit_delays.keys())
        self._node_set: FrozenSet[Node] = frozenset(self._nodes)
        if len(self._node_set) != len(self._nodes):
            raise EnvironmentError_("duplicate node labels in the environment")

        self._single: Dict[Node, float] = {}
        for node, delay in single_qubit_delays.items():
            self._single[node] = self._check_delay(delay, f"node {node!r}")

        if default_pair_delay < 0:
            raise EnvironmentError_("default_pair_delay must be non-negative")
        self.default_pair_delay = float(default_pair_delay)

        self._pairs: Dict[Pair, float] = {}
        for (a, b), delay in pair_delays.items():
            if a not in self._node_set or b not in self._node_set:
                raise EnvironmentError_(
                    f"pair ({a!r}, {b!r}) references unknown node(s)"
                )
            if a == b:
                raise EnvironmentError_(
                    f"pair delays must connect distinct nodes, got ({a!r}, {b!r})"
                )
            key = _canonical_pair(a, b)
            if key in self._pairs:
                raise EnvironmentError_(f"duplicate pair delay for {key!r}")
            self._pairs[key] = self._check_delay(delay, f"pair {key!r}")

    @staticmethod
    def _check_delay(delay: float, what: str) -> float:
        value = float(delay)
        if value < 0 or math.isnan(value):
            raise EnvironmentError_(f"delay for {what} must be non-negative, got {delay!r}")
        return value

    # -- basic queries -------------------------------------------------------

    @property
    def nodes(self) -> Tuple[Node, ...]:
        """The physical qubits, in declaration order."""
        return self._nodes

    @property
    def num_qubits(self) -> int:
        """Number of physical qubits."""
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._node_set

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PhysicalEnvironment(name={self.name!r}, qubits={self.num_qubits})"
        )

    def single_qubit_delay(self, node: Node) -> float:
        """Delay of a 90-degree single-qubit pulse on ``node``."""
        try:
            return self._single[node]
        except KeyError:
            raise EnvironmentError_(f"unknown node {node!r}") from None

    def pair_delay(self, a: Node, b: Node) -> float:
        """Delay of a 90-degree two-qubit interaction between ``a`` and ``b``."""
        if a == b:
            return self.single_qubit_delay(a)
        if a not in self._node_set or b not in self._node_set:
            raise EnvironmentError_(f"unknown node in pair ({a!r}, {b!r})")
        return self._pairs.get(_canonical_pair(a, b), self.default_pair_delay)

    def weight(self, a: Node, b: Node) -> float:
        """Paper notation ``W(v_i, v_j)``; alias of :meth:`pair_delay`."""
        return self.pair_delay(a, b)

    def explicit_pairs(self) -> Dict[Pair, float]:
        """Pairs with explicitly specified delays (a copy)."""
        return dict(self._pairs)

    def finite_pairs(self) -> Dict[Pair, float]:
        """All pairs with a finite delay, including defaulted ones when finite."""
        result: Dict[Pair, float] = {}
        nodes = self._nodes
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                delay = self.pair_delay(a, b)
                if math.isfinite(delay):
                    result[_canonical_pair(a, b)] = delay
        return result

    # -- derived graphs --------------------------------------------------------

    def to_networkx(self, include_infinite: bool = False) -> nx.Graph:
        """Full environment graph with ``delay`` edge and node attributes."""
        graph = nx.Graph(name=self.name)
        for node in self._nodes:
            graph.add_node(node, delay=self._single[node])
        nodes = self._nodes
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                delay = self.pair_delay(a, b)
                if include_infinite or math.isfinite(delay):
                    graph.add_edge(a, b, delay=delay)
        return graph

    def adjacency_graph(self, threshold: float) -> nx.Graph:
        """Graph of "fast" interactions: pairs whose delay is at most ``threshold``.

        Nodes are always all physical qubits (a node may end up isolated).
        Edges carry the ``delay`` attribute.
        """
        graph = nx.Graph(name=f"{self.name}@{threshold:g}")
        for node in self._nodes:
            graph.add_node(node, delay=self._single[node])
        nodes = self._nodes
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                delay = self.pair_delay(a, b)
                if delay <= threshold:
                    graph.add_edge(a, b, delay=delay)
        return graph

    def is_connected_at(self, threshold: float) -> bool:
        """Whether the adjacency graph at ``threshold`` is connected."""
        graph = self.adjacency_graph(threshold)
        return graph.number_of_nodes() > 0 and nx.is_connected(graph)

    def minimal_connecting_threshold(self) -> float:
        """Smallest pair delay whose adjacency graph is connected.

        This is the paper's suggested default for ``Threshold``: "the minimal
        value such that the graph associated with fastest interactions is
        connected".  Computed as the bottleneck (minimax) edge of a minimum
        spanning tree over finite pair delays.  Raises if even the full
        finite graph is disconnected.
        """
        graph = self.to_networkx(include_infinite=False)
        if graph.number_of_edges() == 0 or not nx.is_connected(graph):
            raise EnvironmentError_(
                f"environment {self.name!r} has no connected finite-delay graph"
            )
        tree = nx.minimum_spanning_tree(graph, weight="delay")
        return max(data["delay"] for _, _, data in tree.edges(data=True))

    def delay_values(self) -> List[float]:
        """Sorted list of distinct finite pair delays (useful for sweeps)."""
        return sorted(set(self.finite_pairs().values()))

    # -- transformations -------------------------------------------------------

    def restricted_to(self, nodes: Iterable[Node], name: Optional[str] = None) -> "PhysicalEnvironment":
        """Return the induced sub-environment over ``nodes``."""
        keep = [n for n in self._nodes if n in set(nodes)]
        if not keep:
            raise EnvironmentError_("restriction would produce an empty environment")
        keep_set = set(keep)
        single = {n: self._single[n] for n in keep}
        pairs = {
            pair: delay
            for pair, delay in self._pairs.items()
            if pair[0] in keep_set and pair[1] in keep_set
        }
        return PhysicalEnvironment(
            single,
            pairs,
            default_pair_delay=self.default_pair_delay,
            name=name or f"{self.name}-restricted",
            time_unit_seconds=self.time_unit_seconds,
        )

    def scaled(self, factor: float, name: Optional[str] = None) -> "PhysicalEnvironment":
        """Return a copy with every delay multiplied by ``factor``."""
        if factor <= 0:
            raise EnvironmentError_("scaling factor must be positive")
        single = {n: d * factor for n, d in self._single.items()}
        pairs = {p: d * factor for p, d in self._pairs.items()}
        default = (
            self.default_pair_delay * factor
            if math.isfinite(self.default_pair_delay)
            else self.default_pair_delay
        )
        return PhysicalEnvironment(
            single,
            pairs,
            default_pair_delay=default,
            name=name or f"{self.name}-x{factor:g}",
            time_unit_seconds=self.time_unit_seconds,
        )

    # -- reporting helpers -----------------------------------------------------

    def seconds(self, delay_units: float) -> float:
        """Convert a delay expressed in environment units to seconds."""
        return delay_units * self.time_unit_seconds

    def search_space_size(self, circuit_qubits: int) -> int:
        """Number of injective placements ``m! / (m - n)!`` (Table 2's last column)."""
        m = self.num_qubits
        n = circuit_qubits
        if n > m:
            return 0
        size = 1
        for value in range(m - n + 1, m + 1):
            size *= value
        return size
