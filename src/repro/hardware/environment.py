"""Physical environments: weighted graphs of physical qubits.

Definition 1 of the paper: a physical environment (molecule) is a complete
non-oriented graph over a finite set of vertices (nuclei) with non-negative
edge weights.  ``W(v_i, v_j)`` for ``i != j`` is the delay needed to apply a
fixed-angle (90-degree) two-qubit interaction between the two nuclei, and
``W(v_i, v_i)`` is the delay of a fixed-angle single-qubit rotation on that
nucleus.  All delays are expressed in a single *time unit* (the NMR data set
uses ``1e-4`` seconds per unit, matching the paper's tables).

The placement algorithm never works directly on the complete graph; it first
extracts the *adjacency graph* of "fast" interactions, i.e. the pairs whose
delay is at most a chosen ``Threshold`` (see
:mod:`repro.hardware.threshold_graph`).
"""

from __future__ import annotations

import math
from array import array
from bisect import bisect_right
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from repro.core.stats import STATS
from repro.exceptions import EnvironmentError_

Node = Hashable
Pair = Tuple[Node, Node]


def _canonical_pair(a: Node, b: Node) -> Pair:
    """Return an unordered pair in a deterministic canonical order."""
    return (a, b) if repr(a) <= repr(b) else (b, a)


def injective_placements(environment_qubits: int, circuit_qubits: int) -> int:
    """Number of injective placements ``m! / (m - n)!`` (0 when ``n > m``).

    The search-space size of Table 2's last column, shared by
    :meth:`PhysicalEnvironment.search_space_size` and the experiment
    harnesses (which carry the two qubit counts without an environment).
    """
    if circuit_qubits > environment_qubits:
        return 0
    return math.perm(environment_qubits, circuit_qubits)


class PhysicalEnvironment:
    """A complete weighted graph of physical qubits (nuclei).

    Parameters
    ----------
    single_qubit_delays:
        Mapping ``node -> delay`` of a 90-degree single-qubit pulse on each
        nucleus.  The keys define the node set.
    pair_delays:
        Mapping ``(node_a, node_b) -> delay`` of a 90-degree two-qubit
        interaction.  Pairs are unordered; missing pairs fall back to
        ``default_pair_delay``.
    default_pair_delay:
        Delay assumed for pairs without an explicit entry.  ``math.inf``
        (the default) models interactions that are effectively unusable —
        they will never be below any finite threshold, and using them in a
        schedule yields an infinite runtime, which keeps such placements from
        ever being selected.
    name:
        Human-readable environment name used in reports.
    time_unit_seconds:
        Physical duration of one delay unit (``1e-4`` s for the NMR data).
    """

    def __init__(
        self,
        single_qubit_delays: Mapping[Node, float],
        pair_delays: Mapping[Tuple[Node, Node], float],
        default_pair_delay: float = math.inf,
        name: str = "environment",
        time_unit_seconds: float = 1e-4,
    ) -> None:
        if not single_qubit_delays:
            raise EnvironmentError_("an environment needs at least one node")
        self.name = str(name)
        self.time_unit_seconds = float(time_unit_seconds)
        self._nodes: Tuple[Node, ...] = tuple(single_qubit_delays.keys())
        self._node_set: FrozenSet[Node] = frozenset(self._nodes)
        if len(self._node_set) != len(self._nodes):
            raise EnvironmentError_("duplicate node labels in the environment")

        self._single: Dict[Node, float] = {}
        for node, delay in single_qubit_delays.items():
            self._single[node] = self._check_delay(delay, f"node {node!r}")

        if default_pair_delay < 0:
            raise EnvironmentError_("default_pair_delay must be non-negative")
        self.default_pair_delay = float(default_pair_delay)

        self._pairs: Dict[Pair, float] = {}
        for (a, b), delay in pair_delays.items():
            if a not in self._node_set or b not in self._node_set:
                raise EnvironmentError_(
                    f"pair ({a!r}, {b!r}) references unknown node(s)"
                )
            if a == b:
                raise EnvironmentError_(
                    f"pair delays must connect distinct nodes, got ({a!r}, {b!r})"
                )
            key = _canonical_pair(a, b)
            if key in self._pairs:
                raise EnvironmentError_(f"duplicate pair delay for {key!r}")
            self._pairs[key] = self._check_delay(delay, f"pair {key!r}")

        # Derived-graph caches, keyed by threshold *signature* — the largest
        # pair delay at or below the threshold — so that two thresholds
        # admitting the same edge set share one cached graph (see
        # ``invalidate_caches``).
        _SigKey = Tuple[Optional[float], bool]
        self._adjacency_cache: Dict[_SigKey, nx.Graph] = {}
        self._component_cache: Dict[_SigKey, nx.Graph] = {}
        self._connectivity_cache: Dict[_SigKey, bool] = {}
        self._pair_matrix_cache: Dict[Tuple[Node, ...], array] = {}
        self._minimal_threshold: Optional[float] = None
        self._delay_values: Optional[List[float]] = None
        self._cache_version = 0

    def __getstate__(self) -> Dict[str, object]:
        """Pickle without the derived-graph caches.

        The caches are exact and rebuilt on demand, so dropping them keeps
        worker-bound pickles small (an experiment spec ships the delay
        tables, not hundreds of cached ``nx.Graph`` objects) and guarantees
        a freshly unpickled environment re-derives its graphs locally.
        """
        state = self.__dict__.copy()
        state["_adjacency_cache"] = {}
        state["_component_cache"] = {}
        state["_connectivity_cache"] = {}
        state["_pair_matrix_cache"] = {}
        state["_minimal_threshold"] = None
        state["_delay_values"] = None
        return state

    @staticmethod
    def _check_delay(delay: float, what: str) -> float:
        value = float(delay)
        if value < 0 or math.isnan(value):
            raise EnvironmentError_(f"delay for {what} must be non-negative, got {delay!r}")
        return value

    # -- basic queries -------------------------------------------------------

    @property
    def nodes(self) -> Tuple[Node, ...]:
        """The physical qubits, in declaration order."""
        return self._nodes

    @property
    def num_qubits(self) -> int:
        """Number of physical qubits."""
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._node_set

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PhysicalEnvironment(name={self.name!r}, qubits={self.num_qubits})"
        )

    def single_qubit_delay(self, node: Node) -> float:
        """Delay of a 90-degree single-qubit pulse on ``node``."""
        try:
            return self._single[node]
        except KeyError:
            raise EnvironmentError_(f"unknown node {node!r}") from None

    def pair_delay(self, a: Node, b: Node) -> float:
        """Delay of a 90-degree two-qubit interaction between ``a`` and ``b``."""
        if a == b:
            return self.single_qubit_delay(a)
        if a not in self._node_set or b not in self._node_set:
            raise EnvironmentError_(f"unknown node in pair ({a!r}, {b!r})")
        return self._pairs.get(_canonical_pair(a, b), self.default_pair_delay)

    def weight(self, a: Node, b: Node) -> float:
        """Paper notation ``W(v_i, v_j)``; alias of :meth:`pair_delay`."""
        return self.pair_delay(a, b)

    def explicit_pairs(self) -> Dict[Pair, float]:
        """Pairs with explicitly specified delays (a copy)."""
        return dict(self._pairs)

    def finite_pairs(self) -> Dict[Pair, float]:
        """All pairs with a finite delay, including defaulted ones when finite."""
        result: Dict[Pair, float] = {}
        nodes = self._nodes
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                delay = self.pair_delay(a, b)
                if math.isfinite(delay):
                    result[_canonical_pair(a, b)] = delay
        return result

    # -- derived graphs --------------------------------------------------------

    def to_networkx(self, include_infinite: bool = False) -> nx.Graph:
        """Full environment graph with ``delay`` edge and node attributes."""
        graph = nx.Graph(name=self.name)
        for node in self._nodes:
            graph.add_node(node, delay=self._single[node])
        nodes = self._nodes
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                delay = self.pair_delay(a, b)
                if include_infinite or math.isfinite(delay):
                    graph.add_edge(a, b, delay=delay)
        return graph

    def adjacency_graph(self, threshold: float) -> nx.Graph:
        """Graph of "fast" interactions: pairs whose delay is at most ``threshold``.

        Nodes are always all physical qubits (a node may end up isolated).
        Edges carry the ``delay`` attribute.

        The graph is built once per distinct threshold and cached: a
        threshold sweep placing many circuits at the same thresholds reuses
        one graph object per cell instead of re-deriving it from the
        ``O(n^2)`` delay table every time.  Callers must treat the returned
        graph as read-only; mutate the *environment* (``set_pair_delay``,
        ``set_single_qubit_delay``) or call :meth:`invalidate_caches`
        instead of editing the graph in place.
        """
        key = self.threshold_signature(threshold)
        cached = self._adjacency_cache.get(key)
        if cached is not None:
            STATS.increment("environment.adjacency_cache_hits")
            return cached
        STATS.increment("environment.adjacency_cache_misses")
        graph = nx.Graph(name=f"{self.name}@{threshold:g}")
        for node in self._nodes:
            graph.add_node(node, delay=self._single[node])
        nodes = self._nodes
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                delay = self.pair_delay(a, b)
                if delay <= threshold:
                    graph.add_edge(a, b, delay=delay)
        self._adjacency_cache[key] = graph
        return graph

    def threshold_signature(self, threshold: float) -> Tuple[Optional[float], bool]:
        """Canonical cache key for a threshold: the edge set it admits.

        The adjacency graph depends on the threshold only through the set of
        pair delays at or below it, so any two thresholds between the same
        two consecutive delay values produce identical graphs (a threshold
        sweep typically hits far fewer distinct graphs than thresholds).
        The edge set is fully determined by the slowest *explicit* pair
        delay admitted (``None`` when none is) and whether defaulted pairs
        are admitted too.
        """
        if self._delay_values is None:
            # Infinite explicit delays stay in the list: threshold=inf admits
            # them, so it must not share a signature with finite thresholds.
            self._delay_values = sorted(set(self._pairs.values()))
        values = self._delay_values
        position = bisect_right(values, threshold)
        explicit = values[position - 1] if position else None
        return (explicit, self.default_pair_delay <= threshold)

    def is_connected_at(self, threshold: float) -> bool:
        """Whether the adjacency graph at ``threshold`` is connected."""
        key = self.threshold_signature(threshold)
        cached = self._connectivity_cache.get(key)
        if cached is not None:
            return cached
        graph = self.adjacency_graph(threshold)
        connected = graph.number_of_nodes() > 0 and nx.is_connected(graph)
        self._connectivity_cache[key] = connected
        return connected

    def largest_component_graph(self, threshold: float) -> nx.Graph:
        """The adjacency graph restricted to its largest connected component.

        Cached per threshold like :meth:`adjacency_graph` (same read-only
        contract).  When the graph is connected this *is* the cached
        adjacency graph; otherwise it is a one-time copy over the largest
        component (ties broken by discovery order, matching
        ``nx.connected_components``), rebuilt with nodes and edges in the
        environment's declaration order — a ``graph.subgraph(set).copy()``
        would freeze the *set*'s hash order into the copy and leak
        ``PYTHONHASHSEED`` into every downstream traversal.
        """
        key = self.threshold_signature(threshold)
        cached = self._component_cache.get(key)
        if cached is not None:
            STATS.increment("environment.component_cache_hits")
            return cached
        STATS.increment("environment.component_cache_misses")
        graph = self.adjacency_graph(threshold)
        if self.is_connected_at(threshold):
            component = graph
        else:
            components = sorted(
                nx.connected_components(graph), key=len, reverse=True
            )
            members = set(components[0])
            component = nx.Graph(**graph.graph)
            component.add_nodes_from(
                (node, graph.nodes[node]) for node in graph.nodes() if node in members
            )
            component.add_edges_from(
                (a, b, data)
                for a, b, data in graph.edges(data=True)
                if a in members and b in members
            )
        self._component_cache[key] = component
        return component

    def pair_delay_table(self, nodes: Optional[Tuple[Node, ...]] = None) -> array:
        """Flat row-major ``n x n`` pair-delay matrix over ``nodes``, cached.

        Entry ``i * n + j`` is :meth:`pair_delay` of ``(nodes[i], nodes[j])``
        — the diagonal degenerates to the single-qubit delays, matching the
        scheduler's ``_pair_weight`` for every index pair.  ``nodes``
        defaults to (and is keyed as) the full declaration-order node tuple,
        so every :class:`~repro.timing.scheduler.RuntimeEvaluator` built
        against the same calibration shares one table instead of re-running
        the ``O(n^2)`` fill (~524k lookups on a 1024-node grid).  Cached
        next to the threshold-keyed graph caches: recalibration via
        ``set_pair_delay``/``set_single_qubit_delay`` (or a manual
        :meth:`invalidate_caches`) drops it.

        Callers must treat the returned buffer as read-only; both the numpy
        and native scheduler backends wrap it zero-copy.
        """
        key = self._nodes if nodes is None else tuple(nodes)
        cached = self._pair_matrix_cache.get(key)
        if cached is not None:
            STATS.increment("scheduler.pair_matrix_cache_hits")
            return cached
        STATS.increment("scheduler.pair_matrix_cache_misses")
        count = len(key)
        # Delay tables are sparse on big hosts (a 1024-node grid has ~2k
        # explicit couplings against ~524k node pairs), so prefill the
        # default at C speed and write only the explicit entries: the fill
        # is O(n + pairs), not O(n^2).  ``_pairs`` keys are canonical by
        # construction, so each unordered pair appears exactly once.
        flat = array("d", (self.default_pair_delay,)) * (count * count)
        index = {node: position for position, node in enumerate(key)}
        for node, position in index.items():
            flat[position * count + position] = self._single[node]
        for (node_a, node_b), value in self._pairs.items():
            i = index.get(node_a)
            j = index.get(node_b)
            if i is None or j is None:
                continue
            flat[i * count + j] = value
            flat[j * count + i] = value
        self._pair_matrix_cache[key] = flat
        return flat

    def invalidate_caches(self) -> None:
        """Drop every cached derived graph.

        Called automatically by the mutating methods; call it manually after
        any out-of-band change that affects delays.
        """
        self._adjacency_cache.clear()
        self._component_cache.clear()
        self._connectivity_cache.clear()
        self._pair_matrix_cache.clear()
        self._minimal_threshold = None
        self._delay_values = None
        self._cache_version += 1

    @property
    def cache_version(self) -> int:
        """Monotonic counter bumped on every invalidation.

        Long-lived consumers that snapshot delay data (e.g.
        :class:`~repro.timing.scheduler.RuntimeEvaluator`) compare this to
        detect that the environment was recalibrated under them.
        """
        return self._cache_version

    # -- calibration updates ---------------------------------------------------

    def set_pair_delay(self, a: Node, b: Node, delay: float) -> None:
        """Update (or introduce) the delay of one interaction pair.

        Recalibration entry point: experimentalists re-measure couplings over
        time; updating through this method keeps the cached adjacency and
        component graphs consistent by invalidating them.
        """
        if a not in self._node_set or b not in self._node_set:
            raise EnvironmentError_(f"unknown node in pair ({a!r}, {b!r})")
        if a == b:
            raise EnvironmentError_(
                f"pair delays must connect distinct nodes, got ({a!r}, {b!r})"
            )
        key = _canonical_pair(a, b)
        self._pairs[key] = self._check_delay(delay, f"pair {key!r}")
        self.invalidate_caches()

    def set_single_qubit_delay(self, node: Node, delay: float) -> None:
        """Update the single-qubit pulse delay of ``node`` (invalidates caches)."""
        if node not in self._node_set:
            raise EnvironmentError_(f"unknown node {node!r}")
        self._single[node] = self._check_delay(delay, f"node {node!r}")
        self.invalidate_caches()

    def minimal_connecting_threshold(self) -> float:
        """Smallest pair delay whose adjacency graph is connected.

        This is the paper's suggested default for ``Threshold``: "the minimal
        value such that the graph associated with fastest interactions is
        connected".  Computed as the bottleneck (minimax) edge of a minimum
        spanning tree over finite pair delays.  Raises if even the full
        finite graph is disconnected.
        """
        if self._minimal_threshold is not None:
            return self._minimal_threshold
        graph = self.to_networkx(include_infinite=False)
        if graph.number_of_edges() == 0 or not nx.is_connected(graph):
            raise EnvironmentError_(
                f"environment {self.name!r} has no connected finite-delay graph"
            )
        tree = nx.minimum_spanning_tree(graph, weight="delay")
        self._minimal_threshold = max(
            data["delay"] for _, _, data in tree.edges(data=True)
        )
        return self._minimal_threshold

    def delay_values(self) -> List[float]:
        """Sorted list of distinct finite pair delays (useful for sweeps)."""
        return sorted(set(self.finite_pairs().values()))

    # -- transformations -------------------------------------------------------

    def restricted_to(self, nodes: Iterable[Node], name: Optional[str] = None) -> "PhysicalEnvironment":
        """Return the induced sub-environment over ``nodes``."""
        wanted = frozenset(nodes)
        keep = [n for n in self._nodes if n in wanted]
        if not keep:
            raise EnvironmentError_("restriction would produce an empty environment")
        keep_set = set(keep)
        single = {n: self._single[n] for n in keep}
        pairs = {
            pair: delay
            for pair, delay in self._pairs.items()
            if pair[0] in keep_set and pair[1] in keep_set
        }
        return PhysicalEnvironment(
            single,
            pairs,
            default_pair_delay=self.default_pair_delay,
            name=name or f"{self.name}-restricted",
            time_unit_seconds=self.time_unit_seconds,
        )

    def scaled(self, factor: float, name: Optional[str] = None) -> "PhysicalEnvironment":
        """Return a copy with every delay multiplied by ``factor``."""
        if factor <= 0:
            raise EnvironmentError_("scaling factor must be positive")
        single = {n: d * factor for n, d in self._single.items()}
        pairs = {p: d * factor for p, d in self._pairs.items()}
        default = (
            self.default_pair_delay * factor
            if math.isfinite(self.default_pair_delay)
            else self.default_pair_delay
        )
        return PhysicalEnvironment(
            single,
            pairs,
            default_pair_delay=default,
            name=name or f"{self.name}-x{factor:g}",
            time_unit_seconds=self.time_unit_seconds,
        )

    # -- reporting helpers -----------------------------------------------------

    def seconds(self, delay_units: float) -> float:
        """Convert a delay expressed in environment units to seconds."""
        return delay_units * self.time_unit_seconds

    def search_space_size(self, circuit_qubits: int) -> int:
        """Number of injective placements ``m! / (m - n)!`` (Table 2's last column)."""
        return injective_placements(self.num_qubits, circuit_qubits)
