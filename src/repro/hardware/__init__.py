"""Physical environments: molecules and synthetic architectures."""

from repro.hardware.architectures import (
    complete,
    grid,
    heavy_hex,
    linear_chain,
    ring,
    star,
)
from repro.hardware.calibration import (
    coupling_to_delay,
    environment_from_couplings,
    pulse_to_delay,
)
from repro.hardware.environment import PhysicalEnvironment
from repro.hardware.molecules import (
    MOLECULE_FACTORIES,
    acetyl_chloride,
    all_molecules,
    boc_glycine_fluoride,
    histidine,
    molecule,
    pentafluorobutadienyl_iron,
    trans_crotonic_acid,
)
from repro.hardware.threshold_graph import (
    PAPER_THRESHOLDS,
    AdjacencySummary,
    adjacency_graph,
    connectivity_threshold,
    summarize,
)

__all__ = [
    "PhysicalEnvironment",
    "acetyl_chloride",
    "trans_crotonic_acid",
    "histidine",
    "boc_glycine_fluoride",
    "pentafluorobutadienyl_iron",
    "molecule",
    "all_molecules",
    "MOLECULE_FACTORIES",
    "linear_chain",
    "ring",
    "grid",
    "complete",
    "star",
    "heavy_hex",
    "adjacency_graph",
    "connectivity_threshold",
    "summarize",
    "AdjacencySummary",
    "PAPER_THRESHOLDS",
    "environment_from_couplings",
    "coupling_to_delay",
    "pulse_to_delay",
]
