"""Liquid-state NMR molecule data set used by the paper's experiments.

Every function returns a fresh :class:`~repro.hardware.environment.PhysicalEnvironment`
whose delays are expressed in units of ``1e-4`` seconds (the paper's unit:
"The delays are measured in terms of 1/10000 sec, and are rounded to keep the
numbers integer").

Data provenance
---------------

* **Acetyl chloride** (3 qubits, Laforest et al. [14], Fig. 1 of the paper).
  The paper does not reprint the weight table, but Example 3 / Table 1 pin
  every weight uniquely: the mapping ``{a→M, b→C2, c→C1}`` of the Fig. 2
  encoder must cost 770 units and the optimal mapping ``{a→C2, b→C1, c→M}``
  must cost 136 units.  Solving the schedule equations gives

  ====================  =======
  delay                 units
  ====================  =======
  W(M, M)               8
  W(C1, C1)             8
  W(C2, C2)             1
  W(M, C1)              38
  W(C1, C2)             89
  W(M, C2)              672
  ====================  =======

  and these exact values are used, so experiment E1 reproduces the paper's
  numbers exactly.

* **Trans-crotonic acid** (7 qubits, Knill et al. [12]), **histidine**
  (12 qubits, Negrevergne et al. [20]), **BOC-glycine-fluoride** (5 qubits,
  Marx et al. [16]) and **pentafluorobutadienyl cyclopentadienyl dicarbonyl
  iron** (5 qubits, Vandersypen et al. [24]): the paper cites the original
  experimental publications but does not reprint their coupling tables.  The
  delays below are reconstructed from the cited experiments' qualitative
  structure — interactions along chemical bonds are fast (tens of units),
  long-range couplings are slow (hundreds to thousands of units), the iron
  complex is uniformly "slow" so that every pair delay exceeds 100 (this is
  what makes Table 3 report N/A for thresholds 50 and 100) — rather than
  copied digit-for-digit.  This substitution is documented in DESIGN.md; it
  preserves every qualitative behaviour the paper's evaluation relies on
  (threshold/connectivity structure, fast-bond topology, relative speed of
  the molecules) while absolute runtimes differ from the paper's.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hardware.environment import Node, PhysicalEnvironment
from repro.registry import ENVIRONMENTS

#: Delay assigned to qubit pairs with no usable direct interaction.  Kept
#: finite (but far above every threshold used in the paper's sweeps) so that
#: whole-circuit placements remain well defined even when they are terrible.
#: The value corresponds to a coupling of roughly 0.25 Hz — the paper's
#: introduction quotes couplings around 0.2 Hz as essentially noise; it is
#: kept just below the largest Table-3 threshold so that "place the circuit
#: as a whole" (threshold 10000) is always meaningful.
SLOW_PAIR_DELAY = 9800.0


def acetyl_chloride() -> PhysicalEnvironment:
    """The 3-qubit acetyl chloride molecule of Fig. 1 (exact paper weights)."""
    single = {"M": 8.0, "C1": 8.0, "C2": 1.0}
    pairs = {
        ("M", "C1"): 38.0,
        ("C1", "C2"): 89.0,
        ("M", "C2"): 672.0,
    }
    return PhysicalEnvironment(
        single, pairs, default_pair_delay=SLOW_PAIR_DELAY, name="acetyl chloride"
    )


def trans_crotonic_acid() -> PhysicalEnvironment:
    """The 7-qubit trans-crotonic acid molecule (Knill et al. [12], Fig. 3).

    Qubits: the methyl proton group ``M``, carbons ``C1``..``C4`` and protons
    ``H1``, ``H2``.  Chemical bonds (the fast interactions, matching the
    cutting example of Fig. 3): ``M-C1``, ``C1-C2``, ``C2-C3``, ``C3-C4``,
    ``C2-H1``, ``C3-H2``.
    """
    single = {
        "M": 8.0,
        "C1": 10.0,
        "C2": 10.0,
        "C3": 10.0,
        "C4": 10.0,
        "H1": 8.0,
        "H2": 8.0,
    }
    pairs = {
        # chemical bonds: fast
        ("M", "C1"): 20.0,
        ("C1", "C2"): 35.0,
        ("C2", "C3"): 36.0,
        ("C3", "C4"): 60.0,
        ("C2", "H1"): 16.0,
        ("C3", "H2"): 15.0,
        # two-bond couplings: usable but slow
        ("M", "C2"): 900.0,
        ("C1", "C3"): 1050.0,
        ("C2", "C4"): 1000.0,
        ("C1", "H1"): 820.0,
        ("C2", "H2"): 960.0,
        ("C3", "H1"): 940.0,
        ("C4", "H2"): 850.0,
        ("H1", "H2"): 600.0,
        # three-bond and longer couplings: very slow
        ("M", "C3"): 7000.0,
        ("M", "H1"): 7500.0,
        ("C1", "C4"): 7200.0,
        ("C1", "H2"): 8000.0,
        ("C4", "H1"): 7800.0,
        ("M", "C4"): 9000.0,
        ("M", "H2"): 9200.0,
    }
    return PhysicalEnvironment(
        single, pairs, default_pair_delay=SLOW_PAIR_DELAY, name="trans-crotonic acid"
    )


def boc_glycine_fluoride() -> PhysicalEnvironment:
    """The 5-qubit BOC-(13C2-15N-2D-alpha-glycine)-fluoride molecule [16].

    Qubits: fluorine ``F``, carbonyl carbon ``C1``, alpha carbon ``C2``,
    nitrogen ``N`` and the alpha proton ``H``.  The fast interactions form a
    chain ``F - C1 - C2 - N`` with the proton hanging off ``C2``.
    """
    single = {"F": 6.0, "C1": 10.0, "C2": 10.0, "N": 14.0, "H": 8.0}
    pairs = {
        # chemical-bond chain F - C1 - C2 - N with the proton on C2: fast
        ("F", "C1"): 25.0,
        ("C1", "C2"): 45.0,
        ("C2", "N"): 48.0,
        ("C2", "H"): 18.0,
        # two-bond couplings: usable at intermediate thresholds
        ("F", "C2"): 160.0,
        ("C1", "H"): 170.0,
        ("C1", "N"): 185.0,
        # long-range couplings: only usable at large thresholds
        ("N", "H"): 700.0,
        ("F", "N"): 950.0,
        ("F", "H"): 4200.0,
    }
    return PhysicalEnvironment(
        single,
        pairs,
        default_pair_delay=SLOW_PAIR_DELAY,
        name="BOC-glycine-fluoride",
    )


def pentafluorobutadienyl_iron() -> PhysicalEnvironment:
    """The 5-qubit pentafluorobutadienyl cyclopentadienyl dicarbonyl iron
    complex of Vandersypen et al. [24].

    The five fluorine nuclei form the qubits.  As the paper notes, this
    molecule is "slow": *every* pair delay exceeds 100 units, so thresholds
    of 50 or 100 disallow all interactions and the corresponding Table 3
    entries are N/A.
    """
    single = {"F1": 6.0, "F2": 6.0, "F3": 6.0, "F4": 6.0, "F5": 6.0}
    pairs = {
        # the fluorine chain: the fastest interactions, yet all slower than
        # 100 units, so thresholds of 50 and 100 disallow everything (N/A)
        ("F1", "F2"): 160.0,
        ("F2", "F3"): 190.0,
        ("F3", "F4"): 195.0,
        ("F4", "F5"): 198.0,
        # next-neighbour couplings
        ("F1", "F3"): 420.0,
        ("F2", "F4"): 450.0,
        ("F3", "F5"): 480.0,
        # long-range couplings
        ("F1", "F4"): 1100.0,
        ("F2", "F5"): 1150.0,
        ("F1", "F5"): 1800.0,
    }
    return PhysicalEnvironment(
        single,
        pairs,
        default_pair_delay=SLOW_PAIR_DELAY,
        name="pentafluorobutadienyl iron complex",
    )


def histidine() -> PhysicalEnvironment:
    """The 12-qubit histidine molecule (Negrevergne et al. [20]).

    Qubits: backbone nitrogen ``N``, alpha/beta/carboxyl carbons ``Ca``,
    ``Cb``, ``C'``, the imidazole ring ``Cg - Nd1 - Ce1 - Ne2 - Cd2 - Cg``,
    and protons ``Ha`` (on ``Ca``), ``Hd2`` (on ``Cd2``), ``He1`` (on
    ``Ce1``).  Fast interactions run along the chemical bonds; the ring gives
    the adjacency graph a cycle, which exercises the loop-cutting step of the
    routing algorithm.
    """
    single = {
        "N": 14.0,
        "Ca": 10.0,
        "C'": 10.0,
        "Cb": 10.0,
        "Cg": 10.0,
        "Nd1": 14.0,
        "Ce1": 10.0,
        "Ne2": 14.0,
        "Cd2": 10.0,
        "Ha": 8.0,
        "Hd2": 8.0,
        "He1": 8.0,
    }
    pairs: Dict[Tuple[Node, Node], float] = {
        # backbone bonds
        ("N", "Ca"): 48.0,
        ("Ca", "C'"): 46.0,
        ("Ca", "Cb"): 44.0,
        ("Cb", "Cg"): 42.0,
        # imidazole ring bonds
        ("Cg", "Nd1"): 40.0,
        ("Nd1", "Ce1"): 38.0,
        ("Ce1", "Ne2"): 39.0,
        ("Ne2", "Cd2"): 41.0,
        ("Cd2", "Cg"): 36.0,
        # proton bonds (fastest)
        ("Ca", "Ha"): 16.0,
        ("Cd2", "Hd2"): 14.0,
        ("Ce1", "He1"): 13.0,
        # two-bond couplings
        ("N", "C'"): 850.0,
        ("N", "Cb"): 930.0,
        ("C'", "Cb"): 880.0,
        ("Ca", "Cg"): 980.0,
        ("Cb", "Nd1"): 1060.0,
        ("Cb", "Cd2"): 1010.0,
        ("Cg", "Ce1"): 1080.0,
        ("Cg", "Ne2"): 1130.0,
        ("Nd1", "Ne2"): 1160.0,
        ("Nd1", "Cd2"): 1110.0,
        ("Ce1", "Cd2"): 1120.0,
        ("N", "Ha"): 590.0,
        ("Cb", "Ha"): 620.0,
        # The carboxyl-carbon / alpha-proton two-bond coupling is kept fast:
        # it completes the ten-spin chain of fast interactions that the
        # 10-qubit benchmark experiment of [20] was aligned along, so the
        # pseudo-cat-state circuit fits a single workspace (Table 2).
        ("C'", "Ha"): 47.0,
        ("Cg", "Hd2"): 740.0,
        ("Ne2", "Hd2"): 760.0,
        ("Nd1", "He1"): 790.0,
        ("Ne2", "He1"): 750.0,
        # representative long-range couplings
        ("N", "Cg"): 7500.0,
        ("Ca", "Nd1"): 8000.0,
        ("Ca", "Cd2"): 8200.0,
        ("C'", "Cg"): 8500.0,
        ("Ha", "Cg"): 9000.0,
        ("Hd2", "He1"): 4500.0,
        ("Ha", "Hd2"): 9300.0,
        ("Ha", "He1"): 9400.0,
    }
    return PhysicalEnvironment(
        single, pairs, default_pair_delay=SLOW_PAIR_DELAY, name="histidine"
    )


#: Registry of all molecules by short name, for the CLI and the sweeps.
MOLECULE_FACTORIES = {
    "acetyl-chloride": acetyl_chloride,
    "trans-crotonic-acid": trans_crotonic_acid,
    "boc-glycine-fluoride": boc_glycine_fluoride,
    "pentafluorobutadienyl-iron": pentafluorobutadienyl_iron,
    "histidine": histidine,
}

for _name, _factory in MOLECULE_FACTORIES.items():
    ENVIRONMENTS.add(_name, _factory, description="NMR molecule")
del _name, _factory


def molecule(name: str) -> PhysicalEnvironment:
    """Return a molecule environment by its registry short name."""
    try:
        factory = MOLECULE_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(MOLECULE_FACTORIES))
        raise KeyError(f"unknown molecule {name!r}; known molecules: {known}") from None
    return factory()


def all_molecules() -> List[PhysicalEnvironment]:
    """All molecules of the data set, in a deterministic order."""
    return [MOLECULE_FACTORIES[name]() for name in sorted(MOLECULE_FACTORIES)]
