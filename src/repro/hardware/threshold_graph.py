"""Threshold selection and adjacency-graph utilities.

The preprocessing step of the paper's heuristic: pick a ``Threshold`` and
declare every interaction whose delay is at most the threshold "fast".  The
fast interactions form the *adjacency graph*; all subcircuit placement and
SWAP routing happens along its edges.

The paper suggests two ways to obtain the threshold: take it from the
experimentalists, or use "the minimal value such that the graph associated
with fastest interactions is connected".  Both are supported here, plus a
sweep helper used by the Table 3 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import networkx as nx

from repro.core._bitset import canonical_order
from repro.exceptions import ThresholdError
from repro.hardware.environment import PhysicalEnvironment

#: The threshold values swept in Table 3 of the paper.
PAPER_THRESHOLDS: Tuple[float, ...] = (50.0, 100.0, 200.0, 500.0, 1000.0, 10000.0)


@dataclass(frozen=True)
class AdjacencySummary:
    """Summary statistics of an adjacency graph at a given threshold."""

    threshold: float
    num_nodes: int
    num_edges: int
    num_components: int
    is_connected: bool
    max_degree: int

    @property
    def usable(self) -> bool:
        """Whether the graph has at least one edge (any interaction allowed)."""
        return self.num_edges > 0


def adjacency_graph(environment: PhysicalEnvironment, threshold: float) -> nx.Graph:
    """Adjacency graph of ``environment`` at ``threshold`` (delegates to the environment)."""
    return environment.adjacency_graph(threshold)


def summarize(environment: PhysicalEnvironment, threshold: float) -> AdjacencySummary:
    """Compute :class:`AdjacencySummary` for one threshold value."""
    graph = environment.adjacency_graph(threshold)
    num_components = nx.number_connected_components(graph) if graph.number_of_nodes() else 0
    degrees = [d for _, d in graph.degree()]
    return AdjacencySummary(
        threshold=float(threshold),
        num_nodes=graph.number_of_nodes(),
        num_edges=graph.number_of_edges(),
        num_components=num_components,
        is_connected=num_components == 1,
        max_degree=max(degrees) if degrees else 0,
    )


def connectivity_threshold(environment: PhysicalEnvironment) -> float:
    """The minimal threshold at which the adjacency graph is connected."""
    return environment.minimal_connecting_threshold()


def largest_connected_nodes(
    environment: PhysicalEnvironment, threshold: float
) -> List:
    """Nodes of the largest connected component of the adjacency graph.

    When a threshold disconnects the environment (as happens for
    trans-crotonic acid at threshold 50), placement can still proceed inside
    the largest component as long as it holds enough physical qubits.
    """
    graph = environment.adjacency_graph(threshold)
    if graph.number_of_edges() == 0:
        raise ThresholdError(
            f"threshold {threshold:g} disallows every interaction of "
            f"{environment.name!r}"
        )
    return canonical_order(environment.largest_component_graph(threshold))


def sweep_summaries(
    environment: PhysicalEnvironment,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
) -> List[AdjacencySummary]:
    """Adjacency summaries across a set of thresholds (in ascending order)."""
    return [summarize(environment, t) for t in sorted(thresholds)]


def usable_thresholds(
    environment: PhysicalEnvironment,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    min_component_size: int = 2,
) -> List[float]:
    """Thresholds whose largest component has at least ``min_component_size`` nodes."""
    result = []
    for threshold in thresholds:
        graph = environment.adjacency_graph(threshold)
        if graph.number_of_edges() == 0:
            continue
        largest = max(len(c) for c in nx.connected_components(graph))
        if largest >= min_component_size:
            result.append(float(threshold))
    return result
