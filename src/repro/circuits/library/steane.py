"""Steane [[7,1,3]] syndrome-extraction circuits ("steane-x/z1", "steane-x/z2").

Table 3 of the paper places two 10-qubit circuits named "steane-x/z1" and
"steane-x/z2", corresponding to Figures 10.16 and 10.17 of Nielsen & Chuang:
X-type error correction for the Steane code, which by the code's symmetry
doubles as Z-type error correction.

Both variants operate on 7 data qubits ``d0..d6`` plus 3 ancilla qubits
``a0..a2``; each ancilla measures one stabilizer generator of the code:

* generator 0 touches data qubits {0, 2, 4, 6}
* generator 1 touches data qubits {1, 2, 5, 6}
* generator 2 touches data qubits {3, 4, 5, 6}

Variant 1 (Fig. 10.16 style) extracts the syndromes with plain
ancilla-controlled CNOT ladders; variant 2 (Fig. 10.17 style) verifies the
ancillas by preparing them in an entangled (cat-like) state before the data
interactions, which adds ancilla-ancilla gates and changes the interaction
graph — giving the placer a genuinely different instance, as in the paper.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import CircuitError

#: Stabilizer generator supports of the Steane code (data-qubit indices).
STEANE_GENERATORS: Tuple[Tuple[int, ...], ...] = (
    (0, 2, 4, 6),
    (1, 2, 5, 6),
    (3, 4, 5, 6),
)


def _data_and_ancilla_labels() -> Tuple[List[str], List[str]]:
    data = [f"d{i}" for i in range(7)]
    ancilla = [f"a{i}" for i in range(3)]
    return data, ancilla


def steane_syndrome_circuit(variant: int = 1) -> QuantumCircuit:
    """Steane X/Z syndrome extraction, variant 1 or 2 (10 qubits).

    Parameters
    ----------
    variant:
        ``1`` — plain syndrome extraction (one ancilla per generator, CNOT
        ladder onto the ancilla).  ``2`` — verified-ancilla version: the
        ancillas are first entangled with each other (cat-state preparation
        and verification), then coupled to the data qubits.
    """
    if variant not in (1, 2):
        raise CircuitError("variant must be 1 or 2")
    data, ancilla = _data_and_ancilla_labels()
    qubits = data + ancilla
    gate_list: List[Gate] = []

    if variant == 1:
        for index, generator in enumerate(STEANE_GENERATORS):
            anc = ancilla[index]
            gate_list.append(g.hadamard(anc))
            for data_index in generator:
                gate_list.append(g.cnot(anc, data[data_index]))
            gate_list.append(g.hadamard(anc))
    else:
        # Prepare and verify an entangled ancilla block.
        gate_list.append(g.hadamard(ancilla[0]))
        gate_list.append(g.cnot(ancilla[0], ancilla[1]))
        gate_list.append(g.cnot(ancilla[1], ancilla[2]))
        gate_list.append(g.cnot(ancilla[0], ancilla[2]))
        # Couple each ancilla to its stabilizer support.
        for index, generator in enumerate(STEANE_GENERATORS):
            anc = ancilla[index]
            for data_index in generator:
                gate_list.append(g.cnot(anc, data[data_index]))
        # Decode the ancilla block before readout.
        gate_list.append(g.cnot(ancilla[0], ancilla[2]))
        gate_list.append(g.cnot(ancilla[1], ancilla[2]))
        gate_list.append(g.cnot(ancilla[0], ancilla[1]))
        gate_list.append(g.hadamard(ancilla[0]))

    name = f"steane-x/z{variant}"
    return QuantumCircuit(qubits, gate_list, name=name)


def steane_xz1() -> QuantumCircuit:
    """The "steane-x/z1" benchmark of Table 3."""
    return steane_syndrome_circuit(1)


def steane_xz2() -> QuantumCircuit:
    """The "steane-x/z2" benchmark of Table 3."""
    return steane_syndrome_circuit(2)
