"""Quantum Fourier Transform circuits (exact and approximate).

The QFT over ``n`` qubits (Nielsen & Chuang, page 219, the paper's "qft6")
applies, for every qubit ``i``: a Hadamard followed by controlled phase
rotations ``R_k`` controlled by every later qubit ``j > i`` with angle
``360 / 2^(j - i + 1)`` degrees, and ends with a qubit-order reversal (which
costs nothing for placement purposes and is omitted by default, as is common
in benchmark suites).

The *approximate* QFT ("aqft9", "aqft12") keeps only the rotations whose
controlled-phase angle is large enough to matter, i.e. the interactions
between qubits at distance at most ``degree``; with ``degree ≈ log2(n)`` the
approximation error is negligible while the number of two-qubit gates drops
from ``O(n^2)`` to ``O(n log n)``.

The full QFT's interaction graph is the complete graph — the paper uses
exactly this property to show that SWAP stages are indispensable on sparse
molecules.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import CircuitError


def qft_circuit(
    num_qubits: int,
    approximation_degree: Optional[int] = None,
    include_final_swaps: bool = False,
    name: Optional[str] = None,
) -> QuantumCircuit:
    """Build a (possibly approximate) QFT circuit on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Number of qubits (at least 2).
    approximation_degree:
        Keep only controlled rotations between qubits at distance at most
        this value.  ``None`` keeps everything (the exact QFT).
    include_final_swaps:
        Append the qubit-order-reversing SWAP network.  Off by default: the
        reversal is a relabelling that placement-oriented benchmarks skip.
    """
    if num_qubits < 2:
        raise CircuitError("the QFT needs at least two qubits")
    if approximation_degree is not None and approximation_degree < 1:
        raise CircuitError("approximation_degree must be at least 1")

    qubits = list(range(num_qubits))
    gate_list: List[Gate] = []
    for i in qubits:
        gate_list.append(g.hadamard(i))
        for j in range(i + 1, num_qubits):
            distance = j - i
            if approximation_degree is not None and distance > approximation_degree:
                continue
            angle = 360.0 / (2 ** (distance + 1))
            gate_list.append(g.controlled_phase(j, i, angle))
    if include_final_swaps:
        for i in range(num_qubits // 2):
            gate_list.append(g.swap(i, num_qubits - 1 - i))

    if name is None:
        if approximation_degree is None:
            name = f"qft{num_qubits}"
        else:
            name = f"aqft{num_qubits}"
    return QuantumCircuit(qubits, gate_list, name=name)


def approximate_qft_circuit(
    num_qubits: int,
    approximation_degree: Optional[int] = None,
    name: Optional[str] = None,
) -> QuantumCircuit:
    """Approximate QFT with the customary ``degree = ceil(log2 n) + 1`` default."""
    if approximation_degree is None:
        approximation_degree = max(1, int(math.ceil(math.log2(max(2, num_qubits)))) + 1)
    return qft_circuit(
        num_qubits, approximation_degree=approximation_degree, name=name
    )


def qft6() -> QuantumCircuit:
    """The 6-qubit exact QFT used in Table 3 ("qft6")."""
    return qft_circuit(6)


def aqft9() -> QuantumCircuit:
    """The 9-qubit approximate QFT used in Table 3 ("aqft9")."""
    return approximate_qft_circuit(9, name="aqft9")


def aqft12() -> QuantumCircuit:
    """The 12-qubit approximate QFT used in Table 3 ("aqft12")."""
    return approximate_qft_circuit(12, name="aqft12")
