"""Quantum phase estimation ("phaseest", 5 qubits in the paper).

The standard textbook construction: ``t`` counting qubits are put into
superposition by Hadamards, controlled powers of the unitary whose phase is
being estimated are applied onto the eigenstate register, and the counting
register is processed with an inverse (approximate) QFT.  For placement the
only relevant content is which qubit pairs interact and for how long, so the
controlled ``U^(2^k)`` applications are modelled as controlled-phase gates of
the appropriate angle between the counting qubit and the eigenstate qubit.

The paper's "phaseest" has 5 qubits; with the default arguments this module
produces exactly that shape (4 counting qubits + 1 eigenstate qubit).
"""

from __future__ import annotations

from typing import List, Optional

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import CircuitError


def phase_estimation_circuit(
    num_counting_qubits: int = 4,
    num_eigenstate_qubits: int = 1,
    phase_angle: float = 45.0,
    name: Optional[str] = None,
) -> QuantumCircuit:
    """Build a phase-estimation circuit.

    Parameters
    ----------
    num_counting_qubits:
        Size of the counting register (the precision of the estimate).
    num_eigenstate_qubits:
        Size of the register holding the eigenstate; controlled-``U`` powers
        touch its first qubit (one is the common case and the paper's).
    phase_angle:
        Phase angle (degrees) applied by one application of ``U``; only the
        relative durations matter for placement.
    """
    if num_counting_qubits < 1:
        raise CircuitError("phase estimation needs at least one counting qubit")
    if num_eigenstate_qubits < 1:
        raise CircuitError("phase estimation needs at least one eigenstate qubit")

    total = num_counting_qubits + num_eigenstate_qubits
    qubits = list(range(total))
    counting = qubits[:num_counting_qubits]
    eigenstate = qubits[num_counting_qubits]

    gate_list: List[Gate] = []
    # Superpose the counting register and prepare the eigenstate.
    for qubit in counting:
        gate_list.append(g.hadamard(qubit))
    gate_list.append(g.rx(eigenstate, 90.0))

    # Controlled powers of U: counting qubit k controls U^(2^k).
    for power, qubit in enumerate(counting):
        angle = phase_angle * (2 ** power)
        # Reduce the angle modulo a full turn: only the fractional part of
        # the phase matters, and it keeps gate durations bounded.
        angle = angle % 360.0
        if angle == 0.0:
            angle = 360.0
        gate_list.append(g.controlled_phase(qubit, eigenstate, angle))

    # Inverse QFT on the counting register (controlled phases with negative
    # angles, Hadamards in reverse order).
    for i in reversed(range(num_counting_qubits)):
        for j in reversed(range(i + 1, num_counting_qubits)):
            distance = j - i
            angle = -360.0 / (2 ** (distance + 1))
            gate_list.append(g.controlled_phase(counting[j], counting[i], angle))
        gate_list.append(g.hadamard(counting[i]))

    if name is None:
        name = f"phaseest{total}" if total != 5 else "phaseest"
    return QuantumCircuit(qubits, gate_list, name=name)


def phaseest() -> QuantumCircuit:
    """The 5-qubit phase-estimation benchmark of Table 3 ("phaseest")."""
    return phase_estimation_circuit(4, 1)
