"""The 3-qubit error-correction encoder of Laforest et al. (paper Fig. 2).

The circuit is reproduced verbatim from Figure 2 of the placement paper: it
is the encoding part of the 3-qubit quantum error-correcting code, written
directly in NMR pulses over qubits ``a``, ``b`` and ``c``::

    a: Ry(90) --- ZZ(90) --- Rz(-90)
    b:            ZZ(90) --- Rz(90) --- ZZ(90) --- Rz(90) --- Ry(90)
    c: Ry(90) ------------------------- ZZ(90) --- Rz(-90)

Nine gates in total; only the two ``ZZ`` interactions and the three ``Ry``
pulses cost time (``Rz`` rotations are free in liquid-state NMR).
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Qubit


def qec3_encoder(qubits: Sequence[Qubit] = ("a", "b", "c")) -> QuantumCircuit:
    """The Figure-2 encoder on three named qubits (default ``a``, ``b``, ``c``)."""
    a, b, c = qubits
    return QuantumCircuit(
        [a, b, c],
        [
            g.ry(a, 90.0),
            g.zz(a, b, 90.0),
            g.rz(a, -90.0),
            g.rz(b, 90.0),
            g.ry(c, 90.0),
            g.zz(b, c, 90.0),
            g.rz(b, 90.0),
            g.rz(c, -90.0),
            g.ry(b, 90.0),
        ],
        name="error correction encoding",
    )


def qec3_decoder(qubits: Sequence[Qubit] = ("a", "b", "c")) -> QuantumCircuit:
    """The inverse of the encoder (gates reversed, angles negated)."""
    encoder = qec3_encoder(qubits)
    inverse_gates = []
    for gate in reversed(encoder.gates):
        angle = -gate.angle if gate.angle is not None else None
        inverse_gates.append(
            g.Gate(gate.name, gate.qubits, gate.duration, angle)
        )
    return QuantumCircuit(encoder.qubits, inverse_gates, name="error correction decoding")


def qec3_encode_decode(qubits: Sequence[Qubit] = ("a", "b", "c")) -> QuantumCircuit:
    """Encoder followed by decoder — a longer 3-qubit benchmark used in tests."""
    encoder = qec3_encoder(qubits)
    decoder = qec3_decoder(qubits)
    return QuantumCircuit(
        encoder.qubits,
        list(encoder.gates) + list(decoder.gates),
        name="error correction encode-decode",
    )
