"""The five-qubit error-correction benchmark (Knill et al. [12]).

The paper's Table 2 places the "5 bit error correction" circuit (25 gates on
5 qubits) into trans-crotonic acid.  The original experiment implemented one
round of the [[5,1,3]] perfect code; its exact pulse sequence is not
reprinted in the placement paper, so this module provides the standard
nearest-neighbour-friendly [[5,1,3]] encoder written over the NMR-flavoured
gate set, with a gate count matching the paper's (25 gates, 8 of them
two-qubit interactions along a chain of qubits).

For placement purposes only the interaction structure and the gate durations
matter; the encoder below interacts consecutive qubits ``q0-q1-q2-q3-q4``,
which is exactly the structure that lets a molecule with a five-spin chain
of fast couplings host the circuit in a single workspace — the behaviour
Table 2 reports (the original experiment likewise aligned its interactions
along the trans-crotonic backbone).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, Qubit


def qec5_encoder(qubits: Sequence[Qubit] = (0, 1, 2, 3, 4)) -> QuantumCircuit:
    """One round of [[5,1,3]] encoding, 25 gates over 5 qubits."""
    q = list(qubits)
    if len(q) != 5:
        raise ValueError("the five-qubit code needs exactly five qubits")
    gate_list: List[Gate] = [
        # Prepare the four ancilla-like qubits.
        g.ry(q[1], 90.0),
        g.ry(q[2], 90.0),
        g.ry(q[3], 90.0),
        g.ry(q[4], 90.0),
        # Entangle along the chain.
        g.zz(q[0], q[1], 90.0),
        g.rz(q[0], -90.0),
        g.ry(q[1], -90.0),
        g.zz(q[1], q[2], 90.0),
        g.rz(q[1], 90.0),
        g.ry(q[2], -90.0),
        g.zz(q[2], q[3], 90.0),
        g.rz(q[2], -90.0),
        g.ry(q[3], -90.0),
        g.zz(q[3], q[4], 90.0),
        g.rz(q[3], 90.0),
        g.ry(q[4], -90.0),
        # Second sweep completing the stabilizer structure.
        g.zz(q[0], q[1], 90.0),
        g.ry(q[0], 90.0),
        g.zz(q[1], q[2], 90.0),
        g.ry(q[1], 90.0),
        g.zz(q[2], q[3], 90.0),
        g.ry(q[2], 90.0),
        g.zz(q[3], q[4], 90.0),
        g.ry(q[3], 90.0),
        g.ry(q[0], 90.0),
    ]
    return QuantumCircuit(q, gate_list, name="5 bit error correction")


def qec5_round(qubits: Sequence[Qubit] = (0, 1, 2, 3, 4)) -> QuantumCircuit:
    """Encoder followed by its mirror (decode) — a longer 5-qubit benchmark."""
    encoder = qec5_encoder(qubits)
    mirrored: List[Gate] = []
    for gate in reversed(encoder.gates):
        angle = -gate.angle if gate.angle is not None else None
        mirrored.append(g.Gate(gate.name, gate.qubits, gate.duration, angle))
    return QuantumCircuit(
        encoder.qubits,
        list(encoder.gates) + mirrored,
        name="5 bit error correction round",
    )
