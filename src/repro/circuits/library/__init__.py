"""Benchmark circuit library (the circuits of the paper's evaluation).

Every circuit of Tables 2 and 3 is available both as a named constructor and
through the :data:`CIRCUIT_FACTORIES` registry keyed by the paper's circuit
names, which the sweep harnesses and the CLI use.

All of them — plus the parameterised families ``qft:N``, ``aqft:N``,
``cat:N``, ``hidden-stage:NxSEED``, ``random:NxGATESxSEED`` and
``random-chain:NxGATESxSEED`` — are also registered in the
string-addressable :data:`repro.registry.CIRCUITS` registry, the lookup
behind :func:`repro.registry.load_circuit` and every spec-string surface
(CLI, :class:`repro.config.RunConfig`, shard payloads).
"""

from typing import Callable, Dict, List

from repro.circuits.circuit import QuantumCircuit
from repro.registry import CIRCUITS
from repro.circuits.library.cat_state import cat_state_circuit, pseudo_cat_state_10q
from repro.circuits.library.phase_estimation import phase_estimation_circuit, phaseest
from repro.circuits.library.qec3 import qec3_decoder, qec3_encode_decode, qec3_encoder
from repro.circuits.library.qec5 import qec5_encoder, qec5_round
from repro.circuits.library.qft import (
    approximate_qft_circuit,
    aqft9,
    aqft12,
    qft6,
    qft_circuit,
)
from repro.circuits.library.steane import (
    steane_syndrome_circuit,
    steane_xz1,
    steane_xz2,
)

#: Registry of the paper's benchmark circuits by their names in the tables.
CIRCUIT_FACTORIES: Dict[str, Callable[[], QuantumCircuit]] = {
    "error-correction-encoding": qec3_encoder,
    "5-bit-error-correction": qec5_encoder,
    "pseudo-cat-state": pseudo_cat_state_10q,
    "phaseest": phaseest,
    "qft6": qft6,
    "aqft9": aqft9,
    "aqft12": aqft12,
    "steane-x/z1": steane_xz1,
    "steane-x/z2": steane_xz2,
}


def hidden_stage_instance(num_qubits: int, seed: int = 0) -> QuantumCircuit:
    """The Table-4 "hidden stage" workload as a registry-buildable circuit."""
    from repro.circuits.random_circuits import hidden_stage_circuit

    return hidden_stage_circuit(num_qubits, seed=seed).circuit


def random_circuit_instance(
    num_qubits: int, num_gates: int = 0, seed: int = 0
) -> QuantumCircuit:
    """The ``random:NxGATESxSEED`` family (arbitrary-pair two-qubit gates).

    ``GATES`` defaults (also for an explicit 0) to ``3 * N``; the seed
    is baked into the circuit name so differently seeded instances stay
    distinguishable in sweep labels and reports.
    """
    from repro.circuits.random_circuits import random_two_qubit_circuit

    if num_gates == 0:
        num_gates = 3 * num_qubits
    circuit = random_two_qubit_circuit(num_qubits, num_gates, seed=seed)
    circuit.name = f"random-{num_qubits}q-{num_gates}g-s{seed}"
    return circuit


def random_chain_instance(
    num_qubits: int, num_gates: int = 0, seed: int = 0
) -> QuantumCircuit:
    """The ``random-chain:NxGATESxSEED`` family (nearest-neighbour gates).

    Interactions all lie on the identity chain, so the circuit embeds as
    a single workspace into any host containing an N-node path — the
    shape used by the large-host heuristic-placer benchmarks.
    """
    from repro.circuits.random_circuits import random_nearest_neighbour_circuit

    if num_gates == 0:
        num_gates = 3 * num_qubits
    circuit = random_nearest_neighbour_circuit(num_qubits, num_gates, seed=seed)
    circuit.name = f"random-chain-{num_qubits}q-{num_gates}g-s{seed}"
    return circuit


for _name, _factory in CIRCUIT_FACTORIES.items():
    CIRCUITS.add(_name, _factory, description="paper benchmark circuit")
del _name, _factory

CIRCUITS.add("qft", qft_circuit, min_params=1,
             description="exact QFT on N qubits")
CIRCUITS.add("aqft", approximate_qft_circuit, min_params=1,
             description="approximate QFT on N qubits (default degree)")
CIRCUITS.add("cat", cat_state_circuit, min_params=1,
             description="pseudo-cat-state preparation on N qubits")
CIRCUITS.add("hidden-stage", hidden_stage_instance, min_params=1, max_params=2,
             description="Table-4 hidden-stage workload on N qubits "
                         "(optional seed)")
CIRCUITS.add("random", random_circuit_instance, min_params=1, max_params=3,
             description="random arbitrary-pair circuit on N qubits "
                         "(optional gate count, default 3N, and seed)")
CIRCUITS.add("random-chain", random_chain_instance, min_params=1, max_params=3,
             description="random nearest-neighbour circuit on N qubits "
                         "(optional gate count, default 3N, and seed)")


def benchmark_circuit(name: str) -> QuantumCircuit:
    """Build a benchmark circuit from the registry by its paper name."""
    try:
        factory = CIRCUIT_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(CIRCUIT_FACTORIES))
        raise KeyError(f"unknown circuit {name!r}; known circuits: {known}") from None
    return factory()


def benchmark_circuit_names() -> List[str]:
    """The registry's circuit names, sorted."""
    return sorted(CIRCUIT_FACTORIES)


__all__ = [
    "qec3_encoder",
    "qec3_decoder",
    "qec3_encode_decode",
    "qec5_encoder",
    "qec5_round",
    "cat_state_circuit",
    "pseudo_cat_state_10q",
    "phase_estimation_circuit",
    "phaseest",
    "qft_circuit",
    "approximate_qft_circuit",
    "qft6",
    "aqft9",
    "aqft12",
    "steane_syndrome_circuit",
    "steane_xz1",
    "steane_xz2",
    "CIRCUIT_FACTORIES",
    "benchmark_circuit",
    "benchmark_circuit_names",
    "hidden_stage_instance",
    "random_circuit_instance",
    "random_chain_instance",
]
