"""Pseudo-cat state preparation (Negrevergne et al. [20]).

Table 2 of the paper places a 54-gate, 10-qubit "pseudo-cat state
preparation" circuit into the 12-qubit histidine molecule.  A (pseudo-)cat
state is the GHZ-like state prepared by putting one qubit into superposition
and entangling the rest with a ladder of controlled-NOT equivalents.  At the
pulse level each CNOT equivalent becomes one ``ZZ(90)`` interaction dressed
with single-qubit rotations, which is how the gate count reaches ~54 for 10
qubits.

The ladder entangles *consecutive* qubits, so the circuit's interaction
graph is a path — exactly the structure that embeds into a molecule's
chemical-bond backbone in a single workspace, which is the behaviour Table 2
reports for the histidine experiment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, Qubit
from repro.exceptions import CircuitError


def cat_state_circuit(
    num_qubits: int = 10,
    qubits: Optional[Sequence[Qubit]] = None,
    name: Optional[str] = None,
) -> QuantumCircuit:
    """Pulse-level pseudo-cat state preparation over ``num_qubits`` qubits.

    The first qubit receives a ``Ry(90)`` pulse; every link of the ladder is
    one ``ZZ(90)`` interaction between consecutive qubits, dressed with the
    single-qubit rotations of the standard NMR CNOT decomposition (five
    timed or free pulses per link), giving ``1 + 6 * (n - 1)`` gates — 55 for
    ten qubits, within one pulse of the experiment's 54.
    """
    if num_qubits < 2:
        raise CircuitError("a cat state needs at least two qubits")
    if qubits is None:
        qubits = list(range(num_qubits))
    else:
        qubits = list(qubits)
        if len(qubits) != num_qubits:
            raise CircuitError("qubit label list does not match num_qubits")

    gate_list: List[Gate] = [g.ry(qubits[0], 90.0)]
    for control, target in zip(qubits, qubits[1:]):
        gate_list.extend(
            [
                g.ry(target, 90.0),
                g.zz(control, target, 90.0),
                g.rz(control, -90.0),
                g.rz(target, 90.0),
                g.rx(target, 90.0),
                g.ry(target, -90.0),
            ]
        )
    if name is None:
        name = "pseudo-cat state preparation"
    return QuantumCircuit(qubits, gate_list, name=name)


def pseudo_cat_state_10q() -> QuantumCircuit:
    """The 10-qubit pseudo-cat state preparation of Table 2."""
    return cat_state_circuit(10)
