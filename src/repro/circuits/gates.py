"""Gate primitives for the quantum-circuit intermediate representation.

The placement problem of Maslov, Falconer and Mosca only needs to know, for
every gate,

* which logical qubits it acts on (one or two of them), and
* its *relative duration* ``T(G)`` — how many "base units" of interaction
  time the gate needs.  For a rotation gate the relative duration is
  proportional to the rotation angle (a 180-degree pulse takes twice as long
  as a 90-degree pulse); ``Rz`` rotations are free in liquid-state NMR
  because they are implemented by a change of the rotating reference frame.

The classes below additionally carry enough structure (names, angles, and —
via :mod:`repro.simulation.unitaries` — unitary matrices) to levelize
circuits, rewrite them over different gate libraries and verify routed
circuits by simulation.

Qubit labels may be any hashable object; the NMR molecules use strings such
as ``"C1"`` or ``"M"`` while synthetic benchmarks use integers.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Optional, Sequence, Tuple

from repro.exceptions import GateError

Qubit = Hashable

#: Relative duration of a 90-degree pulse; every other angle is scaled
#: against this reference, matching the paper's convention
#: ``T(Rx(180)) = 2 * T(Rx(90))``.
REFERENCE_ANGLE_DEGREES = 90.0


def _normalize_angle(angle: float) -> float:
    """Return ``angle`` as a float, rejecting non-finite values."""
    value = float(angle)
    if math.isnan(value) or math.isinf(value):
        raise GateError(f"gate angle must be finite, got {angle!r}")
    return value


class Gate:
    """A single- or two-qubit gate with a relative duration.

    Parameters
    ----------
    name:
        Human-readable mnemonic (``"Rx"``, ``"ZZ"``, ``"SWAP"``...).
    qubits:
        The logical qubits the gate acts on (length 1 or 2, no repeats).
    duration:
        The relative duration ``T(G)``.  The physical operating time of the
        gate once placed is ``W(P(q_i), P(q_j)) * duration``.
    angle:
        Optional rotation angle in degrees, kept for pretty-printing,
        decomposition and simulation.
    """

    __slots__ = ("name", "qubits", "duration", "angle")

    def __init__(
        self,
        name: str,
        qubits: Sequence[Qubit],
        duration: float,
        angle: Optional[float] = None,
    ) -> None:
        qubits = tuple(qubits)
        if not 1 <= len(qubits) <= 2:
            raise GateError(
                f"gates must act on one or two qubits, got {len(qubits)} "
                f"for gate {name!r}"
            )
        if len(qubits) == 2 and qubits[0] == qubits[1]:
            raise GateError(
                f"two-qubit gate {name!r} must act on distinct qubits, "
                f"got {qubits!r}"
            )
        if duration < 0:
            raise GateError(
                f"gate duration must be non-negative, got {duration!r}"
            )
        self.name = str(name)
        self.qubits = qubits
        self.duration = float(duration)
        self.angle = None if angle is None else _normalize_angle(angle)

    # -- basic queries ----------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on (1 or 2)."""
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        """``True`` for two-qubit gates."""
        return len(self.qubits) == 2

    @property
    def is_free(self) -> bool:
        """``True`` when the gate takes no time at all (e.g. NMR ``Rz``)."""
        return self.duration == 0.0

    def interaction(self) -> Optional[Tuple[Qubit, Qubit]]:
        """Return the unordered qubit pair used by a two-qubit gate.

        Returns ``None`` for single-qubit gates.  The pair is returned in a
        canonical (sorted by ``repr``) order so that callers can use it as a
        dictionary key for an undirected interaction.
        """
        if not self.is_two_qubit:
            return None
        a, b = self.qubits
        return (a, b) if repr(a) <= repr(b) else (b, a)

    # -- transformations ---------------------------------------------------

    def remap(self, mapping: dict) -> "Gate":
        """Return a copy of the gate with qubits relabelled via ``mapping``.

        Qubits absent from ``mapping`` are kept unchanged.
        """
        new_qubits = tuple(mapping.get(q, q) for q in self.qubits)
        return Gate(self.name, new_qubits, self.duration, self.angle)

    def with_duration(self, duration: float) -> "Gate":
        """Return a copy of the gate with a different relative duration."""
        return Gate(self.name, self.qubits, duration, self.angle)

    # -- dunder -------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.angle is not None:
            return (
                f"{self.name}({self.angle:g})"
                f"[{', '.join(map(str, self.qubits))}]"
            )
        return f"{self.name}[{', '.join(map(str, self.qubits))}]"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        return (
            self.name == other.name
            and self.qubits == other.qubits
            and self.duration == other.duration
            and self.angle == other.angle
        )

    def __hash__(self) -> int:
        return hash((self.name, self.qubits, self.duration, self.angle))


# ---------------------------------------------------------------------------
# Rotation gates
# ---------------------------------------------------------------------------


def _rotation_duration(angle_degrees: float) -> float:
    """Relative duration of a pulse of ``angle_degrees``.

    Proportional to the absolute angle, normalised so that a 90-degree
    rotation takes one unit.
    """
    return abs(_normalize_angle(angle_degrees)) / REFERENCE_ANGLE_DEGREES


def rx(qubit: Qubit, angle: float = 90.0) -> Gate:
    """X-axis rotation ``Rx(angle)``; duration proportional to the angle."""
    return Gate("Rx", (qubit,), _rotation_duration(angle), angle)


def ry(qubit: Qubit, angle: float = 90.0) -> Gate:
    """Y-axis rotation ``Ry(angle)``; duration proportional to the angle."""
    return Gate("Ry", (qubit,), _rotation_duration(angle), angle)


def rz(qubit: Qubit, angle: float = 90.0) -> Gate:
    """Z-axis rotation ``Rz(angle)``.

    Free (zero duration) — in liquid-state NMR it is implemented by a change
    of the rotating reference frame and requires neither a pulse nor a delay.
    """
    return Gate("Rz", (qubit,), 0.0, angle)


def zz(qubit_a: Qubit, qubit_b: Qubit, angle: float = 90.0) -> Gate:
    """Two-qubit Ising interaction ``ZZ(angle)``.

    Duration proportional to the angle; ``ZZ(90)`` takes one unit of the
    coupling delay between the two physical qubits it is placed onto.
    """
    return Gate("ZZ", (qubit_a, qubit_b), _rotation_duration(angle), angle)


def cnot(control: Qubit, target: Qubit) -> Gate:
    """Controlled-NOT gate.

    Up to single-qubit rotations a CNOT is equivalent to ``ZZ(90)``; its
    relative duration is therefore one coupling unit.  Use
    :func:`repro.circuits.decompose.cnot_to_zz` to rewrite it over the NMR
    gate library explicitly.
    """
    return Gate("CNOT", (control, target), 1.0)


def cz(control: Qubit, target: Qubit) -> Gate:
    """Controlled-Z gate; like CNOT it costs one coupling unit."""
    return Gate("CZ", (control, target), 1.0)


def controlled_phase(control: Qubit, target: Qubit, angle: float) -> Gate:
    """Controlled phase rotation used by the Quantum Fourier Transform.

    The two-qubit part of a controlled ``R_k`` phase is a ``ZZ`` rotation by
    half the phase angle, so the duration scales with ``angle / 2`` relative
    to a 90-degree interaction.
    """
    return Gate(
        "CPHASE",
        (control, target),
        _rotation_duration(angle / 2.0),
        angle,
    )


def swap(qubit_a: Qubit, qubit_b: Qubit) -> Gate:
    """SWAP gate exchanging two qubit values.

    A SWAP is three CNOTs, i.e. three uses of the coupling; this matches the
    paper's convention of ``T(G) = 3`` for a "maximal length" two-qubit gate
    (any two-qubit unitary needs at most three uses of an interaction).
    """
    return Gate("SWAP", (qubit_a, qubit_b), 3.0)


def hadamard(qubit: Qubit) -> Gate:
    """Hadamard gate, counted as a single 90-degree-equivalent pulse."""
    return Gate("H", (qubit,), 1.0)


def pauli_x(qubit: Qubit) -> Gate:
    """Pauli X (a 180-degree X rotation up to phase)."""
    return Gate("X", (qubit,), 2.0, 180.0)


def pauli_y(qubit: Qubit) -> Gate:
    """Pauli Y (a 180-degree Y rotation up to phase)."""
    return Gate("Y", (qubit,), 2.0, 180.0)


def pauli_z(qubit: Qubit) -> Gate:
    """Pauli Z (a 180-degree Z rotation — free in NMR)."""
    return Gate("Z", (qubit,), 0.0, 180.0)


def generic_1q(qubit: Qubit, duration: float = 1.0, name: str = "U1") -> Gate:
    """A generic single-qubit gate with an explicit relative duration."""
    return Gate(name, (qubit,), duration)


def generic_2q(
    qubit_a: Qubit,
    qubit_b: Qubit,
    duration: float = 1.0,
    name: str = "U2",
) -> Gate:
    """A generic two-qubit gate with an explicit relative duration."""
    return Gate(name, (qubit_a, qubit_b), duration)


#: Names of gates that, in the NMR model, do not consume any time.
FREE_GATE_NAMES = frozenset({"Rz", "Z"})


def total_duration(gates: Iterable[Gate]) -> float:
    """Sum of relative durations of ``gates`` (an order-free lower bound)."""
    return sum(g.duration for g in gates)
