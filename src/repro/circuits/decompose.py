"""Gate decompositions and rewriting to the NMR gate library.

The paper works with the complete gate library {``Rx``, ``Ry``, ``Rz``,
``ZZ``}: every circuit over single-qubit gates and CNOTs "can be easily
rewritten in terms of single qubit rotations and ZZ(90) gates, and such a
rewriting does not change a particular instance of the associated placement
problem".  The rewriters below implement exactly that: the two-qubit content
of every gate becomes ``ZZ`` rotations of the same total duration on the same
qubit pair, so interaction graphs — and therefore placements — are preserved,
while single-qubit dressing is expressed with ``Rx``/``Ry`` pulses and free
``Rz`` rotations.

Multi-qubit gates (only the Toffoli is provided, as the standard six-CNOT
construction) must be decomposed before a circuit becomes a valid placement
input, since Definition 2 restricts levels to one- and two-qubit gates.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, Qubit
from repro.exceptions import CircuitError


def cnot_to_zz(control: Qubit, target: Qubit) -> List[Gate]:
    """Decompose a CNOT into the NMR library.

    The construction is the textbook one, ``CNOT = (I x H) . CZ . (I x H)``,
    with the Hadamards written as ``Rz(90) Rx(90) Rz(90)`` pulses and the
    controlled-Z as a ``ZZ(90)`` interaction dressed with free ``Rz``
    rotations.  Only one two-qubit interaction and two timed single-qubit
    pulses are needed; the result equals CNOT up to a global phase.
    """
    return [
        g.rz(target, 90.0),
        g.rx(target, 90.0),
        g.rz(target, 90.0),
        g.rz(control, -90.0),
        g.rz(target, -90.0),
        g.zz(control, target, 90.0),
        g.rz(target, 90.0),
        g.rx(target, 90.0),
        g.rz(target, 90.0),
    ]


def cz_to_zz(control: Qubit, target: Qubit) -> List[Gate]:
    """Decompose a controlled-Z gate into ``ZZ(90)`` plus free ``Rz`` gates."""
    return [
        g.rz(control, -90.0),
        g.rz(target, -90.0),
        g.zz(control, target, 90.0),
    ]


def cphase_to_zz(control: Qubit, target: Qubit, angle: float) -> List[Gate]:
    """Decompose a controlled phase ``R(angle)`` into a ``ZZ(-angle/2)`` core.

    ``diag(1, 1, 1, e^{i angle})`` equals, up to global phase,
    ``(Rz(angle/2) x Rz(angle/2)) . ZZ(-angle/2)``; the ``Rz`` dressings are
    free, so the timed content is a single ``ZZ`` rotation of half the phase
    angle.
    """
    half = angle / 2.0
    return [
        g.rz(control, half),
        g.rz(target, half),
        g.zz(control, target, -half),
    ]


def hadamard_to_rotations(qubit: Qubit) -> List[Gate]:
    """Hadamard as ``Rz(90) . Rx(90) . Rz(90)`` (one timed pulse)."""
    return [g.rz(qubit, 90.0), g.rx(qubit, 90.0), g.rz(qubit, 90.0)]


def swap_to_cnots(qubit_a: Qubit, qubit_b: Qubit) -> List[Gate]:
    """SWAP as three alternating CNOTs."""
    return [
        g.cnot(qubit_a, qubit_b),
        g.cnot(qubit_b, qubit_a),
        g.cnot(qubit_a, qubit_b),
    ]


def toffoli(control_a: Qubit, control_b: Qubit, target: Qubit) -> List[Gate]:
    """Standard six-CNOT Toffoli decomposition (T gates modelled as free Rz).

    The single-qubit T / T-dagger gates are Z-axis rotations by 45 degrees and
    therefore cost nothing in the NMR timing model; the placement-relevant
    content is the six CNOTs over the three qubit pairs.
    """
    t = lambda q: g.rz(q, 45.0)  # noqa: E731 - tiny local helper
    tdg = lambda q: g.rz(q, -45.0)  # noqa: E731
    return [
        g.hadamard(target),
        g.cnot(control_b, target),
        tdg(target),
        g.cnot(control_a, target),
        t(target),
        g.cnot(control_b, target),
        tdg(target),
        g.cnot(control_a, target),
        t(control_b),
        t(target),
        g.hadamard(target),
        g.cnot(control_a, control_b),
        t(control_a),
        tdg(control_b),
        g.cnot(control_a, control_b),
    ]


_TWO_QUBIT_REWRITERS = {
    "CNOT": lambda gate: cnot_to_zz(*gate.qubits),
    "CZ": lambda gate: cz_to_zz(*gate.qubits),
    "CPHASE": lambda gate: cphase_to_zz(gate.qubits[0], gate.qubits[1], gate.angle),
    "SWAP": lambda gate: [
        zz_gate
        for cnot_gate in swap_to_cnots(*gate.qubits)
        for zz_gate in cnot_to_zz(*cnot_gate.qubits)
    ],
}

_ONE_QUBIT_REWRITERS = {
    "H": lambda gate: hadamard_to_rotations(gate.qubits[0]),
    "X": lambda gate: [g.rx(gate.qubits[0], 180.0)],
    "Y": lambda gate: [g.ry(gate.qubits[0], 180.0)],
    "Z": lambda gate: [g.rz(gate.qubits[0], 180.0)],
}

#: Gate names that are already part of the NMR library.
NMR_NATIVE_NAMES = frozenset({"Rx", "Ry", "Rz", "ZZ"})


def rewrite_gate_to_nmr(gate: Gate) -> List[Gate]:
    """Rewrite a single gate over the {Rx, Ry, Rz, ZZ} library.

    Gates that are already native are returned unchanged (in a one-element
    list).  Unknown gate names pass through untouched so that callers using
    generic gates with explicit durations are not broken; the timing model
    only needs durations and qubit pairs.
    """
    if gate.name in NMR_NATIVE_NAMES:
        return [gate]
    if gate.name in _TWO_QUBIT_REWRITERS:
        return _TWO_QUBIT_REWRITERS[gate.name](gate)
    if gate.name in _ONE_QUBIT_REWRITERS:
        return _ONE_QUBIT_REWRITERS[gate.name](gate)
    return [gate]


def rewrite_to_nmr(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite a whole circuit over the NMR gate library.

    The rewriting preserves (a) which qubit pairs interact and (b) the total
    two-qubit relative duration per gate, so the circuit placement problem
    instance is unchanged, as observed in Section 2 of the paper.
    """
    rewritten: List[Gate] = []
    for gate in circuit:
        rewritten.extend(rewrite_gate_to_nmr(gate))
    return QuantumCircuit(circuit.qubits, rewritten, name=f"{circuit.name}-nmr")


def expand_multi_qubit_gate(name: str, qubits: Iterable[Qubit]) -> List[Gate]:
    """Expand a named multi-qubit gate into one- and two-qubit gates.

    Only the Toffoli (``"CCX"`` / ``"TOFFOLI"``) is supported; anything else
    raises :class:`~repro.exceptions.CircuitError` because Definition 2 of
    the paper requires circuits over at most two-qubit gates.
    """
    qubits = list(qubits)
    if name.upper() in {"CCX", "TOFFOLI"} and len(qubits) == 3:
        return toffoli(*qubits)
    raise CircuitError(
        f"cannot expand {name!r} on {len(qubits)} qubits into two-qubit gates"
    )
