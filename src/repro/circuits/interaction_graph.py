"""Interaction graphs of quantum circuits.

The *interaction graph* of a (sub)circuit has one node per logical qubit and
one edge per unordered qubit pair that some two-qubit gate acts on.  The
placement algorithm asks whether this graph embeds (as a subgraph
monomorphism) into the *adjacency graph* of fast physical interactions: if it
does, every two-qubit gate of the subcircuit can be executed along a fast
interaction without inserting SWAPs.

Graphs are represented as :class:`networkx.Graph` with edge attributes:

``count``
    How many two-qubit gates use the interaction.
``duration``
    Total relative duration of the gates using the interaction (taking the
    "an interaction need not be used more than three times per two-qubit
    unitary" cap into account is the scheduler's job, not the graph's).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, Qubit


def interaction_graph(
    circuit_or_gates: "QuantumCircuit | Iterable[Gate]",
    include_isolated_qubits: bool = False,
) -> nx.Graph:
    """Build the interaction graph of a circuit or gate sequence.

    Parameters
    ----------
    circuit_or_gates:
        Either a :class:`QuantumCircuit` or any iterable of gates.
    include_isolated_qubits:
        When a full circuit is given and this flag is set, qubits that never
        take part in a two-qubit gate are still added as isolated nodes.
    """
    graph = nx.Graph()
    if isinstance(circuit_or_gates, QuantumCircuit):
        gates: Iterable[Gate] = circuit_or_gates.gates
        if include_isolated_qubits:
            graph.add_nodes_from(circuit_or_gates.qubits)
    else:
        gates = circuit_or_gates

    for gate in gates:
        pair = gate.interaction()
        if pair is None:
            continue
        a, b = pair
        if graph.has_edge(a, b):
            graph[a][b]["count"] += 1
            graph[a][b]["duration"] += gate.duration
        else:
            graph.add_edge(a, b, count=1, duration=gate.duration)
    return graph


def gates_embed(
    gates: Iterable[Gate],
    adjacency_graph: nx.Graph,
) -> bool:
    """Cheap necessary check that a gate set *could* embed into ``adjacency_graph``.

    The exact test is a subgraph monomorphism search
    (:mod:`repro.core.monomorphism`).  This function only performs the fast
    necessary conditions used to prune hopeless workspaces early:

    * no more interaction-graph nodes than adjacency-graph nodes,
    * no more interaction-graph edges than adjacency-graph edges,
    * the sorted degree sequence of the interaction graph is dominated by
      that of the adjacency graph.
    """
    pattern = interaction_graph(gates)
    if pattern.number_of_nodes() > adjacency_graph.number_of_nodes():
        return False
    if pattern.number_of_edges() > adjacency_graph.number_of_edges():
        return False
    pattern_degrees = sorted((d for _, d in pattern.degree()), reverse=True)
    host_degrees = sorted((d for _, d in adjacency_graph.degree()), reverse=True)
    for p_deg, h_deg in zip(pattern_degrees, host_degrees):
        if p_deg > h_deg:
            return False
    return True


def interaction_pairs(gates: Iterable[Gate]) -> List[Tuple[Qubit, Qubit]]:
    """Distinct unordered interaction pairs of a gate sequence, in first-use order."""
    seen = set()
    pairs: List[Tuple[Qubit, Qubit]] = []
    for gate in gates:
        pair = gate.interaction()
        if pair is not None and pair not in seen:
            seen.add(pair)
            pairs.append(pair)
    return pairs


def is_line_graph_circuit(circuit: QuantumCircuit) -> bool:
    """``True`` when the circuit's interaction graph is a simple path.

    Such circuits fit the linear-nearest-neighbour architecture directly;
    the paper notes that realistic NMR circuits usually do *not* have this
    property (e.g. the QFT interaction graph is complete).
    """
    graph = interaction_graph(circuit)
    if graph.number_of_nodes() == 0:
        return True
    if not nx.is_connected(graph):
        return False
    degrees = [d for _, d in graph.degree()]
    return max(degrees) <= 2 and degrees.count(1) == (2 if len(degrees) > 1 else 0)


def densest_interaction(circuit: QuantumCircuit) -> Optional[Tuple[Qubit, Qubit]]:
    """The interaction pair used by the most two-qubit gates (ties broken arbitrarily)."""
    counts = circuit.interaction_counts()
    if not counts:
        return None
    return max(counts, key=counts.get)
