"""A small human-readable text format for circuits ("pulse files").

The format is line-oriented, comment-friendly and intentionally close to how
the paper's figures list pulse sequences::

    # 3-qubit error-correction encoder
    qubits a b c
    Ry(90) a
    ZZ(90) a b
    Rz(-90) a
    Rz(90) b
    Ry(90) c
    ZZ(90) b c
    Ry(90) b

Grammar per non-comment line:

* ``qubits <label> <label> ...`` — declares the qubit labels (required,
  first non-comment line);
* ``<Name>(<angle>) <q> [<q2>]`` — a gate with an explicit angle, whose
  duration is derived from the gate name and angle via the constructors in
  :mod:`repro.circuits.gates`;
* ``<Name> <q> [<q2>] [duration=<t>]`` — a named gate without an angle;
  CNOT/CZ/SWAP/H/X/Y/Z map to their constructors, any other name becomes a
  generic gate with the given (default 1.0) duration.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import SerializationError

_GATE_WITH_ANGLE = re.compile(r"^(?P<name>[A-Za-z_][\w]*)\((?P<angle>-?\d+(?:\.\d+)?)\)$")

_ANGLE_CONSTRUCTORS: Dict[str, Callable[..., Gate]] = {
    "RX": lambda qubits, angle: g.rx(qubits[0], angle),
    "RY": lambda qubits, angle: g.ry(qubits[0], angle),
    "RZ": lambda qubits, angle: g.rz(qubits[0], angle),
    "ZZ": lambda qubits, angle: g.zz(qubits[0], qubits[1], angle),
    "CPHASE": lambda qubits, angle: g.controlled_phase(qubits[0], qubits[1], angle),
}

_PLAIN_CONSTRUCTORS: Dict[str, Callable[..., Gate]] = {
    "CNOT": lambda qubits: g.cnot(qubits[0], qubits[1]),
    "CX": lambda qubits: g.cnot(qubits[0], qubits[1]),
    "CZ": lambda qubits: g.cz(qubits[0], qubits[1]),
    "SWAP": lambda qubits: g.swap(qubits[0], qubits[1]),
    "H": lambda qubits: g.hadamard(qubits[0]),
    "X": lambda qubits: g.pauli_x(qubits[0]),
    "Y": lambda qubits: g.pauli_y(qubits[0]),
    "Z": lambda qubits: g.pauli_z(qubits[0]),
}


def loads(text: str, name: str = "circuit") -> QuantumCircuit:
    """Parse a circuit from its text representation."""
    qubits: List[str] = []
    gate_list: List[Gate] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        head = tokens[0]
        if head.lower() == "qubits":
            if qubits:
                raise SerializationError(
                    f"line {line_number}: duplicate 'qubits' declaration"
                )
            qubits = tokens[1:]
            if not qubits:
                raise SerializationError(
                    f"line {line_number}: 'qubits' declaration needs labels"
                )
            continue
        if not qubits:
            raise SerializationError(
                f"line {line_number}: gate before the 'qubits' declaration"
            )
        gate_list.append(_parse_gate_line(tokens, line_number))
    if not qubits:
        raise SerializationError("no 'qubits' declaration found")
    try:
        return QuantumCircuit(qubits, gate_list, name=name)
    except Exception as exc:
        raise SerializationError(f"invalid circuit: {exc}") from exc


def _parse_gate_line(tokens: List[str], line_number: int) -> Gate:
    """Parse one gate line that has already been split into tokens."""
    head = tokens[0]
    duration = None
    operands = []
    for token in tokens[1:]:
        if token.startswith("duration="):
            duration = float(token.split("=", 1)[1])
        else:
            operands.append(token)

    match = _GATE_WITH_ANGLE.match(head)
    if match:
        gate_name = match.group("name").upper()
        angle = float(match.group("angle"))
        constructor = _ANGLE_CONSTRUCTORS.get(gate_name)
        if constructor is None:
            raise SerializationError(
                f"line {line_number}: unknown parametrised gate {gate_name!r}"
            )
        expected = 2 if gate_name in {"ZZ", "CPHASE"} else 1
        if len(operands) != expected:
            raise SerializationError(
                f"line {line_number}: {gate_name} expects {expected} qubit(s), "
                f"got {len(operands)}"
            )
        return constructor(operands, angle)

    gate_name = head.upper()
    constructor = _PLAIN_CONSTRUCTORS.get(gate_name)
    if constructor is not None:
        expected = 1 if gate_name in {"H", "X", "Y", "Z"} else 2
        if len(operands) != expected:
            raise SerializationError(
                f"line {line_number}: {gate_name} expects {expected} qubit(s), "
                f"got {len(operands)}"
            )
        return constructor(operands)

    # Generic named gate with an explicit duration.
    if len(operands) == 1:
        return g.generic_1q(operands[0], duration if duration is not None else 1.0, head)
    if len(operands) == 2:
        return g.generic_2q(
            operands[0], operands[1], duration if duration is not None else 1.0, head
        )
    raise SerializationError(
        f"line {line_number}: gate {head!r} must have one or two qubit operands"
    )


def dumps(circuit: QuantumCircuit) -> str:
    """Serialize a circuit to the text format accepted by :func:`loads`."""
    lines = [f"# {circuit.name}", "qubits " + " ".join(str(q) for q in circuit.qubits)]
    for gate in circuit:
        operands = " ".join(str(q) for q in gate.qubits)
        if gate.angle is not None and gate.name.upper() in _ANGLE_CONSTRUCTORS:
            lines.append(f"{gate.name}({gate.angle:g}) {operands}")
        elif gate.name.upper() in _PLAIN_CONSTRUCTORS:
            lines.append(f"{gate.name} {operands}")
        else:
            lines.append(f"{gate.name} {operands} duration={gate.duration:g}")
    return "\n".join(lines) + "\n"


def load(path: str) -> QuantumCircuit:
    """Read a circuit from a file path."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), name=path)


def dump(circuit: QuantumCircuit, path: str) -> None:
    """Write a circuit to a file path (crash-safe: temp file + rename)."""
    # Imported here: analysis.serialization transitively imports repro.circuits.
    from repro.analysis.serialization import atomic_write_text

    atomic_write_text(path, dumps(circuit))
