"""Levelization: grouping gates into layers of disjoint-qubit operations.

The paper assumes input circuits are *levelled* — gates that can run in
parallel appear in a single logic level.  Levelization is a standard greedy
"as soon as possible" pass: walk the gate list in order and put each gate in
the earliest level where none of its qubits is already busy and that does not
reorder it with respect to earlier gates on the same qubits.

The level structure is consumed by the sequential-levels runtime model
(:func:`repro.timing.scheduler.sequential_level_runtime`) and by the SWAP
stage builder, which emits one level per layer of parallel SWAPs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, Qubit


def levelize(circuit: QuantumCircuit) -> List[List[Gate]]:
    """Group the circuit's gates into ASAP levels.

    Gates within a level act on pairwise-disjoint qubits; the relative order
    of gates sharing a qubit is preserved.  Zero-duration gates participate
    like any other gate (they still impose ordering).

    Returns the list of levels; concatenating the levels in order yields a
    reordering of the original gate list that is equivalent under the
    commutation of gates on disjoint qubits.
    """
    qubit_level: Dict[Qubit, int] = {q: -1 for q in circuit.qubits}
    levels: List[List[Gate]] = []
    for gate in circuit:
        earliest = 1 + max(qubit_level[q] for q in gate.qubits)
        while len(levels) <= earliest:
            levels.append([])
        levels[earliest].append(gate)
        for qubit in gate.qubits:
            qubit_level[qubit] = earliest
    return levels


def circuit_depth(circuit: QuantumCircuit) -> int:
    """Number of ASAP levels of the circuit (its logic depth)."""
    return len(levelize(circuit))


def from_levels(
    qubits: Sequence[Qubit],
    levels: Sequence[Sequence[Gate]],
    name: str = "circuit",
) -> QuantumCircuit:
    """Build a circuit from an explicit level structure.

    Levels are flattened in order; the function validates that gates within a
    level touch disjoint qubits, which is the defining property of a level.
    """
    circuit = QuantumCircuit(qubits, name=name)
    for index, level in enumerate(levels):
        busy: set = set()
        for gate in level:
            overlap = busy.intersection(gate.qubits)
            if overlap:
                from repro.exceptions import CircuitError

                raise CircuitError(
                    f"level {index} reuses qubit(s) {sorted(map(str, overlap))}"
                )
            busy.update(gate.qubits)
            circuit.append(gate)
    return circuit


def two_qubit_depth(circuit: QuantumCircuit) -> int:
    """Depth counting only the two-qubit gates.

    Single-qubit gates are dropped before levelizing; this is the depth
    measure most relevant to placement quality because two-qubit interactions
    dominate the runtime in weak-coupling technologies.
    """
    two_qubit_only = QuantumCircuit(
        circuit.qubits,
        (g for g in circuit if g.is_two_qubit),
        name=circuit.name,
    )
    return len(levelize(two_qubit_only))
