"""Quantum circuit container.

A :class:`QuantumCircuit` is an ordered list of one- and two-qubit
:class:`~repro.circuits.gates.Gate` objects over a fixed set of logical
qubits.  The placement algorithms never need more structure than this: the
gate order (for the asynchronous runtime model and for greedy workspace
extraction), the qubits, and each gate's relative duration.

Circuits can also be *levelized* — grouped into layers of gates that act on
disjoint qubits — via :mod:`repro.circuits.levelize`; the sequential-levels
runtime model consumes that form.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuits.gates import Gate, Qubit
from repro.exceptions import CircuitError


class QuantumCircuit:
    """An ordered sequence of gates over a set of logical qubits.

    Parameters
    ----------
    qubits:
        The logical qubits of the circuit, in a fixed order.  Qubits may be
        any hashable labels.  Gates may only act on qubits from this set.
    gates:
        Optional initial gate sequence.
    name:
        Optional circuit name used in reports.
    """

    def __init__(
        self,
        qubits: Sequence[Qubit],
        gates: Optional[Iterable[Gate]] = None,
        name: str = "circuit",
    ) -> None:
        qubits = tuple(qubits)
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubit labels in {qubits!r}")
        if not qubits:
            raise CircuitError("a circuit needs at least one qubit")
        self.name = str(name)
        self._qubits: Tuple[Qubit, ...] = qubits
        self._qubit_set = frozenset(qubits)
        self._gates: List[Gate] = []
        if gates is not None:
            for gate in gates:
                self.append(gate)

    # -- construction -------------------------------------------------------

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append ``gate`` to the circuit (returns ``self`` for chaining)."""
        if not isinstance(gate, Gate):
            raise CircuitError(f"expected a Gate, got {type(gate).__name__}")
        for qubit in gate.qubits:
            if qubit not in self._qubit_set:
                raise CircuitError(
                    f"gate {gate!r} acts on unknown qubit {qubit!r}; "
                    f"circuit qubits are {self._qubits!r}"
                )
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        """Append every gate in ``gates``."""
        for gate in gates:
            self.append(gate)
        return self

    # -- basic queries -------------------------------------------------------

    @property
    def qubits(self) -> Tuple[Qubit, ...]:
        """The circuit's qubits, in declaration order."""
        return self._qubits

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""
        return tuple(self._gates)

    @property
    def num_qubits(self) -> int:
        """Number of logical qubits."""
        return len(self._qubits)

    @property
    def num_gates(self) -> int:
        """Total number of gates."""
        return len(self._gates)

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit gates."""
        return sum(1 for g in self._gates if g.is_two_qubit)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return QuantumCircuit(
                self._qubits, self._gates[index], name=self.name
            )
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return self._qubits == other._qubits and self._gates == other._gates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={self.num_gates})"
        )

    # -- derived data ---------------------------------------------------------

    def two_qubit_gates(self) -> List[Gate]:
        """The two-qubit gates, in circuit order."""
        return [g for g in self._gates if g.is_two_qubit]

    def used_qubits(self) -> Tuple[Qubit, ...]:
        """Qubits that appear in at least one gate, in first-use order."""
        seen: List[Qubit] = []
        seen_set = set()
        for gate in self._gates:
            for qubit in gate.qubits:
                if qubit not in seen_set:
                    seen.append(qubit)
                    seen_set.add(qubit)
        return tuple(seen)

    def interactions(self) -> List[Tuple[Qubit, Qubit]]:
        """Distinct unordered qubit pairs used by two-qubit gates."""
        pairs: List[Tuple[Qubit, Qubit]] = []
        seen = set()
        for gate in self._gates:
            pair = gate.interaction()
            if pair is not None and pair not in seen:
                seen.add(pair)
                pairs.append(pair)
        return pairs

    def interaction_counts(self) -> Dict[Tuple[Qubit, Qubit], int]:
        """Number of two-qubit gates per unordered interaction pair."""
        counts: Counter = Counter()
        for gate in self._gates:
            pair = gate.interaction()
            if pair is not None:
                counts[pair] += 1
        return dict(counts)

    def gate_name_counts(self) -> Dict[str, int]:
        """Histogram of gate names (useful in reports and tests)."""
        return dict(Counter(g.name for g in self._gates))

    def total_duration(self) -> float:
        """Sum of all relative gate durations (ignores parallelism)."""
        return sum(g.duration for g in self._gates)

    # -- transformations -------------------------------------------------------

    def remap(self, mapping: Dict[Qubit, Qubit], name: Optional[str] = None) -> "QuantumCircuit":
        """Return a copy with qubits relabelled according to ``mapping``.

        Qubits absent from ``mapping`` keep their labels.  The relabelled
        qubit set must remain free of duplicates.
        """
        new_qubits = tuple(mapping.get(q, q) for q in self._qubits)
        return QuantumCircuit(
            new_qubits,
            (g.remap(mapping) for g in self._gates),
            name=name or self.name,
        )

    def concatenate(self, other: "QuantumCircuit", name: Optional[str] = None) -> "QuantumCircuit":
        """Return a new circuit running ``self`` then ``other``.

        The qubit set of the result is the union of both circuits' qubits
        (``self``'s qubits first, then ``other``'s new ones).
        """
        merged_qubits = list(self._qubits)
        for qubit in other.qubits:
            if qubit not in self._qubit_set:
                merged_qubits.append(qubit)
        result = QuantumCircuit(
            merged_qubits, self._gates, name=name or self.name
        )
        result.extend(other.gates)
        return result

    def without_free_gates(self) -> "QuantumCircuit":
        """Return a copy with zero-duration gates removed.

        Free gates (NMR ``Rz`` rotations) never contribute to the runtime and
        dropping them makes the schedules and reports easier to read; the
        placement result is unchanged.
        """
        return QuantumCircuit(
            self._qubits,
            (g for g in self._gates if not g.is_free),
            name=self.name,
        )

    def subcircuit(self, start: int, stop: int, name: Optional[str] = None) -> "QuantumCircuit":
        """Return the circuit slice ``gates[start:stop]`` over the same qubits."""
        if not 0 <= start <= stop <= len(self._gates):
            raise CircuitError(
                f"invalid subcircuit range [{start}, {stop}) for a circuit "
                f"with {len(self._gates)} gates"
            )
        return QuantumCircuit(
            self._qubits,
            self._gates[start:stop],
            name=name or f"{self.name}[{start}:{stop}]",
        )

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Return a shallow copy of the circuit."""
        return QuantumCircuit(self._qubits, self._gates, name=name or self.name)
