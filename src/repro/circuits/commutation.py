"""Gate commutation and commutation-aware reordering.

The paper's concluding section lists "using gate commutation (more
generally, circuit identities) to transform an instance of the circuit
placement problem into a possibly more favorable one" as further research.
This module implements the conservative core of that idea:

* :func:`gates_commute` — a sound (never claims commutation that does not
  hold exactly) syntactic commutation check: gates on disjoint qubits
  commute; diagonal gates (``Rz``, ``Z``, ``ZZ``, ``CZ``, ``CPHASE``)
  commute with each other regardless of shared qubits; equal-axis rotations
  on the same qubit commute.
* :func:`commutation_aware_reorder` — a reordering pass that, within the
  freedom allowed by :func:`gates_commute`, bubbles two-qubit gates forward
  so that gates acting on the *same qubit pair* become adjacent.  Grouping a
  pair's gates consecutively helps the placer twice: the interaction-run cap
  (three uses per two-qubit unitary) applies more often, and the greedy
  workspace extraction sees fewer alternations between pairs, producing
  longer workspaces.

Because the pass only swaps gates that commute exactly, the reordered
circuit implements the same unitary, so placements of the reordered circuit
verify against the original one.
"""

from __future__ import annotations

from typing import List

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate

#: Gate names whose matrices are diagonal in the computational basis.
DIAGONAL_GATE_NAMES = frozenset({"Rz", "Z", "ZZ", "CZ", "CPHASE"})

#: Rotation axes of the named single-qubit rotations.
_ROTATION_AXIS = {"Rx": "x", "X": "x", "Ry": "y", "Y": "y", "Rz": "z", "Z": "z"}


def gates_commute(first: Gate, second: Gate) -> bool:
    """Whether two gates commute exactly (sound, not complete).

    The check is purely syntactic and errs on the side of ``False``: a
    ``True`` answer guarantees the two gates can be exchanged without
    changing the circuit's unitary.
    """
    shared = set(first.qubits).intersection(second.qubits)
    if not shared:
        return True
    if first.name in DIAGONAL_GATE_NAMES and second.name in DIAGONAL_GATE_NAMES:
        return True
    first_axis = _ROTATION_AXIS.get(first.name)
    second_axis = _ROTATION_AXIS.get(second.name)
    if (
        first_axis is not None
        and first_axis == second_axis
        and first.qubits == second.qubits
    ):
        return True
    return False


def commutation_aware_reorder(circuit: QuantumCircuit) -> QuantumCircuit:
    """Group same-pair two-qubit gates by exchanging commuting neighbours.

    The pass repeatedly scans the gate list and moves a two-qubit gate
    leftwards when it commutes with *every* gate between it and the nearest
    earlier gate on the same qubit pair — landing directly behind that gate
    (i.e. the move strictly improves the grouping).  Moves that cannot
    complete — a non-commuting blocker sits in between — are not applied at
    all: a partial move does not improve the grouping, and two blocked
    gates nudging each other back and forth would otherwise livelock the
    scan loop.

    The result is a circuit with the same qubits and the same unitary whose
    two-qubit gates on one interaction are as contiguous as the commutation
    structure allows.
    """
    gates: List[Gate] = list(circuit.gates)
    changed = True
    while changed:
        changed = False
        for index in range(1, len(gates)):
            gate = gates[index]
            if not gate.is_two_qubit:
                continue
            target = _bubble_target(gates, index)
            if target is not None:
                del gates[index]
                gates.insert(target, gate)
                changed = True
    return QuantumCircuit(circuit.qubits, gates, name=circuit.name)


def _bubble_target(gates: List[Gate], index: int) -> int | None:
    """Where ``gates[index]`` can land to follow its same-pair predecessor.

    Returns the position directly after the nearest earlier gate on the
    same qubit pair, provided the gate commutes with everything in between;
    ``None`` when there is no such gate, a non-commuting blocker intervenes,
    or the gate is already adjacent to it.
    """
    gate = gates[index]
    pair = gate.interaction()
    position = index
    while position > 0:
        previous = gates[position - 1]
        if previous.is_two_qubit and previous.interaction() == pair:
            return position if position != index else None
        if not gates_commute(previous, gate):
            return None
        position -= 1
    return None


def count_interaction_alternations(circuit: QuantumCircuit) -> int:
    """How often consecutive two-qubit gates switch to a different pair.

    A lower number means better grouping; used in tests and in the
    commutation ablation benchmark as a simple structural metric.
    """
    alternations = 0
    previous_pair = None
    for gate in circuit:
        if not gate.is_two_qubit:
            continue
        pair = gate.interaction()
        if previous_pair is not None and pair != previous_pair:
            alternations += 1
        previous_pair = pair
    return alternations
