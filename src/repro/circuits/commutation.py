"""Gate commutation and commutation-aware reordering.

The paper's concluding section lists "using gate commutation (more
generally, circuit identities) to transform an instance of the circuit
placement problem into a possibly more favorable one" as further research.
This module implements the conservative core of that idea:

* :func:`gates_commute` — a sound (never claims commutation that does not
  hold exactly) syntactic commutation check: gates on disjoint qubits
  commute; diagonal gates (``Rz``, ``Z``, ``ZZ``, ``CZ``, ``CPHASE``)
  commute with each other regardless of shared qubits; equal-axis rotations
  on the same qubit commute.
* :func:`commutation_aware_reorder` — a reordering pass that, within the
  freedom allowed by :func:`gates_commute`, bubbles two-qubit gates forward
  so that gates acting on the *same qubit pair* become adjacent.  Grouping a
  pair's gates consecutively helps the placer twice: the interaction-run cap
  (three uses per two-qubit unitary) applies more often, and the greedy
  workspace extraction sees fewer alternations between pairs, producing
  longer workspaces.

Because the pass only swaps gates that commute exactly, the reordered
circuit implements the same unitary, so placements of the reordered circuit
verify against the original one.
"""

from __future__ import annotations

from typing import List

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate

#: Gate names whose matrices are diagonal in the computational basis.
DIAGONAL_GATE_NAMES = frozenset({"Rz", "Z", "ZZ", "CZ", "CPHASE"})

#: Rotation axes of the named single-qubit rotations.
_ROTATION_AXIS = {"Rx": "x", "X": "x", "Ry": "y", "Y": "y", "Rz": "z", "Z": "z"}


def gates_commute(first: Gate, second: Gate) -> bool:
    """Whether two gates commute exactly (sound, not complete).

    The check is purely syntactic and errs on the side of ``False``: a
    ``True`` answer guarantees the two gates can be exchanged without
    changing the circuit's unitary.
    """
    shared = set(first.qubits).intersection(second.qubits)
    if not shared:
        return True
    if first.name in DIAGONAL_GATE_NAMES and second.name in DIAGONAL_GATE_NAMES:
        return True
    first_axis = _ROTATION_AXIS.get(first.name)
    second_axis = _ROTATION_AXIS.get(second.name)
    if (
        first_axis is not None
        and first_axis == second_axis
        and first.qubits == second.qubits
    ):
        return True
    return False


def commutation_aware_reorder(circuit: QuantumCircuit) -> QuantumCircuit:
    """Group same-pair two-qubit gates by exchanging commuting neighbours.

    The pass repeatedly scans the gate list and swaps adjacent gates when

    * they commute according to :func:`gates_commute`, and
    * the swap moves a two-qubit gate next to an earlier gate on the same
      qubit pair (i.e. it strictly improves the grouping).

    The result is a circuit with the same qubits and the same unitary whose
    two-qubit gates on one interaction are as contiguous as the commutation
    structure allows.
    """
    gates: List[Gate] = list(circuit.gates)
    changed = True
    while changed:
        changed = False
        for index in range(1, len(gates)):
            gate = gates[index]
            if not gate.is_two_qubit:
                continue
            pair = gate.interaction()
            position = index
            # Bubble the gate leftwards while it commutes with the gate in
            # front of it and doing so brings it closer to a gate on the
            # same pair.
            while position > 0:
                previous = gates[position - 1]
                if previous.is_two_qubit and previous.interaction() == pair:
                    break
                if not gates_commute(previous, gate):
                    break
                if not _same_pair_ahead(gates, position - 1, pair):
                    break
                gates[position - 1], gates[position] = gate, previous
                position -= 1
                changed = True
    return QuantumCircuit(circuit.qubits, gates, name=circuit.name)


def _same_pair_ahead(gates: List[Gate], limit: int, pair) -> bool:
    """Whether some gate before ``limit`` acts on exactly ``pair``."""
    for gate in gates[:limit]:
        if gate.is_two_qubit and gate.interaction() == pair:
            return True
    return False


def count_interaction_alternations(circuit: QuantumCircuit) -> int:
    """How often consecutive two-qubit gates switch to a different pair.

    A lower number means better grouping; used in tests and in the
    commutation ablation benchmark as a simple structural metric.
    """
    alternations = 0
    previous_pair = None
    for gate in circuit:
        if not gate.is_two_qubit:
            continue
        pair = gate.interaction()
        if previous_pair is not None and pair != previous_pair:
            alternations += 1
        previous_pair = pair
    return alternations
