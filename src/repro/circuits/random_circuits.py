"""Random benchmark circuit generators.

The scalability experiment of the paper (Table 4) uses circuits built from a
number of *hidden stages*: for each stage the qubits are randomly permuted
into a virtual chain and ``N * log2(N)`` random nearest-neighbour two-qubit
gates are generated over that chain; ``log2(N)`` such stages are
concatenated.  A good placer should discover exactly one subcircuit per
hidden stage and insert a swapping stage between consecutive stages.

All generators take an explicit :class:`random.Random` instance or an integer
seed so that experiments are reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, Qubit
from repro.exceptions import CircuitError

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    """Normalise a seed / Random / None argument to a Random instance."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


@dataclass(frozen=True)
class HiddenStageSpec:
    """Description of one hidden stage of a Table-4 style circuit.

    Attributes
    ----------
    permutation:
        The stage's virtual chain: ``permutation[j]`` is the logical qubit
        sitting at chain position ``j``.
    num_gates:
        Number of random nearest-neighbour gates generated for the stage.
    """

    permutation: Tuple[Qubit, ...]
    num_gates: int


@dataclass(frozen=True)
class HiddenStageCircuit:
    """A generated circuit together with its hidden-stage ground truth."""

    circuit: QuantumCircuit
    stages: Tuple[HiddenStageSpec, ...]

    @property
    def num_stages(self) -> int:
        """Number of hidden stages used to build the circuit."""
        return len(self.stages)


def hidden_stage_circuit(
    num_qubits: int,
    num_stages: Optional[int] = None,
    gates_per_stage: Optional[int] = None,
    gate_duration: float = 3.0,
    seed: RandomLike = 0,
) -> HiddenStageCircuit:
    """Generate the Table-4 workload.

    Parameters
    ----------
    num_qubits:
        ``N`` — number of logical qubits; must be at least 2.
    num_stages:
        Number of hidden stages; defaults to ``round(log2(N))`` as in the
        paper.
    gates_per_stage:
        Number of gates per stage; defaults to ``N * round(log2(N))``.
    gate_duration:
        Relative duration ``T(G)`` of every generated two-qubit gate; the
        paper uses the maximal length 3 (any two-qubit unitary needs at most
        three uses of the interaction).
    seed:
        Seed or :class:`random.Random` for reproducibility.
    """
    if num_qubits < 2:
        raise CircuitError("hidden-stage circuits need at least two qubits")
    rng = _rng(seed)
    log_n = max(1, int(round(math.log2(num_qubits))))
    if num_stages is None:
        num_stages = log_n
    if gates_per_stage is None:
        gates_per_stage = num_qubits * log_n
    if num_stages < 1 or gates_per_stage < 1:
        raise CircuitError("num_stages and gates_per_stage must be positive")

    qubits: List[Qubit] = list(range(num_qubits))
    all_gates: List[Gate] = []
    stages: List[HiddenStageSpec] = []
    for _ in range(num_stages):
        permutation = list(qubits)
        rng.shuffle(permutation)
        stage_gates = _random_chain_gates(
            permutation, gates_per_stage, gate_duration, rng
        )
        all_gates.extend(stage_gates)
        stages.append(HiddenStageSpec(tuple(permutation), gates_per_stage))

    circuit = QuantumCircuit(
        qubits, all_gates, name=f"hidden-stages-{num_qubits}q-{num_stages}s"
    )
    return HiddenStageCircuit(circuit, tuple(stages))


def _random_chain_gates(
    chain: Sequence[Qubit],
    num_gates: int,
    gate_duration: float,
    rng: random.Random,
) -> List[Gate]:
    """Random nearest-neighbour gates over a virtual chain ordering.

    Mirrors the paper's construction: pick a chain index ``j`` uniformly, then
    couple ``p_j`` with ``p_{j-1}`` or ``p_{j+1}`` with probability 1/2 each
    (falling back to the only available neighbour at the chain ends).
    """
    gates: List[Gate] = []
    last = len(chain) - 1
    for _ in range(num_gates):
        j = rng.randrange(len(chain))
        if j == 0:
            neighbour = 1
        elif j == last:
            neighbour = last - 1
        else:
            neighbour = j - 1 if rng.random() < 0.5 else j + 1
        gates.append(
            g.generic_2q(chain[j], chain[neighbour], gate_duration, name="U2")
        )
    return gates


def random_two_qubit_circuit(
    num_qubits: int,
    num_gates: int,
    gate_duration: float = 1.0,
    single_qubit_fraction: float = 0.0,
    seed: RandomLike = 0,
) -> QuantumCircuit:
    """A fully random circuit: arbitrary qubit pairs, optional 1-qubit gates.

    Useful as a stress workload (its interaction graph quickly becomes dense,
    which forces the placer to use many subcircuits) and in property tests.
    """
    if num_qubits < 2:
        raise CircuitError("random circuits need at least two qubits")
    if not 0.0 <= single_qubit_fraction <= 1.0:
        raise CircuitError("single_qubit_fraction must lie in [0, 1]")
    rng = _rng(seed)
    qubits: List[Qubit] = list(range(num_qubits))
    gate_list: List[Gate] = []
    for _ in range(num_gates):
        if rng.random() < single_qubit_fraction:
            gate_list.append(g.ry(rng.choice(qubits), 90.0))
        else:
            a, b = rng.sample(qubits, 2)
            gate_list.append(g.generic_2q(a, b, gate_duration))
    return QuantumCircuit(
        qubits, gate_list, name=f"random-{num_qubits}q-{num_gates}g"
    )


def random_nearest_neighbour_circuit(
    num_qubits: int,
    num_gates: int,
    gate_duration: float = 1.0,
    seed: RandomLike = 0,
) -> QuantumCircuit:
    """A random circuit whose interactions all lie on the identity chain.

    Placing this circuit onto a matching linear-nearest-neighbour
    architecture should always succeed with a single subcircuit.
    """
    if num_qubits < 2:
        raise CircuitError("random circuits need at least two qubits")
    rng = _rng(seed)
    chain = list(range(num_qubits))
    gates = _random_chain_gates(chain, num_gates, gate_duration, rng)
    return QuantumCircuit(
        chain, gates, name=f"random-chain-{num_qubits}q-{num_gates}g"
    )
