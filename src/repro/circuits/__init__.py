"""Quantum circuit intermediate representation and circuit generators."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import (
    Gate,
    Qubit,
    cnot,
    controlled_phase,
    cz,
    generic_1q,
    generic_2q,
    hadamard,
    pauli_x,
    pauli_y,
    pauli_z,
    rx,
    ry,
    rz,
    swap,
    zz,
)
from repro.circuits.commutation import (
    commutation_aware_reorder,
    count_interaction_alternations,
    gates_commute,
)
from repro.circuits.interaction_graph import interaction_graph
from repro.circuits.levelize import circuit_depth, from_levels, levelize, two_qubit_depth
from repro.circuits.decompose import rewrite_to_nmr

__all__ = [
    "QuantumCircuit",
    "Gate",
    "Qubit",
    "rx",
    "ry",
    "rz",
    "zz",
    "cnot",
    "cz",
    "controlled_phase",
    "swap",
    "hadamard",
    "pauli_x",
    "pauli_y",
    "pauli_z",
    "generic_1q",
    "generic_2q",
    "interaction_graph",
    "levelize",
    "circuit_depth",
    "two_qubit_depth",
    "from_levels",
    "rewrite_to_nmr",
    "gates_commute",
    "commutation_aware_reorder",
    "count_interaction_alternations",
]
