"""The canonical, serialisable description of one run: :class:`RunConfig`.

Every entry point of this package — :func:`repro.core.placement.place_circuit`
via :meth:`repro.api.Session.place`, the Table-3 sweeps, the shard
pipeline, the CLI — consumes the same frozen :class:`RunConfig`: circuit
and environment registry specs (see :mod:`repro.registry`), the placement
options, and the execution shape (jobs, shards, output format).  A config
round-trips through canonical JSON byte-for-byte, is accepted by every
CLI command as ``--config run.json``, and is embedded in shard plans so a
shard file describes the run it belongs to.

The JSON schema (see ``docs/api.md``)::

    {
      "format": "repro-run-config",
      "schema_version": 1,
      "circuit": "qft:7",
      "environment": "trans-crotonic-acid",
      "thresholds": [50, 100, 200] | null,
      "options": { ... PlacementOptions fields ... },
      "jobs": 1,
      "retries": 0,
      "cell_timeout": null,
      "shards": 1,
      "shard_index": null,
      "strategy": "round-robin",
      "output": "text"
    }

Unknown keys are rejected (a typo in a config file must not be silently
ignored), and all values are validated on construction, so an invalid
file fails with a one-line :class:`~repro.exceptions.ConfigError` before
any work starts.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.config import PlacementOptions
from repro.exceptions import ConfigError, ReproError
from repro.registry import SHARD_STRATEGIES

#: Format tag written into (and checked in) serialised configs.
CONFIG_FORMAT = "repro-run-config"

#: Schema version of the serialised form.
CONFIG_SCHEMA_VERSION = 1

#: Accepted CLI/Session output formats.
OUTPUT_FORMATS = ("text", "json")


def _options_to_dict(options: PlacementOptions) -> Dict[str, Any]:
    return dataclasses.asdict(options)


def _options_from_dict(data: Mapping[str, Any]) -> PlacementOptions:
    known = {f.name for f in dataclasses.fields(PlacementOptions)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigError(
            f"unknown placement option(s) {unknown}; valid options: "
            + ", ".join(sorted(known))
        )
    try:
        return PlacementOptions(**dict(data))
    except ReproError as exc:
        raise ConfigError(f"invalid placement options: {exc}") from exc
    except TypeError as exc:
        raise ConfigError(f"malformed placement options: {exc}") from exc


@dataclass(frozen=True)
class RunConfig:
    """Everything needed to reproduce one run, in one frozen value.

    Attributes
    ----------
    circuit:
        Circuit registry spec (``qft6``, ``qft:7``, ``hidden-stage:32``)
        or a ``.qc``/``.txt`` circuit file path.
    environment:
        Environment registry spec (``trans-crotonic-acid``, ``chain:12``,
        ``grid:4x4``) or an environment ``.json`` file path.
    thresholds:
        Sweep threshold values; ``None`` selects the paper's list
        (:data:`repro.hardware.threshold_graph.PAPER_THRESHOLDS`).
    options:
        The full :class:`~repro.core.config.PlacementOptions` (including
        the single-placement ``threshold`` and ``scheduler_backend``).
    jobs:
        Local worker processes per grid execution.
    retries:
        Re-execution attempts per failed cell on top of the first try
        (``0`` = fail fast, the default).  Together with ``cell_timeout``
        this maps to a :class:`repro.analysis.resilience.RetryPolicy`
        with ``max_attempts = retries + 1``.
    cell_timeout:
        Per-cell wall-clock budget in seconds (``None`` = unlimited).  A
        cell exceeding it is killed and retried; retries and timeouts
        never change feasible results, only whether failures recover.
    shards / shard_index / strategy:
        The deterministic grid partition: total shard count, the one
        shard this invocation executes (``None`` = whole grid), and the
        :data:`repro.registry.SHARD_STRATEGIES` entry used to partition.
    output:
        ``"text"`` (human-readable tables) or ``"json"`` (canonical
        machine-readable rows + counters).
    """

    circuit: str
    environment: str
    thresholds: Optional[Tuple[float, ...]] = None
    options: PlacementOptions = field(default_factory=PlacementOptions)
    jobs: int = 1
    retries: int = 0
    cell_timeout: Optional[float] = None
    shards: int = 1
    shard_index: Optional[int] = None
    strategy: str = "round-robin"
    output: str = "text"

    def __post_init__(self) -> None:
        if not isinstance(self.circuit, str) or not self.circuit:
            raise ConfigError(f"circuit must be a non-empty spec string, got {self.circuit!r}")
        if not isinstance(self.environment, str) or not self.environment:
            raise ConfigError(
                f"environment must be a non-empty spec string, got {self.environment!r}"
            )
        if self.thresholds is not None:
            if isinstance(self.thresholds, str):
                # A bare string would silently iterate character by
                # character ("234" -> 2.0, 3.0, 4.0); reject it outright.
                raise ConfigError(
                    f"thresholds must be a list of numbers, got the string "
                    f"{self.thresholds!r}"
                )
            try:
                values = tuple(float(value) for value in self.thresholds)
            except (TypeError, ValueError):
                raise ConfigError(
                    f"thresholds must be a list of numbers, got {self.thresholds!r}"
                ) from None
            if not values:
                raise ConfigError("thresholds cannot be an empty list (use null)")
            if any(value <= 0 for value in values):
                raise ConfigError(f"thresholds must be positive, got {values}")
            object.__setattr__(self, "thresholds", values)
        if not isinstance(self.options, PlacementOptions):
            raise ConfigError(
                f"options must be PlacementOptions, got {type(self.options).__name__}"
            )
        if not isinstance(self.jobs, int) or self.jobs < 1:
            raise ConfigError(f"jobs must be a positive integer, got {self.jobs!r}")
        if not isinstance(self.retries, int) or isinstance(self.retries, bool) \
                or self.retries < 0:
            raise ConfigError(
                f"retries must be a non-negative integer, got {self.retries!r}"
            )
        if self.cell_timeout is not None:
            if isinstance(self.cell_timeout, bool) or not isinstance(
                self.cell_timeout, (int, float)
            ):
                raise ConfigError(
                    f"cell_timeout must be a positive number of seconds (or "
                    f"null), got {self.cell_timeout!r}"
                )
            value = float(self.cell_timeout)
            if not value > 0:
                raise ConfigError(
                    f"cell_timeout must be a positive number of seconds (or "
                    f"null), got {self.cell_timeout!r}"
                )
            object.__setattr__(self, "cell_timeout", value)
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ConfigError(f"shards must be a positive integer, got {self.shards!r}")
        if self.shard_index is not None:
            if not isinstance(self.shard_index, int) or not (
                0 <= self.shard_index < self.shards
            ):
                raise ConfigError(
                    f"shard_index {self.shard_index!r} out of range for "
                    f"{self.shards} shard(s); valid indices: 0..{self.shards - 1}"
                )
        canonical = str(self.strategy).replace("_", "-").lower()
        if canonical not in SHARD_STRATEGIES:
            raise ConfigError(
                f"unknown shard strategy {self.strategy!r}; valid strategies: "
                + ", ".join(SHARD_STRATEGIES.names())
            )
        object.__setattr__(self, "strategy", canonical)
        if self.output not in OUTPUT_FORMATS:
            raise ConfigError(
                f"unknown output format {self.output!r}; valid formats: "
                + ", ".join(OUTPUT_FORMATS)
            )

    # -- derived views -------------------------------------------------------

    def replace(self, **changes) -> "RunConfig":
        """A copy with some fields changed (validated like a fresh config)."""
        return dataclasses.replace(self, **changes)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-safe canonical form (self-describing)."""
        return {
            "format": CONFIG_FORMAT,
            "schema_version": CONFIG_SCHEMA_VERSION,
            "circuit": self.circuit,
            "environment": self.environment,
            "thresholds": (
                list(self.thresholds) if self.thresholds is not None else None
            ),
            "options": _options_to_dict(self.options),
            "jobs": self.jobs,
            "retries": self.retries,
            "cell_timeout": self.cell_timeout,
            "shards": self.shards,
            "shard_index": self.shard_index,
            "strategy": self.strategy,
            "output": self.output,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunConfig":
        """Rebuild a config from :meth:`to_dict` (unknown keys rejected)."""
        if not isinstance(data, Mapping):
            raise ConfigError(f"run config must be a JSON object, got {type(data).__name__}")
        data = dict(data)
        declared_format = data.pop("format", CONFIG_FORMAT)
        if declared_format != CONFIG_FORMAT:
            raise ConfigError(
                f"not a run config (expected format {CONFIG_FORMAT!r}, "
                f"got {declared_format!r})"
            )
        data.pop("schema_version", None)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown run-config key(s) {unknown}; valid keys: "
                + ", ".join(sorted(known))
            )
        if "options" in data and not isinstance(data["options"], PlacementOptions):
            if data["options"] is None:
                data.pop("options")
            elif isinstance(data["options"], Mapping):
                data["options"] = _options_from_dict(data["options"])
            else:
                raise ConfigError(
                    f"options must be an object, got {data['options']!r}"
                )
        if data.get("thresholds") is None:
            data.pop("thresholds", None)
        try:
            return cls(**data)
        except ConfigError:
            raise
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"malformed run config: {exc}") from exc

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, fixed separators, newline)."""
        from repro.analysis.serialization import dump_json

        return dump_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        """Parse a config from its canonical (or any) JSON encoding."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"run config is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        """Write the canonical JSON form to ``path`` (atomically)."""
        from repro.analysis.serialization import atomic_write_text

        atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path: str) -> "RunConfig":
        """Read a config file written by :meth:`save` (or by hand)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigError(f"cannot read config file {path!r}: {exc}") from exc
        try:
            return cls.from_json(text)
        except ConfigError as exc:
            raise ConfigError(f"config file {path!r}: {exc}") from exc
