"""Named registries with parameterised string specs.

Every workload ingredient in this package — benchmark circuits, molecule
and synthetic-architecture environments, scheduler backends, shard
partition strategies — is addressable by a short string *spec*, so one
canonical description of a run (:class:`repro.config.RunConfig`) works
identically from Python, the CLI, a config file and a shard payload.

Spec grammar
------------

::

    spec   ::= name [":" params]
    params ::= param ("x" param)*
    param  ::= integer | integer ("," integer)+

``name`` is a registered entry name (letters, digits, ``.``, ``_``,
``-`` and ``/``); ``params`` are non-negative integers separated by
``x``.  Examples: ``qft6`` (a plain named entry), ``qft:7`` (the 7-qubit
QFT), ``chain:12`` (a 12-node chain), ``grid:4x4`` (a 4-by-4 lattice).
A parameter position may hold a comma-separated *list* of integers —
but only for entries that declare the position list-valued
(``RegistryEntry.list_params``); everything else rejects lists at
validation time.  Example: ``anneal:3,5,9`` (a multi-restart annealer
portfolio over three seeds).

Registries
----------

:data:`CIRCUITS`
    Benchmark circuits (:mod:`repro.circuits.library`): the paper's named
    circuits plus parameterised families (``qft:N``, ``aqft:N``,
    ``cat:N``, ``hidden-stage:NxSEED``).
:data:`ENVIRONMENTS`
    Physical environments: the NMR molecule data set
    (:mod:`repro.hardware.molecules`) plus the synthetic architectures
    (:mod:`repro.hardware.architectures`: ``chain:N``, ``ring:N``,
    ``grid:RxC``, ``complete:N``, ``star:N``, ``heavy-hex:D``).
:data:`SCHEDULER_BACKENDS`
    Runtime-evaluator backends (:mod:`repro.timing._replay`); entries
    resolve to the backend name accepted by ``PlacementOptions``.
:data:`SHARD_STRATEGIES`
    Shard partition strategies (:mod:`repro.analysis.sharding`); entries
    are the bucket-assignment functions used by ``ShardPlan.build``.
:data:`PLACERS`
    Placement engines (:mod:`repro.core.placers`): the exact exhaustive
    search (``exact``, the default), the greedy seeding pass (``greedy``)
    and the simulated annealer (``anneal``, ``anneal:SEED``,
    ``anneal:SEEDxITERS``, multi-restart ``anneal:S1,S2,...``); entries
    build :class:`repro.core.placers.Placer` instances.

Each registry lazily imports its providing modules on first use, so
``repro.registry`` itself stays import-light and free of cycles.

:func:`load_circuit` and :func:`load_environment` are the module-level
loaders shared by the CLI, the :class:`repro.api.Session` façade and the
sharding factories: ``functools.partial(load_circuit, "qft:7")`` pickles
by reference, so experiment grids built from them fingerprint identically
in any process (see ``docs/parallelism.md``).
"""

from __future__ import annotations

import importlib
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Union

from repro.exceptions import RegistryError, UnknownSpecError

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.circuits.circuit import QuantumCircuit
    from repro.hardware.environment import PhysicalEnvironment

#: Registered names: at least one character; no ``:`` (the spec separator)
#: and no whitespace.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._/-]*$")


#: One parsed spec parameter: a plain integer, or (for positions an entry
#: declares in ``list_params``) a comma-list tuple of integers.
ParamValue = Union[int, Tuple[int, ...]]


@dataclass(frozen=True)
class RegistryEntry:
    """One registered factory.

    ``min_params``/``max_params`` bound how many ``x``-separated integer
    parameters the spec may carry after the colon; ``(0, 0)`` entries are
    plain names that reject any parameters.  ``list_params`` names the
    zero-based positions that additionally accept a comma-separated
    integer list (passed to the factory as a tuple); every other position
    rejects lists at validation time.
    """

    name: str
    factory: Callable
    min_params: int = 0
    max_params: int = 0
    description: str = ""
    list_params: Tuple[int, ...] = ()

    @property
    def parameterised(self) -> bool:
        return self.max_params > 0

    def spec_form(self) -> str:
        """The spec shape for help/error text, e.g. ``grid:NxM``."""
        if not self.parameterised:
            return self.name
        placeholders = ("N", "M", "K", "L")[: self.max_params]
        required = placeholders[: self.min_params] or placeholders[:1]
        return f"{self.name}:" + "x".join(required)


def _parse_int(spec: str, token: str) -> int:
    try:
        value = int(token)
    except ValueError:
        raise UnknownSpecError(
            f"spec {spec!r}: parameter {token!r} is not an integer "
            "(grammar: name[:IntxIntx...], comma-lists where supported)"
        ) from None
    if value < 0:
        # Zero is legitimate (e.g. the seed in hidden-stage:8x0);
        # undersized values a family cannot build raise the factory's
        # own domain error instead.
        raise UnknownSpecError(
            f"spec {spec!r}: parameter {value} must be non-negative"
        )
    return value


def parse_spec(spec: str) -> Tuple[str, Tuple[ParamValue, ...]]:
    """Split a spec string into ``(name, params)``.

    A parameter is a non-negative integer, or a comma-separated list of
    them (parsed to a tuple — accepted only by entries whose
    ``list_params`` declares the position, enforced in
    :meth:`Registry.validate`).  Raises :class:`UnknownSpecError` for
    syntactically invalid specs (empty name, non-integer or negative
    parameters).
    """
    if not isinstance(spec, str) or not spec:
        raise UnknownSpecError(f"empty or non-string spec {spec!r}")
    name, sep, params_text = spec.partition(":")
    if not name:
        raise UnknownSpecError(f"spec {spec!r} has no name before ':'")
    if not sep:
        return name, ()
    params: List[ParamValue] = []
    for token in params_text.split("x"):
        if "," in token:
            params.append(
                tuple(_parse_int(spec, item) for item in token.split(","))
            )
        else:
            params.append(_parse_int(spec, token))
    return name, tuple(params)


class Registry:
    """A named registry of factories addressable by spec strings.

    Parameters
    ----------
    kind:
        Human-readable singular noun for error messages ("circuit",
        "environment", ...).
    providers:
        Module names imported lazily before the first lookup, so the
        modules that register entries need not be imported up front.
    """

    def __init__(self, kind: str, providers: Tuple[str, ...] = ()) -> None:
        self.kind = kind
        self._providers = providers
        self._populated = not providers
        self._entries: Dict[str, RegistryEntry] = {}

    # -- registration -------------------------------------------------------

    def register(
        self,
        name: str,
        *,
        min_params: int = 0,
        max_params: Optional[int] = None,
        description: str = "",
        overwrite: bool = False,
    ) -> Callable[[Callable], Callable]:
        """Decorator registering ``factory`` under ``name``.

        ``max_params`` defaults to ``min_params``.  Registering an existing
        name raises :class:`RegistryError` unless ``overwrite`` is set.
        """

        def decorator(factory: Callable) -> Callable:
            self.add(
                name,
                factory,
                min_params=min_params,
                max_params=max_params,
                description=description,
                overwrite=overwrite,
            )
            return factory

        return decorator

    def add(
        self,
        name: str,
        factory: Callable,
        *,
        min_params: int = 0,
        max_params: Optional[int] = None,
        description: str = "",
        overwrite: bool = False,
        list_params: Tuple[int, ...] = (),
    ) -> RegistryEntry:
        """Register ``factory`` under ``name`` (imperative form)."""
        if max_params is None:
            max_params = min_params
        if any(position < 0 or position >= max_params for position in list_params):
            raise RegistryError(
                f"{self.kind} {name!r}: list_params positions {list_params!r} "
                f"must fall below max_params ({max_params})"
            )
        if not _NAME_RE.match(name or ""):
            raise RegistryError(
                f"invalid {self.kind} name {name!r}: names use letters, "
                "digits, '.', '_', '-' and '/', and cannot contain ':'"
            )
        if min_params < 0 or max_params < min_params:
            raise RegistryError(
                f"{self.kind} {name!r}: invalid parameter bounds "
                f"({min_params}, {max_params})"
            )
        if not callable(factory):
            raise RegistryError(f"{self.kind} {name!r}: factory is not callable")
        if name in self._entries and not overwrite:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered; pass "
                "overwrite=True to replace it"
            )
        entry = RegistryEntry(
            name=name,
            factory=factory,
            min_params=min_params,
            max_params=max_params,
            description=description,
            list_params=tuple(list_params),
        )
        self._entries[name] = entry
        return entry

    # -- lookup -------------------------------------------------------------

    def _ensure_populated(self) -> None:
        if self._populated:
            return
        # Mark populated only after every provider imported: a failed
        # import must stay retryable (and keep raising its real error)
        # instead of leaving a silently partial registry.  Re-entrant
        # lookups during a provider's import are safe — import_module
        # returns the in-progress module without re-executing it.
        for module in self._providers:
            importlib.import_module(module)
        self._populated = True

    def names(self) -> List[str]:
        """All registered names, sorted."""
        self._ensure_populated()
        return sorted(self._entries)

    def entries(self) -> List[RegistryEntry]:
        """All entries, sorted by name."""
        self._ensure_populated()
        return [self._entries[name] for name in sorted(self._entries)]

    def spec_forms(self) -> List[str]:
        """Every entry's spec shape (plain names first, then families)."""
        entries = self.entries()
        return [e.spec_form() for e in entries if not e.parameterised] + [
            e.spec_form() for e in entries if e.parameterised
        ]

    def __contains__(self, name: str) -> bool:
        self._ensure_populated()
        return name in self._entries

    def entry(self, name: str) -> RegistryEntry:
        """The entry registered under ``name`` (exact, no parameters)."""
        self._ensure_populated()
        try:
            return self._entries[name]
        except KeyError:
            raise self.unknown(name) from None

    def unknown(self, spec: str) -> UnknownSpecError:
        """The one-line unknown-spec error listing every valid name."""
        return UnknownSpecError(
            f"unknown {self.kind} {spec!r}; valid specs: "
            + ", ".join(self.spec_forms())
        )

    def validate(self, spec: str) -> RegistryEntry:
        """Check that a spec parses and resolves, without calling its factory.

        Used where a spec is stored for later (``PlacementOptions.placer``,
        config files) so that typos fail at construction time with the
        spec-listing :class:`UnknownSpecError` rather than mid-run.
        """
        name, params = parse_spec(spec)
        self._ensure_populated()
        entry = self._entries.get(name)
        if entry is None:
            raise self.unknown(spec)
        if not entry.min_params <= len(params) <= entry.max_params:
            if entry.max_params == 0:
                raise UnknownSpecError(
                    f"{self.kind} {name!r} takes no parameters "
                    f"(got {spec!r})"
                )
            raise UnknownSpecError(
                f"{self.kind} spec {spec!r} needs between {entry.min_params} "
                f"and {entry.max_params} parameter(s), as in "
                f"{entry.spec_form()!r}"
            )
        for position, value in enumerate(params):
            if isinstance(value, tuple) and position not in entry.list_params:
                raise UnknownSpecError(
                    f"{self.kind} spec {spec!r}: parameter {position + 1} "
                    "does not accept a comma-separated list"
                )
        return entry

    def build(self, spec: str) -> Any:
        """Resolve a spec string and invoke its factory.

        ``name`` entries are called with no arguments; parameterised
        entries receive the parsed integer parameters positionally.
        """
        entry = self.validate(spec)
        _, params = parse_spec(spec)
        return entry.factory(*params)


#: Benchmark circuits (named + parameterised families).
CIRCUITS = Registry("circuit", providers=("repro.circuits.library",))

#: Physical environments (molecules + synthetic architectures).
ENVIRONMENTS = Registry(
    "environment",
    providers=("repro.hardware.molecules", "repro.hardware.architectures"),
)

#: Runtime-evaluator backends; building an entry returns the backend name.
SCHEDULER_BACKENDS = Registry(
    "scheduler backend", providers=("repro.timing._replay",)
)

#: Shard partition strategies; entries are bucket-assignment functions.
SHARD_STRATEGIES = Registry(
    "shard strategy", providers=("repro.analysis.sharding",)
)

#: Placement engines; building an entry returns a ``Placer`` instance.
PLACERS = Registry("placer", providers=("repro.core.placers",))


# ---------------------------------------------------------------------------
# Module-level loaders (picklable partial targets)
# ---------------------------------------------------------------------------


def load_circuit(spec: str) -> "QuantumCircuit":
    """A circuit from a registry spec, or from a ``.qc``/``.txt`` file.

    The canonical circuit loader behind every string-addressed surface
    (CLI arguments, :class:`repro.config.RunConfig`, sweep factories).
    """
    if spec.endswith(".qc") or spec.endswith(".txt"):
        from repro.circuits import qasm

        return qasm.load(spec)
    return CIRCUITS.build(spec)


def load_environment(spec: str) -> "PhysicalEnvironment":
    """An environment from a registry spec, or from a ``.json`` file."""
    if spec.endswith(".json"):
        from repro.hardware import io as hardware_io

        return hardware_io.load(spec)
    return ENVIRONMENTS.build(spec)


def as_circuit_factory(circuit: Union[str, Callable[[], Any]]) -> Callable[[], Any]:
    """Coerce a circuit spec string (or pass through a factory callable).

    String specs become ``partial(load_circuit, spec)`` — module-level and
    hence picklable, so grids built from them serialise (and fingerprint)
    identically in any process.
    """
    if isinstance(circuit, str):
        from functools import partial

        return partial(load_circuit, circuit)
    if callable(circuit):
        return circuit
    raise UnknownSpecError(
        f"expected a circuit spec string or factory, got {circuit!r}"
    )


def as_environment_factory(environment: Union[str, Callable[[], Any]]) -> Callable[[], Any]:
    """Coerce an environment spec string (or pass through a factory)."""
    if isinstance(environment, str):
        from functools import partial

        return partial(load_environment, environment)
    if callable(environment):
        return environment
    raise UnknownSpecError(
        f"expected an environment spec string or factory, got {environment!r}"
    )
