"""Runtime models for placed circuits."""

from repro.timing.fidelity import (
    FidelityModel,
    estimate_fidelity,
    fidelity_of_placement_result,
    gate_fidelity,
)
from repro.timing.gate_times import (
    MAX_INTERACTION_USES,
    cap_interaction_runs,
    capped_circuit,
    gate_operating_time,
    identity_placement,
    validate_placement,
)
from repro.timing.scheduler import (
    RuntimeEvaluator,
    Schedule,
    ScheduleStep,
    circuit_runtime,
    runtime_lower_bound,
    schedule,
    sequential_level_runtime,
)
from repro.timing.trace import format_trace, trace_rows

__all__ = [
    "RuntimeEvaluator",
    "circuit_runtime",
    "sequential_level_runtime",
    "schedule",
    "Schedule",
    "ScheduleStep",
    "runtime_lower_bound",
    "gate_operating_time",
    "cap_interaction_runs",
    "capped_circuit",
    "identity_placement",
    "validate_placement",
    "MAX_INTERACTION_USES",
    "format_trace",
    "trace_rows",
    "FidelityModel",
    "estimate_fidelity",
    "fidelity_of_placement_result",
    "gate_fidelity",
]
