"""Gate operating times under a placement.

Definition 3 of the paper: once logical qubits are placed onto physical
nuclei via ``P``, a gate ``G(q_i, q_j)`` takes

    GateOperatingTime(G) = W(P(q_i), P(q_j)) * T(G)

where ``W`` is the environment's delay table and ``T(G)`` the gate's relative
duration.  Single-qubit gates use the node's self-delay ``W(v, v)``.

This module also implements the interaction-run cap used by the paper's
experimental section: by the geometric theory of two-qubit operations
(Zhang et al. [26]), any two-qubit unitary needs at most three uses of a
given interaction, so a run of consecutive two-qubit gates on the same qubit
pair never needs to cost more than ``3 * W`` of interaction time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, Qubit
from repro.exceptions import PlacementError
from repro.hardware.environment import Node, PhysicalEnvironment

#: Maximal number of uses of one interaction needed for any two-qubit unitary.
MAX_INTERACTION_USES = 3.0

Placement = Mapping[Qubit, Node]


def validate_placement(
    placement: Placement,
    circuit: QuantumCircuit,
    environment: PhysicalEnvironment,
) -> None:
    """Check that ``placement`` is an injective map of the circuit's qubits.

    Raises :class:`~repro.exceptions.PlacementError` when a circuit qubit is
    unplaced, a target node is unknown, or two qubits share a node.
    """
    targets = []
    for qubit in circuit.qubits:
        if qubit not in placement:
            raise PlacementError(f"qubit {qubit!r} has no placement")
        node = placement[qubit]
        if node not in environment:
            raise PlacementError(
                f"qubit {qubit!r} is placed on unknown node {node!r}"
            )
        targets.append(node)
    if len(set(targets)) != len(targets):
        raise PlacementError(f"placement is not injective: {dict(placement)!r}")


def gate_operating_time(
    gate: Gate,
    placement: Placement,
    environment: PhysicalEnvironment,
) -> float:
    """Operating time of one placed gate: ``W(P(q_i), P(q_j)) * T(G)``."""
    if gate.is_two_qubit:
        a, b = gate.qubits
        weight = environment.pair_delay(placement[a], placement[b])
    else:
        weight = environment.single_qubit_delay(placement[gate.qubits[0]])
    return weight * gate.duration


def cap_interaction_runs(
    gates: Iterable[Gate],
    max_uses: float = MAX_INTERACTION_USES,
) -> List[Gate]:
    """Cap runs of consecutive two-qubit gates on the same pair at ``max_uses``.

    A *run* is a maximal sequence of two-qubit gates on one unordered qubit
    pair that is not interrupted by any other gate at all — the break rule
    is deliberately conservative: any gate that is not a two-qubit gate on
    the run's pair ends the run, except for *free* single-qubit gates on
    one of the pair's qubits, which can be absorbed into the two-qubit
    unitary and therefore do not interrupt.  (A gate on two unrelated
    qubits also ends the run even though it commutes past it; merging
    across such gates would be sound but is left to the commutation-aware
    reordering pass, keeping this transformation purely local.)  The total
    relative duration of a run is clamped to ``max_uses``; the clamp trims
    durations from the end of the run.

    The returned list preserves the original gate order exactly — free
    single-qubit gates interleaved in a run stay in their positions, with
    only fully-trimmed two-qubit gates dropped — along with everything else
    the placement problem depends on (qubit pairs, total durations up to
    the cap).
    """
    gate_list = list(gates)
    result: List[Gate] = []
    index = 0
    while index < len(gate_list):
        gate = gate_list[index]
        if not gate.is_two_qubit:
            result.append(gate)
            index += 1
            continue

        pair = gate.interaction()
        window: List[Gate] = []  # every gate of the run, in original order
        run_gates: List[Gate] = []  # just the two-qubit gates, in order
        scan = index
        while scan < len(gate_list):
            candidate = gate_list[scan]
            if candidate.is_two_qubit and candidate.interaction() == pair:
                window.append(candidate)
                run_gates.append(candidate)
                scan += 1
                continue
            if (
                not candidate.is_two_qubit
                and candidate.is_free
                and candidate.qubits[0] in pair
            ):
                window.append(candidate)
                scan += 1
                continue
            break

        total = sum(g.duration for g in run_gates)
        if total > max_uses:
            # Trim durations from the end of the run until only ``max_uses``
            # units of interaction time remain, then re-emit the whole
            # window in its original order with the trimmed replacements
            # (dropping two-qubit gates trimmed to nothing).
            excess = total - max_uses
            capped: List[Optional[Gate]] = list(run_gates)
            for position in range(len(run_gates) - 1, -1, -1):
                if excess <= 0:
                    break
                gate_duration = run_gates[position].duration
                reduction = min(gate_duration, excess)
                remaining = gate_duration - reduction
                capped[position] = (
                    run_gates[position].with_duration(remaining)
                    if remaining > 0
                    else None
                )
                excess -= reduction
            replacements = iter(capped)
            for member in window:
                if member.is_two_qubit:
                    replacement = next(replacements)
                    if replacement is not None:
                        result.append(replacement)
                else:
                    result.append(member)
        else:
            result.extend(window)
        index = scan
    return result


def capped_circuit(
    circuit: QuantumCircuit, max_uses: float = MAX_INTERACTION_USES
) -> QuantumCircuit:
    """Return a copy of ``circuit`` with interaction runs capped at ``max_uses``."""
    return QuantumCircuit(
        circuit.qubits,
        cap_interaction_runs(circuit.gates, max_uses),
        name=circuit.name,
    )


def total_interaction_time(
    circuit: QuantumCircuit,
    placement: Placement,
    environment: PhysicalEnvironment,
) -> float:
    """Sum of two-qubit gate operating times — a parallelism-free lower bound proxy."""
    return sum(
        gate_operating_time(g, placement, environment)
        for g in circuit
        if g.is_two_qubit
    )


def identity_placement(circuit: QuantumCircuit, environment: PhysicalEnvironment) -> Dict[Qubit, Node]:
    """Place circuit qubit ``i`` onto environment node ``i`` (by position).

    Requires the environment to have at least as many qubits as the circuit.
    Useful as a trivial baseline and in tests.
    """
    if circuit.num_qubits > environment.num_qubits:
        raise PlacementError(
            f"circuit has {circuit.num_qubits} qubits but environment "
            f"{environment.name!r} only has {environment.num_qubits}"
        )
    return dict(zip(circuit.qubits, environment.nodes))
