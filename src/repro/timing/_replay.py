"""Array-backed evaluation backend for the scheduler replay engine.

The :class:`~repro.timing.scheduler.RuntimeEvaluator` compiles a circuit's
gate list into integer-indexed operations and replays them thousands of
times during hill-climbing fine tuning.  This module supplies the optional
``numpy`` backend of that evaluator: the op list is flattened into parallel
arrays (``ops_a``, ``ops_b``, ``relative``) and every *duration table* —
the per-operation operating time under a concrete node assignment — is
computed in a handful of vectorised array operations instead of one Python
branch-and-dict-lookup per operation.  The sequential busy-time recurrence
itself (the paper's per-qubit dynamic program) stays a tight Python loop
over the precomputed duration array: its loop-carried dependence cannot be
vectorised without changing the order of float operations, and the backend
contract is *bit-identical* results, not approximately-equal ones.

``numpy`` is strictly optional: everything here degrades to ``None``/
raises cleanly when it is not importable, and the evaluator keeps its pure
Python loop as the always-available reference implementation.  Backend
choice is resolved by :func:`resolve_backend` from an explicit request, the
``REPRO_SCHEDULER_BACKEND`` environment variable, and (for ``"auto"``) a
profitability threshold — the vectorised kernel has a fixed per-evaluation
array overhead that only pays off once the compiled op list is long enough.

A third backend, ``native``, compiles the whole recurrence (not just the
duration tables) to a small C kernel under the same bit-identical contract;
its build shim and array plumbing live in :mod:`repro.timing._native`, this
module only resolves the name and registers it in ``SCHEDULER_BACKENDS``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.timing import _native

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

#: Whether the numpy backend can be used in this interpreter.
NUMPY_AVAILABLE = _np is not None

#: Environment variable consulted when a backend request is ``"auto"``.
BACKEND_ENV_VAR = "REPRO_SCHEDULER_BACKEND"

#: Accepted backend names.
BACKEND_CHOICES = ("auto", "python", "numpy", "native")

#: Minimum compiled op count at which ``"auto"`` prefers the numpy backend.
#: Below this, the fixed per-evaluation array overhead (index arithmetic,
#: slice copies) exceeds what vectorising the duration table saves; the
#: constant was calibrated with ``benchmarks/perf`` replay scenarios.
AUTO_NUMPY_MIN_OPS = 256

#: Minimum compiled op count at which ``"auto"`` prefers the native kernel
#: (when it builds).  The per-call ctypes dispatch costs a few microseconds,
#: so on very short op lists the plain Python loop still wins; above this
#: the compiled recurrence dominates both other backends (calibrated with
#: the ``replay_native`` scenario in ``benchmarks/perf``).
AUTO_NATIVE_MIN_OPS = 32

#: Bound on :class:`ReplayTable`'s per-changed-set gather cache.  An
#: annealer proposing random swaps on a large host can visit a huge number
#: of distinct qubit pairs; the cache is pure memoisation (entries are
#: recomputed exactly on re-miss), so evicting the oldest entries changes
#: wall time only, never results.
GATHER_CACHE_MAX_ENTRIES = 256


def resolve_backend(requested: str = "auto", num_ops: Optional[int] = None) -> str:
    """Resolve a backend request to ``"python"``, ``"numpy"`` or ``"native"``.

    ``"auto"`` first defers to the :data:`BACKEND_ENV_VAR` environment
    variable (which may itself say ``auto``); a still-unresolved ``auto``
    picks the fastest profitable backend: ``native`` when the kernel is
    (or can be) built *and* the op list is long enough
    (:data:`AUTO_NATIVE_MIN_OPS`), else ``numpy`` when it is importable and
    the op list is long enough (:data:`AUTO_NUMPY_MIN_OPS`), else
    ``python``.  The profitability thresholds are skipped when ``num_ops``
    is ``None``.  All three resolutions are bit-identical by contract, so
    ``auto`` never changes any output — only wall time.

    An explicit ``"numpy"``/``"native"`` request (argument or environment
    variable) raises when that backend is unavailable — silently falling
    back would hide a misconfigured deployment; ``auto`` degrades silently
    instead.
    """
    if requested not in BACKEND_CHOICES:
        raise ReproError(
            f"unknown scheduler backend {requested!r}; "
            f"choose one of {BACKEND_CHOICES}"
        )
    if requested == "auto":
        from_env = os.environ.get(BACKEND_ENV_VAR, "").strip()
        if from_env:
            if from_env not in BACKEND_CHOICES:
                raise ReproError(
                    f"invalid {BACKEND_ENV_VAR}={from_env!r}; "
                    f"choose one of {BACKEND_CHOICES}"
                )
            requested = from_env
    if requested == "auto":
        if (num_ops is None or num_ops >= AUTO_NATIVE_MIN_OPS) and _native.available():
            return "native"
        if NUMPY_AVAILABLE and (num_ops is None or num_ops >= AUTO_NUMPY_MIN_OPS):
            return "numpy"
        return "python"
    if requested == "numpy" and not NUMPY_AVAILABLE:
        raise ReproError(
            "the numpy scheduler backend was requested but numpy is not "
            "importable; install numpy or use backend='python'"
        )
    if requested == "native" and not _native.available():
        raise ReproError(
            "the native scheduler backend was requested but the kernel is "
            f"unavailable ({_native.unavailable_reason()}); "
            "use backend='auto' to fall back silently"
        )
    return requested


# String-addressable backend registry (see repro.registry): building an
# entry resolves the request to a concrete backend name, so e.g.
# SCHEDULER_BACKENDS.build("auto") returns "numpy" or "python".
from functools import partial as _partial

from repro.registry import SCHEDULER_BACKENDS

SCHEDULER_BACKENDS.add(
    "auto", resolve_backend,
    description="defer to REPRO_SCHEDULER_BACKEND, then pick the "
                "profitable backend",
)
SCHEDULER_BACKENDS.add(
    "python", _partial(resolve_backend, "python"),
    description="pure-Python reference evaluation loop",
)
SCHEDULER_BACKENDS.add(
    "numpy", _partial(resolve_backend, "numpy"),
    description="vectorised duration tables (requires numpy)",
)
SCHEDULER_BACKENDS.add(
    "native", _partial(resolve_backend, "native"),
    description="compiled C replay kernel (built on demand, needs a C "
                "compiler at first use)",
)


def pair_delay_matrix(environment, nodes: Sequence) -> "Optional[_np.ndarray]":
    """Dense ``W`` matrix: ``matrix[i, j] = environment.pair_delay(nodes[i], nodes[j])``.

    The diagonal holds the single-qubit delays (``pair_delay(v, v)``
    degenerates to them), so the matrix reproduces the evaluator's pure
    Python ``_pair_weight`` for *every* index pair, including the degenerate
    ones a caller can produce by overriding two qubits onto one node.

    The underlying flat table comes from
    :meth:`~repro.hardware.environment.PhysicalEnvironment.pair_delay_table`
    — cached per calibration on the environment, shared zero-copy with the
    native backend — so the returned array is marked read-only; rebind
    (``table.pair = table.pair * 2``) instead of mutating in place.
    """
    if _np is None:  # pragma: no cover - callers gate on NUMPY_AVAILABLE
        return None
    count = len(nodes)
    flat = environment.pair_delay_table(tuple(nodes))
    matrix = _np.frombuffer(flat, dtype=_np.float64).reshape(count, count)
    matrix.flags.writeable = False
    return matrix


class ReplayTable:
    """The compiled flat-array form of an evaluator's op list.

    Parameters
    ----------
    ops:
        The evaluator's compiled operations: ``(qubit_a, qubit_b, relative)``
        triples with ``qubit_b == -1`` for single-qubit operations.
    num_qubits:
        Number of circuit qubits (op indices are below this).
    single_delays:
        Per-environment-node single-qubit delays, indexed by node index.
    pair_matrix:
        Dense node-pair delay matrix from :func:`pair_delay_matrix`.
    """

    __slots__ = (
        "num_ops",
        "ops_a",
        "ops_b_safe",
        "is_two",
        "relative",
        "single",
        "pair",
        "touched",
        "_gathered",
        "_gather_cache",
    )

    def __init__(
        self,
        ops: Sequence[Tuple[int, int, float]],
        num_qubits: int,
        single_delays: Sequence[float],
        pair_matrix: "_np.ndarray",
    ) -> None:
        if _np is None:  # pragma: no cover - constructed only when available
            raise ReproError("numpy is required to build a ReplayTable")
        self.num_ops = len(ops)
        ops_a = _np.fromiter((op[0] for op in ops), dtype=_np.intp, count=self.num_ops)
        ops_b = _np.fromiter((op[1] for op in ops), dtype=_np.intp, count=self.num_ops)
        self.ops_a = ops_a
        self.is_two = ops_b >= 0
        # Clamp the -1 sentinel so fancy indexing never wraps; the values
        # read through clamped slots are discarded by the ``where`` mask.
        self.ops_b_safe = _np.where(self.is_two, ops_b, 0)
        self.relative = _np.fromiter(
            (op[2] for op in ops), dtype=_np.float64, count=self.num_ops
        )
        self.single = _np.asarray(single_delays, dtype=_np.float64)
        self.pair = pair_matrix
        touched: List[List[int]] = [[] for _ in range(num_qubits)]
        for index, (a, b, _relative) in enumerate(ops):
            touched[a].append(index)
            if b >= 0:
                touched[b].append(index)
        self.touched = [_np.asarray(indices, dtype=_np.intp) for indices in touched]
        # Per-qubit pre-gathered op columns (indices, endpoints, two-qubit
        # mask, relative durations), so a candidate move pays no per-call
        # fancy indexing to collect the ops it affects.  The cache extends
        # the same idea to recurring multi-qubit changed sets (swaps).
        self._gathered = [
            (
                indices,
                self.ops_a[indices],
                self.ops_b_safe[indices],
                self.is_two[indices],
                self.relative[indices],
            )
            for indices in self.touched
        ]
        self._gather_cache: Dict[Tuple[int, ...], Tuple] = {}

    # -- duration tables -----------------------------------------------------

    def nodes_array(self, nodes: Sequence[int]) -> "_np.ndarray":
        """A node-assignment list as an index array."""
        return _np.asarray(nodes, dtype=_np.intp)

    def durations(self, nodes: "_np.ndarray") -> "_np.ndarray":
        """The full duration table under a node assignment, vectorised.

        Element ``i`` is exactly the pure Python evaluator's
        ``weight * relative`` for op ``i``: the same IEEE-754 double
        multiplication of the same operands, hence the same bits.
        """
        placed_a = nodes[self.ops_a]
        weights = _np.where(
            self.is_two,
            self.pair[placed_a, nodes[self.ops_b_safe]],
            self.single[placed_a],
        )
        return weights * self.relative

    def changed_durations(
        self,
        base_nodes: "_np.ndarray",
        changed: Mapping[int, int],
    ) -> Tuple[List[int], List[float]]:
        """Recomputed durations of every op touching a changed qubit.

        Returns parallel lists ``(op_indices, durations)`` — the vectorised
        replacement for the pure Python path's per-operation delay lookups.
        The caller scatters them over a copy of the recorded base durations,
        which stay bit-identical for unaffected operations by construction.
        """
        if len(changed) == 1:
            affected, ops_a, ops_b, is_two, relative = self._gathered[
                next(iter(changed))
            ]
        else:
            # Ops shared by two changed qubits appear once per qubit; the
            # duplicates are harmless (both occurrences compute the same
            # value from the same ``nodes`` array) and skipping the dedup
            # keeps the per-move fixed cost down.
            key = tuple(sorted(changed))
            cached = self._gather_cache.get(key)
            if cached is None:
                columns = [self._gathered[index] for index in changed]
                cached = tuple(
                    _np.concatenate([column[part] for column in columns])
                    for part in range(5)
                )
                # Bounded memoisation: a long annealing run on a large host
                # can propose a huge number of distinct swap pairs; evict
                # the oldest entry (dicts iterate in insertion order) so the
                # cache never grows without limit.  Eviction is invisible to
                # results — a re-miss recomputes exactly the same arrays.
                if len(self._gather_cache) >= GATHER_CACHE_MAX_ENTRIES:
                    del self._gather_cache[next(iter(self._gather_cache))]
                self._gather_cache[key] = cached
            affected, ops_a, ops_b, is_two, relative = cached
        if not affected.size:
            return [], []
        nodes = base_nodes.copy()
        for index, target in changed.items():
            nodes[index] = target
        placed_a = nodes[ops_a]
        weights = _np.where(
            is_two,
            self.pair[placed_a, nodes[ops_b]],
            self.single[placed_a],
        )
        return affected.tolist(), (weights * relative).tolist()

    # -- checkpoint matrices -------------------------------------------------

    def checkpoint_matrix(
        self, checkpoints: Sequence[Sequence[float]], num_qubits: int
    ) -> "_np.ndarray":
        """Stack busy-time checkpoints into one ``(count, num_qubits)`` matrix."""
        if not checkpoints:
            return _np.empty((0, num_qubits), dtype=_np.float64)
        return _np.asarray(checkpoints, dtype=_np.float64)
