/* Native kernel for the scheduler's busy-time recurrence.
 *
 * Compiled on demand by repro/timing/_native.py (cc -O2 -fPIC -shared
 * -ffp-contract=off) and loaded via ctypes as the "native" entry of
 * SCHEDULER_BACKENDS.  The contract is *bit-identical* results with the
 * pure Python reference loop in repro/timing/scheduler.py: every duration
 * is the same IEEE-754 double multiply of the same operands, the
 * recurrence applies the same compare/add sequence in the same order, and
 * the final reduction mirrors CPython's max() (first element, replaced
 * only on strictly-greater comparison, so NaN handling matches too).
 *
 * -ffp-contract=off matters: a fused multiply-add of weight*relative+busy
 * rounds once where the Python loop rounds twice, which would break the
 * bit-identity contract on the very first op.  x86-64 SSE2 doubles are
 * IEEE-754 binary64, the same representation CPython floats use.
 */

#include <math.h>
#include <stdint.h>
#include <string.h>

/* A single op: endpoints a/b (qubit indices; b < 0 marks a single-qubit
 * op) and the relative duration.  Delays are looked up per evaluation in
 * `single` (per node) or the dense `pair` matrix (num_env_nodes ^ 2,
 * row-major), exactly like ReplayTable. */

static double final_max(const double *times, int64_t num_qubits)
{
    /* CPython max(): keep the first element, replace on item > best. */
    double best;
    int64_t q;
    if (num_qubits <= 0) {
        return 0.0;
    }
    best = times[0];
    for (q = 1; q < num_qubits; q++) {
        if (times[q] > best) {
            best = times[q];
        }
    }
    return best;
}

/* Full evaluation under the node assignment `nodes` (qubit -> node
 * index).  Optionally records the per-op duration table and the periodic
 * busy-time checkpoints (one row of num_qubits doubles every `interval`
 * ops, written *before* the op at that index is applied, starting at op
 * 0) that the incremental tail replay later restores.  `times` is a
 * caller-owned scratch buffer of num_qubits doubles (zeroed here).
 * Returns the circuit runtime. */
double repro_replay_full(
    int64_t num_ops,
    const int32_t *ops_a,
    const int32_t *ops_b,
    const double *relative,
    const int32_t *nodes,
    const double *single,
    const double *pair,
    int64_t num_env_nodes,
    int64_t num_qubits,
    int64_t interval,
    double *durations_out,
    double *checkpoints_out,
    double *times)
{
    int64_t i, checkpoint = 0;
    for (i = 0; i < num_qubits; i++) {
        times[i] = 0.0;
    }
    for (i = 0; i < num_ops; i++) {
        int32_t a = ops_a[i];
        int32_t b = ops_b[i];
        double duration;
        if (checkpoints_out != NULL && i % interval == 0) {
            memcpy(checkpoints_out + checkpoint * num_qubits, times,
                   (size_t)num_qubits * sizeof(double));
            checkpoint++;
        }
        if (b < 0) {
            duration = single[nodes[a]] * relative[i];
            times[a] = times[a] + duration;
        } else {
            double time_a = times[a];
            double time_b = times[b];
            double finish;
            duration =
                pair[(int64_t)nodes[a] * num_env_nodes + nodes[b]] * relative[i];
            finish = (time_a >= time_b ? time_a : time_b) + duration;
            times[a] = finish;
            times[b] = finish;
        }
        if (durations_out != NULL) {
            durations_out[i] = duration;
        }
    }
    return final_max(times, num_qubits);
}

/* Incremental tail replay: restore the checkpoint row covering `start`,
 * then replay ops start..num_ops-1.  Ops touching a changed qubit
 * (changed_flag[q] != 0, new node changed_target[q]) recompute their
 * duration from the delay tables; unaffected ops reuse base_durations.
 * With has_cutoff, the replay stops as soon as any busy time reaches
 * `cutoff` (busy times are monotone, so the final runtime is at least
 * that); *stop_index_out records the stopping op for the caller's
 * replayed-ops accounting, or -1 when the tail ran to completion.
 * Returns the runtime, or +inf on cutoff. */
double repro_replay_tail(
    int64_t start,
    int64_t num_ops,
    const int32_t *ops_a,
    const int32_t *ops_b,
    const double *relative,
    const double *base_durations,
    const int32_t *base_nodes,
    const int8_t *changed_flag,
    const int32_t *changed_target,
    const double *single,
    const double *pair,
    int64_t num_env_nodes,
    int64_t num_qubits,
    const double *checkpoint_row,
    double cutoff,
    int32_t has_cutoff,
    double *times,
    int64_t *stop_index_out)
{
    int64_t i;
    *stop_index_out = -1;
    if (checkpoint_row != NULL) {
        memcpy(times, checkpoint_row, (size_t)num_qubits * sizeof(double));
    } else {
        for (i = 0; i < num_qubits; i++) {
            times[i] = 0.0;
        }
    }
    for (i = start; i < num_ops; i++) {
        int32_t a = ops_a[i];
        int32_t b = ops_b[i];
        double finish;
        if (b < 0) {
            double duration;
            if (changed_flag[a]) {
                duration = single[changed_target[a]] * relative[i];
            } else {
                duration = base_durations[i];
            }
            finish = times[a] + duration;
            times[a] = finish;
        } else {
            double duration;
            double time_a, time_b;
            if (changed_flag[a] || changed_flag[b]) {
                int32_t node_a = changed_flag[a] ? changed_target[a] : base_nodes[a];
                int32_t node_b = changed_flag[b] ? changed_target[b] : base_nodes[b];
                duration =
                    pair[(int64_t)node_a * num_env_nodes + node_b] * relative[i];
            } else {
                duration = base_durations[i];
            }
            time_a = times[a];
            time_b = times[b];
            finish = (time_a >= time_b ? time_a : time_b) + duration;
            times[a] = finish;
            times[b] = finish;
        }
        if (has_cutoff && finish >= cutoff) {
            *stop_index_out = i;
            return HUGE_VAL; /* +inf, matching the Python float("inf") */
        }
    }
    return final_max(times, num_qubits);
}

/* Per-evaluator context: every constant operand of the two loops above,
 * bound once on the Python side (repro/timing/_native.py keeps a ctypes
 * Structure with this exact layout).  The ctx entry points exist because
 * marshalling 13-18 ctypes arguments per call costs more than a short
 * incremental replay itself; with the context, a tail replay passes four
 * scalars.  They delegate to the reference entry points, so the float
 * semantics are identical by construction. */
typedef struct {
    int64_t num_ops;
    int64_t num_qubits;
    int64_t num_env_nodes;
    int64_t interval;
    int64_t num_checkpoints;
    int64_t stop_index;
    const int32_t *ops_a;
    const int32_t *ops_b;
    const double *relative;
    const double *single_delays;
    const double *pair;
    const int32_t *eval_nodes;
    const int32_t *base_nodes;
    const int8_t *changed_flag;
    const int32_t *changed_target;
    double *base_durations;
    double *checkpoints;
    double *times;
} repro_replay_ctx;

/* Full evaluation through the context.  record != 0 evaluates the base
 * nodes and fills the duration/checkpoint tables; record == 0 evaluates
 * eval_nodes with no recording (the plain run_full path). */
double repro_ctx_full(repro_replay_ctx *ctx, int32_t record)
{
    return repro_replay_full(
        ctx->num_ops, ctx->ops_a, ctx->ops_b, ctx->relative,
        record ? ctx->base_nodes : ctx->eval_nodes,
        ctx->single_delays, ctx->pair, ctx->num_env_nodes, ctx->num_qubits,
        ctx->interval,
        record ? ctx->base_durations : NULL,
        record ? ctx->checkpoints : NULL,
        ctx->times);
}

/* Incremental tail replay through the context; the checkpoint row is
 * derived from `start` here instead of being passed as a pointer.  The
 * stop index lands in ctx->stop_index. */
double repro_ctx_tail(repro_replay_ctx *ctx, int64_t start, double cutoff,
                      int32_t has_cutoff)
{
    int64_t checkpoint = start / ctx->interval;
    const double *row =
        checkpoint < ctx->num_checkpoints
            ? ctx->checkpoints + checkpoint * ctx->num_qubits
            : NULL;
    return repro_replay_tail(
        start, ctx->num_ops, ctx->ops_a, ctx->ops_b, ctx->relative,
        ctx->base_durations, ctx->base_nodes, ctx->changed_flag,
        ctx->changed_target, ctx->single_delays, ctx->pair,
        ctx->num_env_nodes, ctx->num_qubits, row, cutoff, has_cutoff,
        ctx->times, &ctx->stop_index);
}
