"""A simple fidelity model for placed circuits.

The paper assumes "gate fidelities are inversely proportional to the
coupling strength / gate runtime, otherwise a function of both may be
considered" — i.e. minimising the runtime is (to first order) maximising
the fidelity.  This module makes that connection explicit so placements can
be compared on an estimated success probability as well as on a runtime:

* every gate contributes an error ``1 - exp(-operating_time / gate_quality_time)``,
* every qubit decoheres over the whole circuit runtime with time constant
  ``coherence_time`` (the paper quotes decoherence of "around one second"
  for liquid-state NMR),

and the estimated circuit fidelity is the product of the corresponding
survival probabilities.  The model is deliberately coarse — it is a ranking
device, not a noise simulator — but it is monotone in exactly the quantities
the placer optimises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Qubit
from repro.exceptions import ReproError
from repro.hardware.environment import Node, PhysicalEnvironment
from repro.timing.gate_times import (
    MAX_INTERACTION_USES,
    cap_interaction_runs,
    gate_operating_time,
)
from repro.timing.scheduler import circuit_runtime


@dataclass(frozen=True)
class FidelityModel:
    """Noise parameters for :func:`estimate_fidelity`.

    Attributes
    ----------
    coherence_time:
        Per-qubit decoherence time constant, in environment delay units.
        The NMR data set uses ``1e-4`` s units, so the paper's "around one
        second" corresponds to ``10000``.
    gate_quality_time:
        Time constant of per-gate control errors, in the same units; larger
        means better pulses.
    """

    coherence_time: float = 10000.0
    gate_quality_time: float = 100000.0

    def __post_init__(self) -> None:
        if self.coherence_time <= 0 or self.gate_quality_time <= 0:
            raise ReproError("fidelity time constants must be positive")


def gate_fidelity(
    operating_time: float, model: FidelityModel
) -> float:
    """Survival probability of a single gate of the given operating time."""
    return math.exp(-operating_time / model.gate_quality_time)


def estimate_fidelity(
    circuit: QuantumCircuit,
    placement: Mapping[Qubit, Node],
    environment: PhysicalEnvironment,
    model: FidelityModel = FidelityModel(),
    apply_interaction_cap: bool = True,
) -> float:
    """Estimated fidelity of executing ``circuit`` under ``placement``.

    The product of every gate's survival probability and every qubit's
    decoherence survival over the scheduled circuit runtime.  Always in
    ``(0, 1]`` and monotonically decreasing in the runtime, so the placement
    minimising the runtime maximises this estimate for fixed gate content.

    With ``apply_interaction_cap`` both terms are computed from the *same*
    capped gate sequence that the runtime model executes: a capped run
    really applies at most :data:`~repro.timing.gate_times.MAX_INTERACTION_USES`
    units of interaction, so charging the per-gate control error for the
    uncapped durations would penalise pulses that are never played.
    """
    runtime = circuit_runtime(
        circuit,
        placement,
        environment,
        apply_interaction_cap=apply_interaction_cap,
        validate=True,
    )
    gates = circuit.gates
    if apply_interaction_cap:
        gates = cap_interaction_runs(gates, MAX_INTERACTION_USES)
    gate_error_exponent = 0.0
    for gate in gates:
        gate_error_exponent += gate_operating_time(gate, placement, environment)
    gate_term = math.exp(-gate_error_exponent / model.gate_quality_time)
    decoherence_term = math.exp(
        -circuit.num_qubits * runtime / model.coherence_time
    )
    return gate_term * decoherence_term


def fidelity_of_placement_result(
    result,
    environment: PhysicalEnvironment,
    model: FidelityModel = FidelityModel(),
) -> float:
    """Estimated fidelity of a :class:`~repro.core.result.PlacementResult`.

    Evaluates the assembled physical circuit (workspace gates plus SWAP
    stages) under the identity placement, so the routing overhead is charged
    as well.
    """
    identity = {node: node for node in environment.nodes}
    return estimate_fidelity(
        result.physical_circuit, identity, environment, model=model
    )
