"""Human-readable schedule traces (Table 1 of the paper).

Example 3 of the paper walks through the cost calculation of one placement
of the 3-qubit error-correction encoder into acetyl chloride, presenting the
per-qubit busy times after each timed gate as Table 1.  The helpers below
render a :class:`~repro.timing.scheduler.Schedule` in the same layout so the
table can be reproduced verbatim in the benchmark harness and in examples.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.circuits.gates import Qubit
from repro.core._bitset import canonical_order
from repro.timing.scheduler import Schedule


def _gate_label(gate) -> str:
    """A compact per-column gate label in the paper's style (e.g. ``Ya90``)."""
    qubits = "".join(str(q) for q in gate.qubits)
    if gate.angle is not None:
        angle = f"{abs(gate.angle):g}"
        prefix = gate.name.replace("R", "") if gate.name.startswith("R") else gate.name
        return f"{prefix}{qubits}{angle}"
    return f"{gate.name}{qubits}"


def trace_rows(schedule: Schedule, qubit_order: Sequence[Qubit] = ()) -> List[List[str]]:
    """Rows of the Table-1 style trace: one row per qubit, one column per gate.

    The first column is the qubit label; subsequent columns give the qubit's
    busy time after each timed gate, formatted as integers when exact.
    """
    if qubit_order:
        qubits = list(qubit_order)
    else:
        qubits = canonical_order(schedule.placement.keys())

    def fmt(value: float) -> str:
        return f"{int(value)}" if float(value).is_integer() else f"{value:g}"

    rows = []
    for qubit in qubits:
        row = [str(qubit)]
        for step in schedule.steps:
            row.append(fmt(step.qubit_times.get(qubit, 0.0)))
        rows.append(row)
    return rows


def format_trace(schedule: Schedule, qubit_order: Sequence[Qubit] = ()) -> str:
    """Render a schedule trace as a fixed-width text table."""
    header = ["time[ ]"] + [_gate_label(step.gate) for step in schedule.steps]
    rows = trace_rows(schedule, qubit_order)
    table = [header] + rows
    widths = [max(len(row[col]) for row in table) for col in range(len(header))]
    lines = []
    for row in table:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
