"""On-demand build shim and ctypes binding for the native replay kernel.

The ``"native"`` scheduler backend compiles ``_native_kernel.c`` (which
lives next to this module) into a small shared library the first time it
is requested, caches the artifact under a content-addressed name, and
drives it through :mod:`ctypes`.  There is **no install-time dependency**:
a plain ``PYTHONPATH=src`` checkout works, the only requirement is a C
compiler on ``PATH`` (``cc``/``gcc``/``clang``, or ``$CC``) at first use —
after that the cached ``.so`` is reused across processes and sessions.

Failure is a first-class state, not an exception at import time:

* :func:`available` probes (and memoises) whether the kernel can be
  loaded, attempting at most one build per process;
* an explicit ``backend="native"`` request surfaces the recorded one-line
  reason via :func:`load_kernel` (wrapped in a
  :class:`~repro.exceptions.ReproError` by ``resolve_backend``);
* ``backend="auto"`` treats an unavailable kernel as "not profitable" and
  silently keeps the python/numpy resolution.

Bit-identity: the kernel performs exactly the IEEE-754 double operations
of the pure Python reference loop (see the comment block at the top of
``_native_kernel.c``); the build deliberately passes ``-ffp-contract=off``
so no multiply-add is fused into an FMA with a single rounding.

The array plumbing uses the stdlib :mod:`array` module (not numpy): the
native backend must work — and be worth using — on hosts where numpy is
not importable at all.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from array import array
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.stats import STATS

#: Environment variable overriding the compiled-artifact cache directory.
CACHE_DIR_ENV_VAR = "REPRO_NATIVE_CACHE"

#: Compiler flags.  ``-ffp-contract=off`` is load-bearing: contraction of
#: ``weight * relative + busy`` into one fused rounding would break the
#: bit-identical backend contract.  ``-O2`` alone never reorders or fuses
#: IEEE double arithmetic on SSE2.
CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

_SOURCE_PATH = Path(__file__).with_name("_native_kernel.c")

# Memoised probe state: None = not yet probed; (kernel, None) on success;
# (None, reason) after a failed build/load attempt.
_PROBE: Optional[Tuple[Optional["_Kernel"], Optional[str]]] = None


def _compiler() -> Optional[str]:
    """The C compiler to use, or ``None`` when no toolchain is present."""
    env_cc = os.environ.get("CC", "").strip()
    if env_cc:
        resolved = shutil.which(env_cc)
        if resolved:
            return resolved
    for candidate in ("cc", "gcc", "clang"):
        resolved = shutil.which(candidate)
        if resolved:
            return resolved
    return None


def cache_dir() -> Path:
    """Directory holding compiled kernel artifacts."""
    override = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "native"


def _artifact_path(source: bytes, compiler: str) -> Path:
    """Content-addressed artifact path: same source + toolchain -> same file."""
    digest = hashlib.sha256()
    digest.update(source)
    digest.update(compiler.encode())
    digest.update(" ".join(CFLAGS).encode())
    digest.update(f"{sys.platform}-{os.uname().machine}".encode())
    return cache_dir() / f"replay_{digest.hexdigest()[:16]}.so"


class _ReplayCtx(ctypes.Structure):
    """Mirror of ``repro_replay_ctx`` in ``_native_kernel.c``.

    Built once per :class:`NativeReplay`; every kernel call after that
    passes this pointer plus at most three scalars.  Field order and
    types must match the C struct exactly.
    """

    _fields_ = [
        ("num_ops", ctypes.c_int64),
        ("num_qubits", ctypes.c_int64),
        ("num_env_nodes", ctypes.c_int64),
        ("interval", ctypes.c_int64),
        ("num_checkpoints", ctypes.c_int64),
        ("stop_index", ctypes.c_int64),
        ("ops_a", ctypes.POINTER(ctypes.c_int32)),
        ("ops_b", ctypes.POINTER(ctypes.c_int32)),
        ("relative", ctypes.POINTER(ctypes.c_double)),
        ("single_delays", ctypes.POINTER(ctypes.c_double)),
        ("pair", ctypes.POINTER(ctypes.c_double)),
        ("eval_nodes", ctypes.POINTER(ctypes.c_int32)),
        ("base_nodes", ctypes.POINTER(ctypes.c_int32)),
        ("changed_flag", ctypes.POINTER(ctypes.c_int8)),
        ("changed_target", ctypes.POINTER(ctypes.c_int32)),
        ("base_durations", ctypes.POINTER(ctypes.c_double)),
        ("checkpoints", ctypes.POINTER(ctypes.c_double)),
        ("times", ctypes.POINTER(ctypes.c_double)),
    ]


class _Kernel:
    """The loaded shared library with typed entry points."""

    def __init__(self, path: Path) -> None:
        lib = ctypes.CDLL(str(path))
        self.path = path
        ctx_p = ctypes.POINTER(_ReplayCtx)
        self.ctx_full = lib.repro_ctx_full
        self.ctx_full.restype = ctypes.c_double
        self.ctx_full.argtypes = [
            ctx_p,              # ctx
            ctypes.c_int32,     # record (1 = base_nodes + tables)
        ]
        self.ctx_tail = lib.repro_ctx_tail
        self.ctx_tail.restype = ctypes.c_double
        self.ctx_tail.argtypes = [
            ctx_p,              # ctx
            ctypes.c_int64,     # start
            ctypes.c_double,    # cutoff
            ctypes.c_int32,     # has_cutoff
        ]


def _build_and_load() -> Tuple[Optional[_Kernel], Optional[str]]:
    """Compile (if needed) and load the kernel; never raises."""
    try:
        source = _SOURCE_PATH.read_bytes()
    except OSError as error:
        return None, f"kernel source unreadable: {error}"
    compiler = _compiler()
    if compiler is None:
        return None, "no C compiler found (tried $CC, cc, gcc, clang)"
    artifact = _artifact_path(source, compiler)
    if not artifact.exists():
        try:
            artifact.parent.mkdir(parents=True, exist_ok=True)
            # Compile to a unique temp name, then atomically publish: two
            # concurrent first-time processes race harmlessly.
            fd, tmp_name = tempfile.mkstemp(
                suffix=".so", prefix="replay_build_", dir=str(artifact.parent)
            )
            os.close(fd)
            command = [compiler, *CFLAGS, "-o", tmp_name, str(_SOURCE_PATH)]
            completed = subprocess.run(
                command, capture_output=True, text=True, timeout=120
            )
            if completed.returncode != 0:
                os.unlink(tmp_name)
                detail = (completed.stderr or completed.stdout).strip()
                first_line = detail.splitlines()[0] if detail else "unknown error"
                return None, (
                    f"compilation failed ({' '.join(command[:2])}...): {first_line}"
                )
            os.replace(tmp_name, artifact)
        except (OSError, subprocess.SubprocessError) as error:
            return None, f"kernel build failed: {error}"
    try:
        return _Kernel(artifact), None
    except OSError as error:
        return None, f"kernel load failed: {error}"


def available() -> bool:
    """Whether the native kernel can be used in this process.

    At most one build attempt per process; the result (and any one-line
    failure reason) is memoised.
    """
    global _PROBE
    if _PROBE is None:
        _PROBE = _build_and_load()
        if _PROBE[0] is None:
            STATS.increment("scheduler.native_build_failures")
    return _PROBE[0] is not None


def unavailable_reason() -> Optional[str]:
    """The one-line failure reason after a failed probe (else ``None``)."""
    available()
    assert _PROBE is not None
    return _PROBE[1]


def load_kernel() -> _Kernel:
    """The loaded kernel; raises ``RuntimeError`` with the one-line reason."""
    if not available():
        raise RuntimeError(unavailable_reason() or "native kernel unavailable")
    assert _PROBE is not None and _PROBE[0] is not None
    return _PROBE[0]


def reset_probe_for_tests() -> None:
    """Forget the memoised probe (test hook: re-probe under a new env)."""
    global _PROBE
    _PROBE = None


def _double_view(buffer: array) -> "ctypes.Array[ctypes.c_double]":
    return (ctypes.c_double * len(buffer)).from_buffer(buffer)


def _int32_view(buffer: array) -> "ctypes.Array[ctypes.c_int32]":
    return (ctypes.c_int32 * len(buffer)).from_buffer(buffer)


class NativeReplay:
    """Per-evaluator native state: compiled op arrays + base-placement state.

    Mirrors :class:`repro.timing._replay.ReplayTable` for the ``numpy``
    backend, but stores everything in stdlib ``array`` buffers shared
    zero-copy with the C kernel.  The owning
    :class:`~repro.timing.scheduler.RuntimeEvaluator` keeps all public
    bookkeeping (STATS counters, checkpoint arithmetic, cutoff semantics)
    so the three backends stay operation-for-operation comparable.
    """

    __slots__ = (
        "_kernel",
        "num_ops",
        "num_qubits",
        "num_env_nodes",
        "interval",
        "num_checkpoints",
        "_ops_a",
        "_ops_b",
        "_relative",
        "_single",
        "_pair",
        "_ops_a_p",
        "_ops_b_p",
        "_relative_p",
        "_single_p",
        "_pair_p",
        "_times",
        "_times_p",
        "_flags",
        "_flags_p",
        "_targets",
        "_targets_p",
        "_eval_nodes",
        "_eval_nodes_p",
        "_base_nodes",
        "_base_nodes_p",
        "_durations",
        "_durations_p",
        "_checkpoints",
        "_checkpoints_p",
        "_ctx",
        "_ctx_ref",
        "has_base",
    )

    def __init__(
        self,
        ops: Sequence[Tuple[int, int, float]],
        num_qubits: int,
        single_delays: Sequence[float],
        pair_flat: array,
        num_env_nodes: int,
        checkpoint_interval: int,
    ) -> None:
        self._kernel = load_kernel()
        self.num_ops = len(ops)
        self.num_qubits = num_qubits
        self.num_env_nodes = num_env_nodes
        self.interval = checkpoint_interval
        self.num_checkpoints = (
            (self.num_ops + checkpoint_interval - 1) // checkpoint_interval
            if self.num_ops
            else 0
        )
        self._ops_a = array("i", (op[0] for op in ops))
        self._ops_b = array("i", (op[1] for op in ops))
        self._relative = array("d", (op[2] for op in ops))
        self._single = array("d", single_delays)
        self._pair = pair_flat
        self._times = array("d", bytes(8 * num_qubits))
        self._flags = array("b", bytes(num_qubits))
        self._targets = array("i", bytes(4 * num_qubits))
        self._eval_nodes = array("i", bytes(4 * num_qubits))
        self._base_nodes = array("i", bytes(4 * num_qubits))
        self._durations = array("d", bytes(8 * self.num_ops))
        self._checkpoints = array(
            "d", bytes(8 * self.num_checkpoints * num_qubits)
        )
        # ctypes views are built once: per-call from_buffer would dominate
        # the kernel-call cost on the incremental hot path.
        self._ops_a_p = _int32_view(self._ops_a)
        self._ops_b_p = _int32_view(self._ops_b)
        self._relative_p = _double_view(self._relative)
        self._single_p = _double_view(self._single)
        self._pair_p = _double_view(self._pair)
        self._times_p = _double_view(self._times)
        self._flags_p = (ctypes.c_int8 * num_qubits).from_buffer(self._flags)
        self._targets_p = _int32_view(self._targets)
        self._eval_nodes_p = _int32_view(self._eval_nodes)
        self._base_nodes_p = _int32_view(self._base_nodes)
        self._durations_p = _double_view(self._durations)
        self._checkpoints_p = _double_view(self._checkpoints)
        # The context struct binds every constant operand once; the view
        # attributes above keep the underlying buffers alive for as long
        # as the struct's raw pointers are reachable.
        double_p = ctypes.POINTER(ctypes.c_double)
        int32_p = ctypes.POINTER(ctypes.c_int32)
        self._ctx = _ReplayCtx(
            num_ops=self.num_ops,
            num_qubits=self.num_qubits,
            num_env_nodes=self.num_env_nodes,
            interval=self.interval,
            num_checkpoints=self.num_checkpoints,
            stop_index=-1,
            ops_a=ctypes.cast(self._ops_a_p, int32_p),
            ops_b=ctypes.cast(self._ops_b_p, int32_p),
            relative=ctypes.cast(self._relative_p, double_p),
            single_delays=ctypes.cast(self._single_p, double_p),
            pair=ctypes.cast(self._pair_p, double_p),
            eval_nodes=ctypes.cast(self._eval_nodes_p, int32_p),
            base_nodes=ctypes.cast(self._base_nodes_p, int32_p),
            changed_flag=ctypes.cast(
                self._flags_p, ctypes.POINTER(ctypes.c_int8)
            ),
            changed_target=ctypes.cast(self._targets_p, int32_p),
            base_durations=ctypes.cast(self._durations_p, double_p),
            checkpoints=ctypes.cast(self._checkpoints_p, double_p),
            times=ctypes.cast(self._times_p, double_p),
        )
        self._ctx_ref = ctypes.byref(self._ctx)
        self.has_base = False

    # -- full evaluation ----------------------------------------------------

    def run_full(self, nodes: List[int]) -> float:
        """One full evaluation (no recorded state) under ``nodes``."""
        if not self.num_ops:
            return 0.0
        self._eval_nodes[:] = array("i", nodes)
        return self._kernel.ctx_full(self._ctx_ref, 0)

    def set_base(self, nodes: List[int]) -> float:
        """Full evaluation recording durations + checkpoints for tail replay."""
        self._base_nodes[:] = array("i", nodes)
        self.has_base = True
        if not self.num_ops:
            return 0.0
        return self._kernel.ctx_full(self._ctx_ref, 1)

    # -- incremental tail replay ---------------------------------------------

    def replay_tail(
        self,
        changed: Dict[int, int],
        start: int,
        cutoff: Optional[float],
    ) -> Tuple[float, int]:
        """Replay ops ``start..`` with ``changed`` qubits re-placed.

        Returns ``(runtime, stop_index)``; ``stop_index`` is the op index
        at which the monotone cutoff fired, or ``-1`` when the tail ran to
        completion (in which case ``runtime`` is exact).
        """
        flags = self._flags
        targets = self._targets
        for index, target in changed.items():
            flags[index] = 1
            targets[index] = target
        try:
            result = self._kernel.ctx_tail(
                self._ctx_ref,
                start,
                0.0 if cutoff is None else cutoff,
                0 if cutoff is None else 1,
            )
        finally:
            for index in changed:
                flags[index] = 0
        return result, self._ctx.stop_index
