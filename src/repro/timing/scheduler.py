"""Circuit runtime models.

Two runtime models are implemented, both taken from Section 3 of the paper.

Asynchronous (default)
    "Gates from the next level can start being executed before execution of
    the current level has completed."  The runtime is computed by the
    dynamic-programming pass the paper spells out: keep a per-qubit busy time,
    advance it gate by gate, and return the maximum at the end.

Sequential levels
    Levels are executed strictly one after the other; the runtime is the sum
    over levels of the slowest gate in each level.  The paper notes its theory
    and implementation also support this model, so it is provided for
    completeness and used in a few ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, Qubit
from repro.circuits.levelize import levelize
from repro.core.stats import STATS
from repro.hardware.environment import Node, PhysicalEnvironment
from repro.timing import _native, _replay
from repro.timing.gate_times import (
    MAX_INTERACTION_USES,
    Placement,
    cap_interaction_runs,
    gate_operating_time,
    validate_placement,
)


@dataclass(frozen=True)
class ScheduleStep:
    """State of the schedule after one gate, for trace reporting (Table 1)."""

    gate: Gate
    operating_time: float
    qubit_times: Dict[Qubit, float]


@dataclass(frozen=True)
class Schedule:
    """Full result of scheduling a placed circuit."""

    runtime: float
    steps: Tuple[ScheduleStep, ...]
    placement: Dict[Qubit, Node]

    @property
    def busiest_qubit(self) -> Optional[Qubit]:
        """The qubit that finishes last (``None`` only when there are no qubits).

        A circuit whose gates are all free records no steps, but its qubits
        still exist (with zero busy time); ties — including the all-zero
        case — resolve to the first qubit in placement order.
        """
        final = self.final_qubit_times()
        if not final:
            return None
        return max(final, key=final.get)

    def final_qubit_times(self) -> Dict[Qubit, float]:
        """Per-qubit busy time at the end of the circuit.

        When no step was recorded (every gate free, or no gates at all) the
        placement's qubits are reported with zero busy time rather than
        being silently dropped.
        """
        if not self.steps:
            return {qubit: 0.0 for qubit in self.placement}
        return dict(self.steps[-1].qubit_times)


def circuit_runtime(
    circuit: QuantumCircuit,
    placement: Placement,
    environment: PhysicalEnvironment,
    apply_interaction_cap: bool = False,
    validate: bool = True,
) -> float:
    """Runtime of a placed circuit under the asynchronous model.

    This is the paper's dynamic-programming algorithm: every qubit carries a
    busy time; a single-qubit gate extends its qubit's time; a two-qubit gate
    synchronises both qubits at the later of their times and then extends
    both by the gate's operating time.  The circuit runtime is the maximum
    busy time over all qubits.

    Parameters
    ----------
    apply_interaction_cap:
        When set, consecutive two-qubit gates on the same pair are first
        capped at :data:`~repro.timing.gate_times.MAX_INTERACTION_USES`
        relative-duration units (Section 6 of the paper).
    validate:
        When set (default), the placement is checked to be an injective map
        of all circuit qubits into the environment.
    """
    if validate:
        validate_placement(placement, circuit, environment)
    gates: Sequence[Gate] = circuit.gates
    if apply_interaction_cap:
        gates = cap_interaction_runs(gates, MAX_INTERACTION_USES)

    time: Dict[Qubit, float] = {q: 0.0 for q in circuit.qubits}
    for gate in gates:
        duration = gate_operating_time(gate, placement, environment)
        if gate.is_two_qubit:
            a, b = gate.qubits
            start = max(time[a], time[b])
            finish = start + duration
            time[a] = finish
            time[b] = finish
        else:
            qubit = gate.qubits[0]
            time[qubit] += duration
    return max(time.values()) if time else 0.0


def schedule(
    circuit: QuantumCircuit,
    placement: Placement,
    environment: PhysicalEnvironment,
    apply_interaction_cap: bool = False,
    include_free_gates: bool = False,
) -> Schedule:
    """Like :func:`circuit_runtime` but recording a per-gate trace.

    The trace reproduces Table 1 of the paper: after each timed gate it
    records every qubit's busy time.  Free gates (zero operating time) are
    skipped from the trace by default, matching the paper's presentation
    ("single qubit rotations around Z axis are ignored since their
    contribution to the runtime is zero"), but still advance nothing anyway.
    """
    validate_placement(placement, circuit, environment)
    gates: Sequence[Gate] = circuit.gates
    if apply_interaction_cap:
        gates = cap_interaction_runs(gates, MAX_INTERACTION_USES)

    time: Dict[Qubit, float] = {q: 0.0 for q in circuit.qubits}
    steps: List[ScheduleStep] = []
    for gate in gates:
        duration = gate_operating_time(gate, placement, environment)
        if gate.is_two_qubit:
            a, b = gate.qubits
            start = max(time[a], time[b])
            finish = start + duration
            time[a] = finish
            time[b] = finish
        else:
            qubit = gate.qubits[0]
            time[qubit] += duration
        if duration > 0 or include_free_gates:
            steps.append(ScheduleStep(gate, duration, dict(time)))
    runtime = max(time.values()) if time else 0.0
    return Schedule(runtime, tuple(steps), dict(placement))


def sequential_level_runtime(
    circuit: QuantumCircuit,
    placement: Placement,
    environment: PhysicalEnvironment,
    validate: bool = True,
) -> float:
    """Runtime when logic levels must be executed strictly sequentially.

    Each level costs as much as its slowest gate; the circuit costs the sum
    of its level costs.  Always at least the asynchronous runtime.
    """
    if validate:
        validate_placement(placement, circuit, environment)
    total = 0.0
    for level in levelize(circuit):
        if not level:
            continue
        total += max(
            gate_operating_time(gate, placement, environment) for gate in level
        )
    return total


class RuntimeEvaluator:
    """Fast repeated asynchronous-runtime evaluation of one circuit.

    The hill-climbing fine tuner evaluates the *same* subcircuit under
    thousands of slightly different placements.  :func:`circuit_runtime`
    pays for the interaction-run capping, the gate-object attribute walks
    and the delay-table lookups on every call; this evaluator pays for them
    once:

    * the (optionally capped) gate list is compiled to integer-indexed
      ``(qubit_a, qubit_b, relative_duration)`` triples, with free
      single-qubit gates dropped (they cannot move any busy time);
    * environment delays are memoised per node-index pair, so the canonical
      pair construction (with its ``repr`` calls) happens at most once per
      distinct pair;
    * :meth:`set_base` runs the full dynamic program once, storing the
      per-operation durations and periodic busy-time checkpoints, after
      which :meth:`runtime_with` re-schedules a *move* (one or two qubits
      re-placed) by restoring the last checkpoint before the first affected
      operation and replaying only the tail — with unaffected operations
      reusing their recorded base durations.

    Because the replay performs bit-for-bit the same float operations as a
    full evaluation, results are exactly — not approximately — equal to
    :func:`circuit_runtime`; ``full_recompute=True`` turns on a debug
    assertion of that parity on every incremental evaluation.

    Two execution backends implement the same evaluation (see
    :mod:`repro.timing._replay`):

    ``"python"``
        The always-available reference: one loop over the op triples with
        lazily memoised delay lookups.
    ``"numpy"``
        The op list is compiled to flat parallel arrays and every duration
        table (full run, or the affected slice of an incremental replay) is
        computed vectorised; the sequential busy-time recurrence runs as a
        tight loop over the precomputed durations.  Results are
        float-for-float identical to the python backend — the same IEEE-754
        operations on the same operands in the same order — so backend
        choice never changes any output.
    ``"native"``
        The whole recurrence — duration lookups, checkpoint restore,
        monotone cutoff — runs inside a small C kernel compiled on demand
        (see :mod:`repro.timing._native`), under the same bit-identical
        contract.  Requires a C compiler at first use; an explicit request
        fails with a one-line error when the build is unavailable.
    ``"auto"`` (default)
        Defers to the ``REPRO_SCHEDULER_BACKEND`` environment variable,
        then picks the fastest profitable backend: native when its kernel
        builds and the op list is long enough, else numpy when it is
        importable and the op list is long enough to amortise the fixed
        array overhead, else python.

    In ``full_recompute`` mode the numpy and native backends additionally
    cross-check every full evaluation against the pure Python loop, so the
    parity contract is enforced between backends as well as between
    incremental and full evaluation.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        environment: PhysicalEnvironment,
        apply_interaction_cap: bool = False,
        checkpoint_interval: int = 16,
        full_recompute: bool = False,
        backend: str = "auto",
    ) -> None:
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")
        gates: Sequence[Gate] = circuit.gates
        if apply_interaction_cap:
            gates = cap_interaction_runs(gates, MAX_INTERACTION_USES)
        self.full_recompute = full_recompute
        self._checkpoint_interval = checkpoint_interval
        self._environment = environment
        self._env_version = getattr(environment, "cache_version", 0)
        self._qubits: List[Qubit] = list(circuit.qubits)
        self._qubit_index: Dict[Qubit, int] = {
            qubit: index for index, qubit in enumerate(self._qubits)
        }
        self._node_index: Dict[Node, int] = {
            node: index for index, node in enumerate(environment.nodes)
        }
        self._nodes = environment.nodes
        self._single_delay: List[float] = [
            environment.single_qubit_delay(node) for node in environment.nodes
        ]
        self._pair_cache: Dict[int, float] = {}
        self._num_env_nodes = len(self._nodes)

        ops: List[Tuple[int, int, float]] = []
        touched: List[List[int]] = [[] for _ in self._qubits]
        for gate in gates:
            if gate.is_two_qubit:
                a = self._qubit_index[gate.qubits[0]]
                b = self._qubit_index[gate.qubits[1]]
                touched[a].append(len(ops))
                touched[b].append(len(ops))
                ops.append((a, b, gate.duration))
            else:
                if gate.duration == 0.0:
                    continue  # adds exactly 0.0 to one busy time
                a = self._qubit_index[gate.qubits[0]]
                touched[a].append(len(ops))
                ops.append((a, -1, gate.duration))
        self._ops = ops
        self._first_touch: List[int] = [
            indices[0] if indices else len(ops) for indices in touched
        ]

        #: Resolved evaluation backend: ``"python"``, ``"numpy"`` or ``"native"``.
        self.backend: str = _replay.resolve_backend(backend, num_ops=len(ops))
        self._table: Optional[_replay.ReplayTable] = None
        self._native: Optional[_native.NativeReplay] = None
        if self.backend == "numpy":
            self._table = _replay.ReplayTable(
                ops,
                len(self._qubits),
                self._single_delay,
                _replay.pair_delay_matrix(environment, self._nodes),
            )
        elif self.backend == "native":
            self._native = _native.NativeReplay(
                ops,
                len(self._qubits),
                self._single_delay,
                environment.pair_delay_table(),
                self._num_env_nodes,
                checkpoint_interval,
            )

        # Base-placement state (populated by set_base).
        self._base_nodes: Optional[List[int]] = None
        self._base_durations: List[float] = []
        self._checkpoints: List[List[float]] = []
        self._base_nodes_array = None  # numpy mirrors, populated with set_base
        self._checkpoint_matrix = None
        self.base_runtime: float = 0.0
        # Locally accumulated counters, flushed to STATS in batches so the
        # per-evaluation instrumentation cost stays negligible.
        self._pending_incremental = 0
        self._pending_skipped = 0
        self._pending_replayed = 0

    def flush_stats(self) -> None:
        """Flush locally accumulated counters to :data:`~repro.core.stats.STATS`."""
        if self._pending_incremental:
            STATS.increment("scheduler.incremental_evals", self._pending_incremental)
            STATS.increment("scheduler.ops_skipped", self._pending_skipped)
            STATS.increment("scheduler.ops_replayed", self._pending_replayed)
            self._pending_incremental = 0
            self._pending_skipped = 0
            self._pending_replayed = 0

    # -- delay lookups ------------------------------------------------------

    def _pair_weight(self, i: int, j: int) -> float:
        if i > j:
            i, j = j, i
        key = i * self._num_env_nodes + j
        weight = self._pair_cache.get(key)
        if weight is None:
            weight = self._environment.pair_delay(self._nodes[i], self._nodes[j])
            self._pair_cache[key] = weight
        return weight

    def _placement_to_indices(self, placement: Placement) -> List[int]:
        node_index = self._node_index
        return [node_index[placement[qubit]] for qubit in self._qubits]

    def _check_environment_fresh(self) -> None:
        """Refuse to produce costs from stale delay snapshots.

        The evaluator captures single-qubit delays eagerly and pair delays
        lazily; if the environment was recalibrated (``set_pair_delay`` et
        al.) after construction, those snapshots silently disagree with
        :func:`circuit_runtime`.  Detect it via the environment's cache
        version instead.
        """
        if getattr(self._environment, "cache_version", 0) != self._env_version:
            raise RuntimeError(
                "the environment was recalibrated after this RuntimeEvaluator "
                "was built; construct a new evaluator for the updated delays"
            )

    # -- full evaluation ----------------------------------------------------

    def _run_full(
        self,
        nodes: List[int],
        durations_out: Optional[List[float]] = None,
        checkpoints_out: Optional[List[List[float]]] = None,
    ) -> float:
        if self._native is not None:
            # set_base() records durations/checkpoints inside the native
            # state instead of through these out-params.
            result = self._native.run_full(nodes)
            if self.full_recompute:
                reference = self._run_full_python(nodes)
                assert result == reference, (
                    f"native backend runtime {result!r} diverged from the "
                    f"pure Python reference {reference!r}"
                )
            return result
        if self._table is not None:
            result = self._run_full_numpy(nodes, durations_out, checkpoints_out)
            if self.full_recompute:
                reference = self._run_full_python(nodes)
                assert result == reference, (
                    f"numpy backend runtime {result!r} diverged from the "
                    f"pure Python reference {reference!r}"
                )
            return result
        return self._run_full_python(nodes, durations_out, checkpoints_out)

    def _run_full_python(
        self,
        nodes: List[int],
        durations_out: Optional[List[float]] = None,
        checkpoints_out: Optional[List[List[float]]] = None,
    ) -> float:
        times = [0.0] * len(self._qubits)
        interval = self._checkpoint_interval
        single = self._single_delay
        pair_weight = self._pair_weight
        for index, (a, b, relative) in enumerate(self._ops):
            if checkpoints_out is not None and index % interval == 0:
                checkpoints_out.append(times[:])
            if b < 0:
                duration = single[nodes[a]] * relative
                times[a] += duration
            else:
                duration = pair_weight(nodes[a], nodes[b]) * relative
                finish = max(times[a], times[b]) + duration
                times[a] = finish
                times[b] = finish
            if durations_out is not None:
                durations_out.append(duration)
        return max(times) if times else 0.0

    def _run_full_numpy(
        self,
        nodes: List[int],
        durations_out: Optional[List[float]] = None,
        checkpoints_out: Optional[List[List[float]]] = None,
    ) -> float:
        table = self._table
        durations = table.durations(table.nodes_array(nodes)).tolist()
        times = [0.0] * len(self._qubits)
        interval = self._checkpoint_interval
        for index, (a, b, _relative) in enumerate(self._ops):
            if checkpoints_out is not None and index % interval == 0:
                checkpoints_out.append(times[:])
            duration = durations[index]
            if b < 0:
                times[a] += duration
            else:
                time_a = times[a]
                time_b = times[b]
                finish = (time_a if time_a >= time_b else time_b) + duration
                times[a] = finish
                times[b] = finish
        if durations_out is not None:
            durations_out.extend(durations)
        return max(times) if times else 0.0

    def runtime(self, placement: Placement) -> float:
        """Full runtime of ``placement`` (exactly :func:`circuit_runtime`)."""
        self._check_environment_fresh()
        STATS.increment("scheduler.full_evals")
        return self._run_full(self._placement_to_indices(placement))

    # -- incremental evaluation ---------------------------------------------

    def set_base(self, placement: Placement) -> float:
        """Record ``placement`` as the base of later :meth:`runtime_with` calls."""
        self._check_environment_fresh()
        STATS.increment("scheduler.full_evals")
        self._base_nodes = self._placement_to_indices(placement)
        self._base_durations = []
        self._checkpoints = []
        if self._native is not None:
            # The native state records base durations and checkpoints in its
            # own buffers, not through the python-side out-params.
            result = self._native.set_base(self._base_nodes)
            if self.full_recompute:
                reference = self._run_full_python(self._base_nodes)
                assert result == reference, (
                    f"native backend runtime {result!r} diverged from the "
                    f"pure Python reference {reference!r}"
                )
            self.base_runtime = result
            return result
        self.base_runtime = self._run_full(
            self._base_nodes,
            durations_out=self._base_durations,
            checkpoints_out=self._checkpoints,
        )
        if self._table is not None:
            self._base_nodes_array = self._table.nodes_array(self._base_nodes)
            self._checkpoint_matrix = self._table.checkpoint_matrix(
                self._checkpoints, len(self._qubits)
            )
        return self.base_runtime

    def runtime_with(
        self,
        overrides: Mapping[Qubit, Node],
        limit: Optional[float] = None,
    ) -> float:
        """Runtime of the base placement with a few qubits re-placed.

        ``overrides`` maps the moved qubits to their new nodes (typically one
        qubit, or two for a swap).  Requires a prior :meth:`set_base`.

        ``limit`` is a branch-and-bound cutoff: per-qubit busy times only
        ever grow, so as soon as any busy time reaches ``limit`` the final
        runtime is guaranteed to be at least ``limit`` and the replay stops,
        returning ``inf``.  Callers that only compare the result against
        ``limit`` (the hill climber rejecting non-improving moves) lose no
        information; callers needing the exact value must leave it unset.
        """
        base_nodes = self._base_nodes
        if base_nodes is None:
            raise RuntimeError("set_base() must be called before runtime_with()")
        self._check_environment_fresh()
        qubit_index = self._qubit_index
        node_index = self._node_index
        changed: Dict[int, int] = {}
        for qubit, node in overrides.items():
            index = qubit_index[qubit]
            target = node_index[node]
            if base_nodes[index] != target:
                changed[index] = target
        total_ops = len(self._ops)
        if not changed:
            return self.base_runtime
        first = min(self._first_touch[index] for index in changed)
        if first >= total_ops:
            # None of the moved qubits is ever scheduled; nothing changes.
            return self.base_runtime

        interval = self._checkpoint_interval
        checkpoint = first // interval
        start = checkpoint * interval
        self._pending_incremental += 1
        self._pending_skipped += start
        self._pending_replayed += total_ops - start

        if self._native is not None:
            return self._replay_tail_native(
                changed, start, total_ops, overrides, limit
            )
        if self._table is not None:
            return self._replay_tail_numpy(
                changed, start, total_ops, overrides, limit
            )

        times = self._checkpoints[checkpoint][:] if self._checkpoints else []
        if not times:
            times = [0.0] * len(self._qubits)
        single = self._single_delay
        pair_cache = self._pair_cache
        env_nodes = self._num_env_nodes
        base_durations = self._base_durations
        ops = self._ops
        changed_get = changed.get
        cutoff = None if self.full_recompute else limit
        for index in range(start, total_ops):
            a, b, relative = ops[index]
            if b < 0:
                if a in changed:
                    finish = times[a] + single[changed[a]] * relative
                else:
                    finish = times[a] + base_durations[index]
                times[a] = finish
            else:
                if a in changed or b in changed:
                    node_a = changed_get(a, base_nodes[a])
                    node_b = changed_get(b, base_nodes[b])
                    if node_a > node_b:
                        node_a, node_b = node_b, node_a
                    key = node_a * env_nodes + node_b
                    weight = pair_cache.get(key)
                    if weight is None:
                        weight = self._pair_weight(node_a, node_b)
                    duration = weight * relative
                else:
                    duration = base_durations[index]
                time_a = times[a]
                time_b = times[b]
                finish = (time_a if time_a >= time_b else time_b) + duration
                times[a] = finish
                times[b] = finish
            if cutoff is not None and finish >= cutoff:
                # Busy times are monotone, so the final runtime is >= finish:
                # this move can never beat the incumbent.
                self._pending_replayed -= total_ops - 1 - index
                return float("inf")
        result = max(times) if times else 0.0

        if self.full_recompute:
            self._assert_full_recompute_parity(result, changed, overrides)
        return result

    def _replay_tail_native(
        self,
        changed: Dict[int, int],
        start: int,
        total_ops: int,
        overrides: Mapping[Qubit, Node],
        limit: Optional[float],
    ) -> float:
        """The incremental tail replay inside the native kernel.

        Checkpoint restore, per-op duration recomputation and the monotone
        cutoff all happen in C; the kernel reports the op index at which the
        cutoff fired so the replayed-ops accounting stays identical to the
        pure Python path.
        """
        cutoff = None if self.full_recompute else limit
        result, stop_index = self._native.replay_tail(changed, start, cutoff)
        if stop_index >= 0:
            # Busy times are monotone, so the final runtime is >= the
            # cutoff: this move can never beat the incumbent.
            self._pending_replayed -= total_ops - 1 - stop_index
            return float("inf")
        if self.full_recompute:
            self._assert_full_recompute_parity(result, changed, overrides)
        return result

    def _replay_tail_numpy(
        self,
        changed: Dict[int, int],
        start: int,
        total_ops: int,
        overrides: Mapping[Qubit, Node],
        limit: Optional[float],
    ) -> float:
        """The incremental tail replay over a vectorised duration table.

        Durations for every affected operation are recomputed in one array
        pass (unaffected operations reuse their recorded base values); the
        busy-time recurrence, the checkpoint restore and the cutoff rule
        are operation-for-operation those of the pure Python path.
        """
        checkpoint = start // self._checkpoint_interval
        matrix = self._checkpoint_matrix
        if matrix is not None and matrix.shape[0] > checkpoint:
            times = matrix[checkpoint].tolist()
        else:
            times = [0.0] * len(self._qubits)
        affected, values = self._table.changed_durations(
            self._base_nodes_array, changed
        )
        # Scatter the recomputed durations into the recorded base table in
        # place (and restore afterwards) instead of copying the whole table
        # per candidate move.
        durations = self._base_durations
        saved = [durations[position] for position in affected]
        for position, value in zip(affected, values):
            durations[position] = value
        ops = self._ops
        cutoff = None if self.full_recompute else limit
        result = float("inf")
        try:
            for index in range(start, total_ops):
                a, b, _relative = ops[index]
                duration = durations[index]
                if b < 0:
                    finish = times[a] + duration
                    times[a] = finish
                else:
                    time_a = times[a]
                    time_b = times[b]
                    finish = (time_a if time_a >= time_b else time_b) + duration
                    times[a] = finish
                    times[b] = finish
                if cutoff is not None and finish >= cutoff:
                    # Busy times are monotone, so the final runtime is >=
                    # finish: this move can never beat the incumbent.
                    self._pending_replayed -= total_ops - 1 - index
                    return float("inf")
            result = max(times) if times else 0.0
        finally:
            for position, value in zip(affected, saved):
                durations[position] = value

        if self.full_recompute:
            self._assert_full_recompute_parity(result, changed, overrides)
        return result

    def _assert_full_recompute_parity(
        self,
        result: float,
        changed: Dict[int, int],
        overrides: Mapping[Qubit, Node],
    ) -> None:
        """Debug gate: incremental == full, and (on numpy) numpy == python."""
        nodes = list(self._base_nodes)
        for index, target in changed.items():
            nodes[index] = target
        # _run_full itself cross-checks numpy against the python reference
        # in full_recompute mode, so one call gates both parity contracts.
        full = self._run_full(nodes)
        assert result == full, (
            f"incremental runtime {result!r} diverged from full "
            f"recomputation {full!r} for overrides {dict(overrides)!r}"
        )


def runtime_lower_bound(
    circuit: QuantumCircuit,
    environment: PhysicalEnvironment,
) -> float:
    """A placement-independent lower bound on the asynchronous runtime.

    Every two-qubit gate costs at least ``T(G)`` times the smallest pair
    delay of the environment, and gates sharing a qubit cannot overlap, so
    the busiest qubit's total work under the best conceivable placement is a
    valid lower bound.  Used in tests and to report optimality gaps.
    """
    finite = environment.finite_pairs()
    if not finite:
        return 0.0
    best_pair = min(finite.values())
    best_single = min(
        environment.single_qubit_delay(node) for node in environment.nodes
    )
    per_qubit: Dict[Qubit, float] = {q: 0.0 for q in circuit.qubits}
    for gate in circuit:
        weight = best_pair if gate.is_two_qubit else best_single
        cost = weight * gate.duration
        for qubit in gate.qubits:
            per_qubit[qubit] += cost
    return max(per_qubit.values()) if per_qubit else 0.0
