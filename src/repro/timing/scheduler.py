"""Circuit runtime models.

Two runtime models are implemented, both taken from Section 3 of the paper.

Asynchronous (default)
    "Gates from the next level can start being executed before execution of
    the current level has completed."  The runtime is computed by the
    dynamic-programming pass the paper spells out: keep a per-qubit busy time,
    advance it gate by gate, and return the maximum at the end.

Sequential levels
    Levels are executed strictly one after the other; the runtime is the sum
    over levels of the slowest gate in each level.  The paper notes its theory
    and implementation also support this model, so it is provided for
    completeness and used in a few ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, Qubit
from repro.circuits.levelize import levelize
from repro.hardware.environment import Node, PhysicalEnvironment
from repro.timing.gate_times import (
    MAX_INTERACTION_USES,
    Placement,
    cap_interaction_runs,
    gate_operating_time,
    validate_placement,
)


@dataclass(frozen=True)
class ScheduleStep:
    """State of the schedule after one gate, for trace reporting (Table 1)."""

    gate: Gate
    operating_time: float
    qubit_times: Dict[Qubit, float]


@dataclass(frozen=True)
class Schedule:
    """Full result of scheduling a placed circuit."""

    runtime: float
    steps: Tuple[ScheduleStep, ...]
    placement: Dict[Qubit, Node]

    @property
    def busiest_qubit(self) -> Optional[Qubit]:
        """The qubit that finishes last (``None`` for an empty circuit)."""
        if not self.steps:
            return None
        final = self.steps[-1].qubit_times
        return max(final, key=final.get)

    def final_qubit_times(self) -> Dict[Qubit, float]:
        """Per-qubit busy time at the end of the circuit."""
        if not self.steps:
            return {}
        return dict(self.steps[-1].qubit_times)


def circuit_runtime(
    circuit: QuantumCircuit,
    placement: Placement,
    environment: PhysicalEnvironment,
    apply_interaction_cap: bool = False,
    validate: bool = True,
) -> float:
    """Runtime of a placed circuit under the asynchronous model.

    This is the paper's dynamic-programming algorithm: every qubit carries a
    busy time; a single-qubit gate extends its qubit's time; a two-qubit gate
    synchronises both qubits at the later of their times and then extends
    both by the gate's operating time.  The circuit runtime is the maximum
    busy time over all qubits.

    Parameters
    ----------
    apply_interaction_cap:
        When set, consecutive two-qubit gates on the same pair are first
        capped at :data:`~repro.timing.gate_times.MAX_INTERACTION_USES`
        relative-duration units (Section 6 of the paper).
    validate:
        When set (default), the placement is checked to be an injective map
        of all circuit qubits into the environment.
    """
    if validate:
        validate_placement(placement, circuit, environment)
    gates: Sequence[Gate] = circuit.gates
    if apply_interaction_cap:
        gates = cap_interaction_runs(gates, MAX_INTERACTION_USES)

    time: Dict[Qubit, float] = {q: 0.0 for q in circuit.qubits}
    for gate in gates:
        duration = gate_operating_time(gate, placement, environment)
        if gate.is_two_qubit:
            a, b = gate.qubits
            start = max(time[a], time[b])
            finish = start + duration
            time[a] = finish
            time[b] = finish
        else:
            qubit = gate.qubits[0]
            time[qubit] += duration
    return max(time.values()) if time else 0.0


def schedule(
    circuit: QuantumCircuit,
    placement: Placement,
    environment: PhysicalEnvironment,
    apply_interaction_cap: bool = False,
    include_free_gates: bool = False,
) -> Schedule:
    """Like :func:`circuit_runtime` but recording a per-gate trace.

    The trace reproduces Table 1 of the paper: after each timed gate it
    records every qubit's busy time.  Free gates (zero operating time) are
    skipped from the trace by default, matching the paper's presentation
    ("single qubit rotations around Z axis are ignored since their
    contribution to the runtime is zero"), but still advance nothing anyway.
    """
    validate_placement(placement, circuit, environment)
    gates: Sequence[Gate] = circuit.gates
    if apply_interaction_cap:
        gates = cap_interaction_runs(gates, MAX_INTERACTION_USES)

    time: Dict[Qubit, float] = {q: 0.0 for q in circuit.qubits}
    steps: List[ScheduleStep] = []
    for gate in gates:
        duration = gate_operating_time(gate, placement, environment)
        if gate.is_two_qubit:
            a, b = gate.qubits
            start = max(time[a], time[b])
            finish = start + duration
            time[a] = finish
            time[b] = finish
        else:
            qubit = gate.qubits[0]
            time[qubit] += duration
        if duration > 0 or include_free_gates:
            steps.append(ScheduleStep(gate, duration, dict(time)))
    runtime = max(time.values()) if time else 0.0
    return Schedule(runtime, tuple(steps), dict(placement))


def sequential_level_runtime(
    circuit: QuantumCircuit,
    placement: Placement,
    environment: PhysicalEnvironment,
    validate: bool = True,
) -> float:
    """Runtime when logic levels must be executed strictly sequentially.

    Each level costs as much as its slowest gate; the circuit costs the sum
    of its level costs.  Always at least the asynchronous runtime.
    """
    if validate:
        validate_placement(placement, circuit, environment)
    total = 0.0
    for level in levelize(circuit):
        if not level:
            continue
        total += max(
            gate_operating_time(gate, placement, environment) for gate in level
        )
    return total


def runtime_lower_bound(
    circuit: QuantumCircuit,
    environment: PhysicalEnvironment,
) -> float:
    """A placement-independent lower bound on the asynchronous runtime.

    Every two-qubit gate costs at least ``T(G)`` times the smallest pair
    delay of the environment, and gates sharing a qubit cannot overlap, so
    the busiest qubit's total work under the best conceivable placement is a
    valid lower bound.  Used in tests and to report optimality gaps.
    """
    finite = environment.finite_pairs()
    if not finite:
        return 0.0
    best_pair = min(finite.values())
    best_single = min(
        environment.single_qubit_delay(node) for node in environment.nodes
    )
    per_qubit: Dict[Qubit, float] = {q: 0.0 for q in circuit.qubits}
    for gate in circuit:
        weight = best_pair if gate.is_two_qubit else best_single
        cost = weight * gate.duration
        for qubit in gate.qubits:
            per_qubit[qubit] += cost
    return max(per_qubit.values()) if per_qubit else 0.0
