"""repro — quantum circuit placement.

A from-scratch Python reproduction of

    D. Maslov, S. M. Falconer, M. Mosca,
    "Quantum Circuit Placement",
    DAC 2007 / IEEE TCAD 27(4):752-763, 2008.

The package maps the logical qubits of a quantum circuit onto the physical
qubits (nuclei) of a physical environment so that the scheduled runtime of
the circuit is minimised, splitting the circuit into subcircuits placeable
along the fastest interactions and gluing them with SWAP stages.

Typical use — the unified workload API (see ``docs/api.md``)::

    from repro import RunConfig, Session

    cfg = RunConfig(circuit="qft:7", environment="trans-crotonic-acid",
                    thresholds=(50, 100, 200))
    session = Session(cfg)
    print(session.place().placement.summary())   # one placement
    print(session.sweep().table())               # the Table-3 style row

Circuits and environments are addressed by registry spec strings
(:data:`repro.registry.CIRCUITS` / :data:`repro.registry.ENVIRONMENTS`):
named entries such as ``qft6`` or ``histidine``, parameterised families
such as ``qft:7``, ``chain:12`` or ``grid:4x4``, or file paths.  A
:class:`RunConfig` round-trips through canonical JSON (``--config
run.json`` on the CLI) and is embedded in shard plans, so the same run
description works from Python, the command line and a shard payload.

The lower-level building blocks remain available::

    from repro import place_circuit, PlacementOptions
    from repro.circuits.library import qft_circuit
    from repro.hardware import trans_crotonic_acid

    result = place_circuit(qft_circuit(6),
                           trans_crotonic_acid(),
                           PlacementOptions(threshold=200))
    print(result.summary())
"""

from repro.analysis.resilience import FailedOutcome, FaultInjector, RetryPolicy
from repro.api import GridResult, PlaceResult, Session, SweepResult
from repro.circuits import QuantumCircuit
from repro.config import RunConfig
from repro.core import (
    PlacementOptions,
    PlacementResult,
    QuantumCircuitPlacer,
    place_circuit,
)
from repro.exceptions import (
    CircuitError,
    ConfigError,
    InjectedFaultError,
    PlacementError,
    RegistryError,
    ReproError,
    RoutingError,
    ShardFormatError,
    ThresholdError,
    UnknownSpecError,
)
from repro.hardware import PhysicalEnvironment
from repro.registry import (
    CIRCUITS,
    ENVIRONMENTS,
    PLACERS,
    SCHEDULER_BACKENDS,
    SHARD_STRATEGIES,
    load_circuit,
    load_environment,
)

__version__ = "1.1.0"

__all__ = [
    "QuantumCircuit",
    "PhysicalEnvironment",
    "place_circuit",
    "QuantumCircuitPlacer",
    "PlacementOptions",
    "PlacementResult",
    "RunConfig",
    "Session",
    "PlaceResult",
    "SweepResult",
    "GridResult",
    "RetryPolicy",
    "FaultInjector",
    "FailedOutcome",
    "CIRCUITS",
    "ENVIRONMENTS",
    "PLACERS",
    "SCHEDULER_BACKENDS",
    "SHARD_STRATEGIES",
    "load_circuit",
    "load_environment",
    "ReproError",
    "CircuitError",
    "PlacementError",
    "RoutingError",
    "ThresholdError",
    "RegistryError",
    "UnknownSpecError",
    "ConfigError",
    "ShardFormatError",
    "InjectedFaultError",
    "__version__",
]
