"""repro — quantum circuit placement.

A from-scratch Python reproduction of

    D. Maslov, S. M. Falconer, M. Mosca,
    "Quantum Circuit Placement",
    DAC 2007 / IEEE TCAD 27(4):752-763, 2008.

The package maps the logical qubits of a quantum circuit onto the physical
qubits (nuclei) of a physical environment so that the scheduled runtime of
the circuit is minimised, splitting the circuit into subcircuits placeable
along the fastest interactions and gluing them with SWAP stages.

Typical use::

    from repro import place_circuit, PlacementOptions
    from repro.circuits.library import qft_circuit
    from repro.hardware import trans_crotonic_acid

    result = place_circuit(qft_circuit(6),
                           trans_crotonic_acid(),
                           PlacementOptions(threshold=200))
    print(result.summary())
"""

from repro.circuits import QuantumCircuit
from repro.core import (
    PlacementOptions,
    PlacementResult,
    QuantumCircuitPlacer,
    place_circuit,
)
from repro.exceptions import (
    CircuitError,
    PlacementError,
    ReproError,
    RoutingError,
    ThresholdError,
)
from repro.hardware import PhysicalEnvironment

__version__ = "1.0.0"

__all__ = [
    "QuantumCircuit",
    "PhysicalEnvironment",
    "place_circuit",
    "QuantumCircuitPlacer",
    "PlacementOptions",
    "PlacementResult",
    "ReproError",
    "CircuitError",
    "PlacementError",
    "RoutingError",
    "ThresholdError",
    "__version__",
]
