"""Command-line interface.

Installed as ``repro-place`` (see ``pyproject.toml``) and usable as
``python -m repro.cli``.  Three subcommands:

``place``
    Place a benchmark circuit (or a circuit file in the text format of
    :mod:`repro.circuits.qasm`) into a molecule (or an environment JSON
    file) and print the placement summary.

``sweep``
    Run a Table-3 style threshold sweep of one circuit over one molecule.

``list``
    List the available benchmark circuits and molecules.
"""

from __future__ import annotations

import argparse
import sys
from functools import partial
from typing import List, Optional

from repro.analysis.reporting import format_table
from repro.analysis.runner import ExperimentRunner, stderr_progress
from repro.analysis.sweep import sweep_circuit
from repro.circuits import qasm
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import CIRCUIT_FACTORIES, benchmark_circuit
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.exceptions import ReproError
from repro.hardware import io as hardware_io
from repro.hardware.environment import PhysicalEnvironment
from repro.hardware.molecules import MOLECULE_FACTORIES, molecule
from repro.hardware.threshold_graph import PAPER_THRESHOLDS
from repro.timing._replay import BACKEND_CHOICES


def _load_circuit(spec: str) -> QuantumCircuit:
    """A circuit by benchmark name, or from a file when the name ends in ``.qc``."""
    if spec in CIRCUIT_FACTORIES:
        return benchmark_circuit(spec)
    if spec.endswith(".qc") or spec.endswith(".txt"):
        return qasm.load(spec)
    raise ReproError(
        f"unknown circuit {spec!r}; use one of {sorted(CIRCUIT_FACTORIES)} "
        "or a .qc/.txt circuit file"
    )


def _load_environment(spec: str) -> PhysicalEnvironment:
    """An environment by molecule name, or from a JSON file."""
    if spec in MOLECULE_FACTORIES:
        return molecule(spec)
    if spec.endswith(".json"):
        return hardware_io.load(spec)
    raise ReproError(
        f"unknown environment {spec!r}; use one of {sorted(MOLECULE_FACTORIES)} "
        "or an environment .json file"
    )


def _options_from_args(args: argparse.Namespace) -> PlacementOptions:
    return PlacementOptions(
        threshold=args.threshold,
        max_monomorphisms=args.max_monomorphisms,
        fine_tuning=not args.no_fine_tuning,
        lookahead=not args.no_lookahead,
        leaf_override=not args.no_leaf_override,
        scheduler_backend=args.scheduler_backend,
    )


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--threshold", type=float, default=None,
                        help="fast-interaction threshold (default: minimal connecting value)")
    parser.add_argument("--max-monomorphisms", type=int, default=100,
                        help="candidate monomorphisms per workspace (the paper's k)")
    parser.add_argument("--no-fine-tuning", action="store_true",
                        help="disable hill-climbing fine tuning")
    parser.add_argument("--no-lookahead", action="store_true",
                        help="disable the depth-2 lookahead")
    parser.add_argument("--no-leaf-override", action="store_true",
                        help="disable the leaf-target override routing heuristic")
    parser.add_argument("--scheduler-backend", choices=list(BACKEND_CHOICES),
                        default="auto",
                        help="runtime-evaluator backend (bit-identical outputs; "
                             "'auto' defers to REPRO_SCHEDULER_BACKEND, then "
                             "picks numpy when available and profitable)")


def _cmd_place(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    environment = _load_environment(args.environment)
    result = place_circuit(circuit, environment, _options_from_args(args))
    print(result.summary())
    print()
    rows = []
    for stage in result.stages:
        mapping = ", ".join(
            f"{qubit}->{node}" for qubit, node in sorted(stage.placement.items(), key=lambda kv: repr(kv[0]))
        )
        rows.append([f"stage {stage.index}", f"gates [{stage.start},{stage.stop})",
                     f"{stage.runtime:g} units", mapping])
    for swap in result.swap_stages:
        rows.append([f"swap {swap.index}->{swap.index + 1}",
                     f"{swap.num_swaps} SWAPs in {swap.depth} layers",
                     f"{swap.runtime:g} units", ""])
    print(format_table(["part", "content", "runtime", "placement"], rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    environment = _load_environment(args.environment)
    thresholds = args.thresholds or list(PAPER_THRESHOLDS)

    # A partial over the module-level loader (not a closure) so the specs
    # stay picklable when the sweep fans out over worker processes.
    factory = partial(_load_circuit, args.circuit)
    runner = ExperimentRunner(
        jobs=args.jobs,
        progress=stderr_progress("sweep cell") if args.progress else None,
    )
    row = sweep_circuit(
        factory, environment, thresholds, _options_from_args(args), runner=runner
    )
    table_rows = [
        [f"threshold {cell.threshold:g}", cell.formatted()] for cell in row.cells
    ]
    print(format_table(["threshold", "runtime (subcircuits)"], table_rows,
                       title=f"{row.circuit_name} on {row.environment_name}"))
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("benchmark circuits:")
    for name in sorted(CIRCUIT_FACTORIES):
        circuit = benchmark_circuit(name)
        print(f"  {name:28s} {circuit.num_qubits:3d} qubits  {circuit.num_gates:4d} gates")
    print("molecules:")
    for name in sorted(MOLECULE_FACTORIES):
        environment = molecule(name)
        print(f"  {name:28s} {environment.num_qubits:3d} qubits")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-place",
        description="Quantum circuit placement (Maslov, Falconer, Mosca 2007/2008)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    place_parser = subparsers.add_parser("place", help="place a circuit into an environment")
    place_parser.add_argument("circuit", help="benchmark circuit name or .qc file")
    place_parser.add_argument("environment", help="molecule name or environment .json file")
    _add_common_options(place_parser)
    place_parser.set_defaults(func=_cmd_place)

    sweep_parser = subparsers.add_parser("sweep", help="threshold sweep (Table 3 style)")
    sweep_parser.add_argument("circuit", help="benchmark circuit name or .qc file")
    sweep_parser.add_argument("environment", help="molecule name or environment .json file")
    sweep_parser.add_argument("--thresholds", type=float, nargs="+", default=None,
                              help="threshold values (default: the paper's list)")
    sweep_parser.add_argument("--jobs", type=int, default=1,
                              help="worker processes for the sweep grid "
                                   "(1 = serial; results are identical either way)")
    sweep_parser.add_argument("--progress", action="store_true",
                              help="print one line per completed sweep cell to stderr")
    _add_common_options(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    list_parser = subparsers.add_parser("list", help="list circuits and molecules")
    list_parser.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
