"""Command-line interface.

Installed as ``repro-place`` (see ``pyproject.toml``) and usable as
``python -m repro`` (or ``python -m repro.cli``).  Subcommands:

``place``
    Place a circuit (a registry spec such as ``qft6`` or ``qft:7``, or a
    circuit file in the text format of :mod:`repro.circuits.qasm`) into an
    environment (a molecule or architecture spec such as
    ``trans-crotonic-acid`` or ``grid:4x4``, or an environment JSON file)
    and print the placement summary.

``sweep``
    Run a Table-3 style threshold sweep of one circuit over one
    environment.  ``--shards N --shard-index K`` executes only shard ``K``
    of the deterministic ``N``-shard partition of the sweep grid — the
    single-invocation shard worker (its ``--output json`` payload is a
    mergeable outcome shard).

``shard``
    The sharded-grid pipeline: ``shard plan`` partitions a sweep grid
    into shard input files plus a ``plan.json``, ``shard run`` executes
    one shard file anywhere (any host with this package), and ``shard
    merge`` verifies and merges the outcome shards back into exactly the
    table a serial ``sweep`` would have printed.  ``shard run`` takes
    ``--checkpoint PATH`` (journal finished cells) and ``--resume``
    (skip journaled cells after a crash); ``shard merge
    --allow-partial`` merges whatever shards exist and prints the
    missing-cell manifest; ``shard replan`` writes recovery shard
    inputs covering exactly the shards whose outputs are missing or
    corrupt.  See ``docs/parallelism.md`` ("Sharding across hosts" and
    "Fault tolerance").

``list``
    List the available circuits, molecules and parameterised families.

``place``, ``sweep`` and ``shard plan`` accept ``--config run.json`` — a
serialised :class:`repro.config.RunConfig` replacing (or defaulted by)
the positional arguments and flags; explicit flags override the file.
They also accept ``--retries N`` and ``--cell-timeout SECONDS``
(mirrored by ``shard run``): failed cells are re-executed up to ``N``
extra times with deterministic exponential backoff, and cells exceeding
the wall-clock budget are killed and retried
(:mod:`repro.analysis.resilience`).
``place`` and ``sweep`` accept ``--output json`` for machine-readable
rows + counters; all JSON surfaces share one serialisation helper
(:mod:`repro.analysis.serialization`), so rows written by any of them can
be compared byte for byte.

Every command is a thin delegate of the :class:`repro.api.Session`
façade, so a run launched here is byte-identical to the same
:class:`~repro.config.RunConfig` executed from Python.  Usage errors —
unknown circuit/environment specs, out-of-range ``--shards`` or
``--shard-index``, malformed config files — exit with code 2 and a
one-line message; runtime failures exit with code 1.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro import api
from repro.analysis import sharding
from repro.analysis.reporting import format_table
from repro.analysis.runner import stderr_progress
from repro.analysis.serialization import (
    SCHEMA_VERSION,
    atomic_write_text,
    checksummed_payload,
    dump_json,
    outcome_to_dict,
    outcomes_payload,
    verify_payload_checksum,
)
from repro.analysis.sweep import row_from_outcomes
from repro.api import Session
from repro.config import OUTPUT_FORMATS, RunConfig
from repro.core._bitset import node_index_table
from repro.core.config import PlacementOptions
from repro.exceptions import (
    ConfigError,
    ExperimentError,
    ReproError,
    UnknownSpecError,
)
from repro.registry import (
    CIRCUITS,
    ENVIRONMENTS,
    PLACERS,
    SCHEDULER_BACKENDS,
    SHARD_STRATEGIES,
)
from repro.timing._replay import BACKEND_CHOICES


# ---------------------------------------------------------------------------
# Flag plumbing: RunConfig = config file (optional) + explicit flags
# ---------------------------------------------------------------------------


def _add_config_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", default=None, metavar="RUN_JSON",
                        help="run-config JSON file (repro.config.RunConfig); "
                             "positional arguments and explicit flags "
                             "override its fields")


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--threshold", type=float, default=None,
                        help="fast-interaction threshold (default: minimal connecting value)")
    parser.add_argument("--max-monomorphisms", type=int, default=None,
                        help="candidate monomorphisms per workspace "
                             "(the paper's k; default: 100)")
    parser.add_argument("--no-fine-tuning", action="store_true",
                        help="disable hill-climbing fine tuning")
    parser.add_argument("--no-lookahead", action="store_true",
                        help="disable the depth-2 lookahead")
    parser.add_argument("--no-leaf-override", action="store_true",
                        help="disable the leaf-target override routing heuristic")
    parser.add_argument("--scheduler-backend", choices=list(BACKEND_CHOICES),
                        default=None,
                        help="runtime-evaluator backend (bit-identical outputs; "
                             "default 'auto' defers to REPRO_SCHEDULER_BACKEND, "
                             "then picks the fastest available of native/"
                             "numpy/python when profitable)")
    parser.add_argument("--placer", default=None, metavar="SPEC",
                        help="placement engine spec: exact (default), greedy, "
                             "or anneal[:SEED[xITERS]] (multi-restart: "
                             "anneal:S1,S2,...) — the deterministic "
                             "simulated annealer for hosts where exact "
                             "search is infeasible (see 'repro list' and "
                             "docs/placers.md)")


def _add_resilience_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--retries", type=int, default=None,
                        help="re-execution attempts per failed cell "
                             "(default 0 = fail fast); exhausted cells "
                             "become structured FailedOutcome rows")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-cell wall-clock budget; a cell exceeding "
                             "it is killed and retried (default: unlimited)")


def _add_output_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--output", choices=OUTPUT_FORMATS, default=None,
                        help="output format: human-readable table, or "
                             "machine-readable JSON rows + counters "
                             "(one shared row format across place, sweep "
                             "and the shard pipeline; default: text)")


def _merged_options(base: PlacementOptions, args: argparse.Namespace) -> PlacementOptions:
    """Placement options = config-file options overridden by explicit flags."""
    changes = {}
    if getattr(args, "threshold", None) is not None:
        changes["threshold"] = args.threshold
    if getattr(args, "max_monomorphisms", None) is not None:
        changes["max_monomorphisms"] = args.max_monomorphisms
    if getattr(args, "no_fine_tuning", False):
        changes["fine_tuning"] = False
    if getattr(args, "no_lookahead", False):
        changes["lookahead"] = False
    if getattr(args, "no_leaf_override", False):
        changes["leaf_override"] = False
    if getattr(args, "scheduler_backend", None) is not None:
        changes["scheduler_backend"] = args.scheduler_backend
    if getattr(args, "placer", None) is not None:
        changes["placer"] = args.placer
    return base.replace(**changes) if changes else base


def _config_from_args(args: argparse.Namespace) -> RunConfig:
    """Build the run's :class:`RunConfig` from ``--config`` plus flags.

    The config file (when given) provides the defaults; positional
    arguments and explicitly passed flags override it field by field.
    Validation lives in :class:`RunConfig` itself, so a bad combination
    fails with a one-line :class:`ConfigError` (exit code 2).
    """
    base = RunConfig.load(args.config) if getattr(args, "config", None) else None

    def pick(flag, base_value, default):
        if flag is not None:
            return flag
        return base_value if base is not None else default

    circuit = pick(getattr(args, "circuit", None),
                   base.circuit if base else None, None)
    environment = pick(getattr(args, "environment", None),
                       base.environment if base else None, None)
    if circuit is None or environment is None:
        raise ConfigError(
            "a circuit and an environment are required: pass them as "
            "positional arguments or through --config"
        )
    thresholds = getattr(args, "thresholds", None)
    return RunConfig(
        circuit=circuit,
        environment=environment,
        thresholds=pick(tuple(thresholds) if thresholds else None,
                        base.thresholds if base else None, None),
        options=_merged_options(base.options if base else PlacementOptions(), args),
        jobs=pick(getattr(args, "jobs", None), base.jobs if base else None, 1),
        retries=pick(getattr(args, "retries", None),
                     base.retries if base else None, 0),
        cell_timeout=pick(getattr(args, "cell_timeout", None),
                          base.cell_timeout if base else None, None),
        shards=pick(getattr(args, "shards", None), base.shards if base else None, 1),
        shard_index=pick(getattr(args, "shard_index", None),
                         base.shard_index if base else None, None),
        strategy=pick(getattr(args, "strategy", None),
                      base.strategy if base else None, "round-robin"),
        output=pick(getattr(args, "output", None),
                    base.output if base else None, "text"),
    )


# ---------------------------------------------------------------------------
# place
# ---------------------------------------------------------------------------


def _cmd_place(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    session = Session(config)
    result = session.place()
    if config.output == "json":
        # The JSON row has the same shape (and serialisation) as sweep
        # cells and shard outputs; see repro.api.PlaceResult.payload.
        print(dump_json(result.payload()), end="")
        return 0 if result.feasible else 1
    # Re-raise the captured placement error verbatim, so stderr matches a
    # direct place_circuit call (exit code 1 via the ReproError handler).
    result.outcome.raise_if_infeasible(with_context=False)
    placement = result.placement
    print(placement.summary())
    print()
    rows = []
    for stage in placement.stages:
        qubit_order = node_index_table(stage.placement.keys())
        mapping = ", ".join(
            f"{qubit}->{node}"
            for qubit, node in sorted(
                stage.placement.items(), key=lambda kv: qubit_order[kv[0]]
            )
        )
        rows.append([f"stage {stage.index}", f"gates [{stage.start},{stage.stop})",
                     f"{stage.runtime:g} units", mapping])
    for swap in placement.swap_stages:
        rows.append([f"swap {swap.index}->{swap.index + 1}",
                     f"{swap.num_swaps} SWAPs in {swap.depth} layers",
                     f"{swap.runtime:g} units", ""])
    print(format_table(["part", "content", "runtime", "placement"], rows))
    return 0


# ---------------------------------------------------------------------------
# sweep (including the single-invocation shard worker)
# ---------------------------------------------------------------------------


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    if config.shards > 1 and config.shard_index is None:
        raise ConfigError(
            "--shards without --shard-index selects nothing to run; pass "
            "--shard-index K to execute one shard, or use "
            "'repro-place shard plan' to write shard files for all of them"
        )
    session = Session(
        config,
        progress=stderr_progress("sweep cell") if args.progress else None,
    )

    if config.shard_index is not None:
        # Shard-worker mode: execute only this invocation's slice of the
        # deterministic N-shard partition.  The JSON payload is a full
        # outcome shard, so N such invocations merge back into the exact
        # serial sweep (repro-place shard merge).
        grid = session.sweep_grid()
        shard = session.sweep_shard(grid=grid)
        if config.output == "json":
            print(dump_json(sharding.outcome_shard_to_payload(shard)), end="")
            return 0
        table_rows = [
            [outcome.label, "ok" if outcome.feasible else "N/A"]
            for outcome in shard.outcomes
        ]
        print(format_table(
            ["cell", "status"], table_rows,
            title=f"shard {shard.shard_index}/{shard.num_shards} "
                  f"({len(shard.outcomes)} of {len(grid.specs)} cells, "
                  f"fingerprint {shard.plan_fingerprint[:12]})",
        ))
        return 0

    result = session.sweep()
    if config.output == "json":
        print(dump_json(result.payload()), end="")
        return 0
    print(result.table())
    return 0


# ---------------------------------------------------------------------------
# shard plan / run / merge
# ---------------------------------------------------------------------------

PLAN_FILE = "plan.json"
PLAN_FORMAT = "repro-shard-plan"


def _cmd_shard_plan(args: argparse.Namespace) -> int:
    if args.shards is None and args.config is None:
        raise ConfigError(
            "shard plan needs --shards N (or a --config file supplying "
            "'shards'); a shard count is the point of planning"
        )
    # The backend override never becomes part of the planned grid's
    # identity: it is a per-worker execution detail ('shard run
    # --scheduler-backend'), and Session.sweep_grid keeps specs on "auto".
    config = _config_from_args(args)
    session = Session(config)
    grid = session.sweep_grid()
    plan = session.shard_plan(grid=grid)
    os.makedirs(args.out_dir, exist_ok=True)
    shard_files = []
    for index in range(plan.num_shards):
        shard_file = f"shard-{index}.pkl"
        sharding.write_shard(
            plan.shard_input(index), os.path.join(args.out_dir, shard_file)
        )
        shard_files.append(shard_file)
    metadata = plan.metadata()
    metadata.update({
        "format": PLAN_FORMAT,
        "circuit": config.circuit,
        "circuit_name": grid.circuit_name,
        "environment": config.environment,
        "environment_name": grid.environment.name,
        "thresholds": grid.thresholds,
        "cell_index": grid.cell_index,
        "shard_files": shard_files,
    })
    plan_path = os.path.join(args.out_dir, PLAN_FILE)
    atomic_write_text(plan_path, dump_json(checksummed_payload(metadata)))
    print(f"planned {plan.total_cells} cell(s) into {plan.num_shards} shard(s) "
          f"({plan.strategy}, fingerprint {plan.fingerprint[:12]})")
    for index, indices in enumerate(plan.assignments):
        print(f"  shard {index}: {len(indices)} cell(s) -> "
              f"{os.path.join(args.out_dir, shard_files[index])}")
    print(f"plan metadata: {plan_path}")
    return 0


def _cmd_shard_run(args: argparse.Namespace) -> int:
    shard = sharding.read_shard(args.shard_file)
    from repro.analysis.runner import ExperimentRunner

    # Resilience settings default from the config embedded in the shard
    # file (the plan's run description); explicit flags override it.
    embedded = shard.config
    retries = args.retries if args.retries is not None else (
        embedded.retries if embedded is not None else 0
    )
    cell_timeout = args.cell_timeout if args.cell_timeout is not None else (
        embedded.cell_timeout if embedded is not None else None
    )
    retry_policy = None
    if retries or cell_timeout is not None:
        from repro.analysis.resilience import RetryPolicy

        retry_policy = RetryPolicy(
            max_attempts=retries + 1, cell_timeout=cell_timeout
        )

    if args.resume and args.checkpoint is None:
        raise ConfigError(
            "--resume needs --checkpoint PATH: the checkpoint file is where "
            "completed cells were journaled"
        )
    if args.checkpoint is not None and not args.resume:
        # Without --resume a checkpoint path means "journal this run from
        # scratch": discard any stale journal rather than silently
        # resuming from a previous (possibly unrelated) invocation.
        if os.path.exists(args.checkpoint):
            os.remove(args.checkpoint)
    resumed = 0
    if args.resume and args.checkpoint is not None:
        completed, _ = sharding.load_shard_checkpoint(args.checkpoint, shard)
        resumed = len(completed)
        print(f"resuming shard {shard.shard_index}: {resumed} of "
              f"{len(shard.indices)} cell(s) already journaled in "
              f"{args.checkpoint}")

    runner = ExperimentRunner(
        jobs=args.jobs,
        progress=(
            stderr_progress(f"shard {shard.shard_index} cell")
            if args.progress else None
        ),
        scheduler_backend=args.scheduler_backend,
        retry_policy=retry_policy,
    )
    outcome_shard = sharding.execute_shard(
        shard, runner, checkpoint_path=args.checkpoint
    )
    sharding.write_outcome_shard(outcome_shard, args.out)
    infeasible = sum(1 for o in outcome_shard.outcomes if not o.feasible)
    failed = sum(
        1 for o in outcome_shard.outcomes if getattr(o, "failure", None)
    )
    extras = f", {failed} failed" if failed else ""
    print(f"shard {shard.shard_index}/{shard.num_shards}: "
          f"{len(outcome_shard.outcomes)} cell(s) "
          f"({infeasible} infeasible{extras}) -> {args.out}")
    return 0


_PLAN_REQUIRED_KEYS = (
    "fingerprint", "num_shards", "total_cells", "cell_index", "thresholds",
    "circuit_name", "environment_name",
)


def _read_plan_metadata(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            metadata = json.load(handle)
    except Exception as exc:
        raise ExperimentError(f"cannot read plan file {path!r}: {exc}") from exc
    if not isinstance(metadata, dict) or metadata.get("format") != PLAN_FORMAT:
        raise ExperimentError(
            f"{path!r} is not a shard-plan file (expected format "
            f"{PLAN_FORMAT!r}); pass the plan.json written by "
            "'repro-place shard plan'"
        )
    missing = [key for key in _PLAN_REQUIRED_KEYS if key not in metadata]
    if missing:
        raise ExperimentError(
            f"plan file {path!r} is missing {missing}; the file is "
            "truncated or was not written by 'repro-place shard plan'"
        )
    verify_payload_checksum(metadata, path)
    return metadata


def _outcome_status(outcome) -> str:
    """One-word cell status for merge tables (MISSING for ``None`` holes)."""
    if outcome is None:
        return "MISSING"
    if getattr(outcome, "failure", None):
        return f"FAILED ({outcome.failure})"
    return "ok" if outcome.feasible else "N/A"


def _render_partial_merge(
    args: argparse.Namespace, merged, metadata, output: str
) -> int:
    """Report a partial merge: per-cell table/rows plus the gap manifest.

    The sweep-table rendering needs every cell, so partial merges always
    use the generic per-cell view; the manifest names the missing shard
    and cell indices and spells out the ``shard replan`` invocation that
    rebuilds exactly the gap.
    """
    labels = metadata.get("labels") if metadata is not None else None
    if output == "json":
        payload = {
            "schema_version": SCHEMA_VERSION,
            "rows": [
                outcome_to_dict(outcome) if outcome is not None else None
                for outcome in merged.outcomes
            ],
            "counters": {
                name: int(value)
                for name, value in sorted(merged.counters.items())
            },
            "plan_fingerprint": merged.plan_fingerprint,
            "num_shards": merged.num_shards,
            "missing_shards": list(merged.missing_shards),
            "missing_cells": list(merged.missing_cells),
        }
        print(dump_json(payload), end="")
        return 0
    table_rows = []
    for index, outcome in enumerate(merged.outcomes):
        if outcome is not None:
            label = outcome.label or outcome.circuit_name
        elif labels is not None and index < len(labels):
            label = labels[index]
        else:
            label = f"cell {index}"
        table_rows.append([label, _outcome_status(outcome)])
    covered = sum(1 for outcome in merged.outcomes if outcome is not None)
    print(format_table(
        ["cell", "status"], table_rows,
        title=f"partial merge ({covered} of {len(merged.outcomes)} cells, "
              f"fingerprint {merged.plan_fingerprint[:12]})",
    ))
    print(f"missing shard(s): {list(merged.missing_shards)}")
    print(f"missing cell(s): {list(merged.missing_cells)}")
    plan_arg = args.plan if args.plan is not None else "plan.json"
    outputs = " ".join(args.shard_outputs)
    print("to recover, rebuild inputs for the gaps and re-run them:")
    print(f"  repro-place shard replan --plan {plan_arg} --out-dir "
          f"<recovery-dir> {outputs}")
    return 0


def _cmd_shard_merge(args: argparse.Namespace) -> int:
    allow_partial = getattr(args, "allow_partial", False)
    shards = []
    for path in args.shard_outputs:
        try:
            shards.append(sharding.read_outcome_shard(path))
        except ExperimentError as exc:
            if not allow_partial:
                raise
            # Under --allow-partial an unreadable (truncated, corrupted)
            # shard output is a gap to report, not a fatal error: the cell
            # data it held is recovered by re-running its shard.
            print(f"warning: skipping unreadable shard output: {exc}",
                  file=sys.stderr)
    merged = sharding.merge_shards(shards, allow_partial=allow_partial)
    output = args.output or "text"
    metadata = None
    if args.plan is not None:
        metadata = _read_plan_metadata(args.plan)
        if merged.plan_fingerprint != metadata["fingerprint"]:
            raise ExperimentError(
                f"outcome shards carry fingerprint "
                f"{merged.plan_fingerprint!r} but the plan is "
                f"{metadata['fingerprint']!r}; these shards belong to a "
                "different grid"
            )
        if merged.num_shards != metadata["num_shards"]:
            raise ExperimentError(
                f"outcome shards declare {merged.num_shards} shard(s) but "
                f"the plan has {metadata['num_shards']}"
            )
        if allow_partial and len(merged.outcomes) < metadata["total_cells"]:
            # A plan-less partial merge can only bound the grid size by
            # the highest delivered cell; the plan knows the true total.
            tail = range(len(merged.outcomes), metadata["total_cells"])
            merged.outcomes.extend([None] * len(tail))
            merged.missing_cells = tuple(
                sorted(set(merged.missing_cells) | set(tail))
            )
        if len(merged.outcomes) != metadata["total_cells"]:
            raise ExperimentError(
                f"merged grid has {len(merged.outcomes)} cell(s) but the "
                f"plan describes {metadata['total_cells']}"
            )
    if not merged.is_complete:
        return _render_partial_merge(args, merged, metadata, output)
    if metadata is not None:
        try:
            row = row_from_outcomes(
                merged.outcomes,
                metadata["cell_index"],
                metadata["thresholds"],
                metadata["circuit_name"],
                metadata["environment_name"],
            )
        except (IndexError, TypeError, ValueError) as exc:
            raise ExperimentError(
                f"plan file {args.plan!r} does not describe the merged grid "
                f"({exc!r}); the plan is corrupt or belongs to another run"
            ) from exc
        if output == "json":
            payload = api.sweep_payload(
                row, merged.outcomes, merged.counters, merged.plan_fingerprint
            )
            print(dump_json(payload), end="")
            return 0
        print(api.sweep_table_text(row))
        return 0
    # Plan-less merge: no threshold layout to rebuild a sweep table from,
    # so emit the generic merged payload (rows in grid order + counters).
    if output == "json":
        payload = outcomes_payload(merged.outcomes, counters=merged.counters)
        payload["plan_fingerprint"] = merged.plan_fingerprint
        payload["num_shards"] = merged.num_shards
        print(dump_json(payload), end="")
        return 0
    table_rows = [
        [outcome.label or outcome.circuit_name, _outcome_status(outcome)]
        for outcome in merged.outcomes
    ]
    print(format_table(
        ["cell", "status"], table_rows,
        title=f"merged grid ({merged.num_shards} shard(s), "
              f"fingerprint {merged.plan_fingerprint[:12]})",
    ))
    return 0


def _cmd_shard_replan(args: argparse.Namespace) -> int:
    """Emit a recovery plan covering exactly the gaps of a sharded run.

    Classifies the given outcome files against the plan — readable files
    with the right fingerprint account for their shard; missing,
    truncated or foreign files leave theirs uncovered — then rebuilds the
    grid from the config embedded in ``plan.json``, verifies the rebuilt
    fingerprint matches (the registries/code must not have drifted since
    planning), and writes fresh shard-input files for the gap shards
    only.
    """
    metadata = _read_plan_metadata(args.plan)
    num_shards = metadata["num_shards"]
    present = {}
    for path in args.shard_outputs:
        try:
            shard = sharding.read_outcome_shard(path)
        except ExperimentError as exc:
            print(f"unreadable shard output (its shard will be replanned): "
                  f"{exc}", file=sys.stderr)
            continue
        if shard.plan_fingerprint != metadata["fingerprint"]:
            print(f"foreign shard output {path!r} (fingerprint "
                  f"{shard.plan_fingerprint[:12]}, plan is "
                  f"{metadata['fingerprint'][:12]}); ignoring",
                  file=sys.stderr)
            continue
        present.setdefault(shard.shard_index, path)
    missing = [index for index in range(num_shards) if index not in present]
    if not missing:
        print(f"all {num_shards} shard(s) accounted for; nothing to replan")
        return 0
    config_data = metadata.get("config")
    if config_data is None:
        raise ExperimentError(
            f"plan file {args.plan!r} embeds no run config, so the grid "
            "cannot be rebuilt; replan needs a plan.json written by "
            "'repro-place shard plan'"
        )
    config = RunConfig.from_dict(config_data)
    plan = Session(config).shard_plan()
    if plan.fingerprint != metadata["fingerprint"]:
        raise ExperimentError(
            f"rebuilt grid fingerprint {plan.fingerprint!r} does not match "
            f"the plan's {metadata['fingerprint']!r}; the circuit or "
            "environment definitions changed since planning, so recovered "
            "shards would not merge with the existing outputs"
        )
    os.makedirs(args.out_dir, exist_ok=True)
    shard_files = {}
    for index in missing:
        shard_file = f"shard-{index}.pkl"
        sharding.write_shard(
            plan.shard_input(index), os.path.join(args.out_dir, shard_file)
        )
        shard_files[index] = shard_file
    recovery = dict(metadata)
    recovery.pop("payload_sha256", None)
    recovery["recovers"] = sorted(missing)
    recovery["shard_files"] = [
        shard_files.get(index) for index in range(num_shards)
    ]
    recovery_path = os.path.join(args.out_dir, PLAN_FILE)
    atomic_write_text(recovery_path, dump_json(checksummed_payload(recovery)))
    print(f"recovery plan: {len(missing)} of {num_shards} shard(s) to re-run "
          f"(fingerprint {plan.fingerprint[:12]})")
    for index in missing:
        print(f"  repro-place shard run --shard-file "
              f"{os.path.join(args.out_dir, shard_files[index])} "
              f"--out {os.path.join(args.out_dir, f'out-{index}.json')}")
    outputs = [present[index] for index in sorted(present)] + [
        os.path.join(args.out_dir, f"out-{index}.json") for index in missing
    ]
    print("then merge the existing and recovered outputs:")
    print("  repro-place shard merge --plan " + " ".join([args.plan] + outputs))
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    return args.shard_func(args)


# ---------------------------------------------------------------------------
# list
# ---------------------------------------------------------------------------


def _cmd_list(_: argparse.Namespace) -> int:
    named_circuits = [e for e in CIRCUITS.entries() if not e.parameterised]
    circuit_families = [e for e in CIRCUITS.entries() if e.parameterised]
    molecules = [e for e in ENVIRONMENTS.entries() if not e.parameterised]
    architectures = [e for e in ENVIRONMENTS.entries() if e.parameterised]
    print("benchmark circuits:")
    for entry in named_circuits:
        circuit = entry.factory()
        print(f"  {entry.name:28s} {circuit.num_qubits:3d} qubits  {circuit.num_gates:4d} gates")
    print("molecules:")
    for entry in molecules:
        environment = entry.factory()
        print(f"  {entry.name:28s} {environment.num_qubits:3d} qubits")
    print("parameterised circuits:")
    for entry in circuit_families:
        print(f"  {entry.spec_form():28s} {entry.description}")
    print("architectures:")
    for entry in architectures:
        print(f"  {entry.spec_form():28s} {entry.description}")
    print("placers:")
    for entry in PLACERS.entries():
        form = entry.spec_form() if entry.parameterised else entry.name
        if entry.name == "anneal":
            form = "anneal[:SEED[,SEED...][xITERS]]"
        print(f"  {form:28s} {entry.description}")
    print("scheduler backends:")
    for entry in SCHEDULER_BACKENDS.entries():
        print(f"  {entry.name:28s} {entry.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-place",
        description="Quantum circuit placement (Maslov, Falconer, Mosca 2007/2008)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    place_parser = subparsers.add_parser("place", help="place a circuit into an environment")
    place_parser.add_argument("circuit", nargs="?", default=None,
                              help="circuit spec (e.g. qft6, qft:7) or .qc file")
    place_parser.add_argument("environment", nargs="?", default=None,
                              help="environment spec (e.g. histidine, grid:4x4) "
                                   "or environment .json file")
    _add_config_option(place_parser)
    _add_common_options(place_parser)
    _add_resilience_options(place_parser)
    _add_output_option(place_parser)
    place_parser.set_defaults(func=_cmd_place)

    sweep_parser = subparsers.add_parser("sweep", help="threshold sweep (Table 3 style)")
    sweep_parser.add_argument("circuit", nargs="?", default=None,
                              help="circuit spec (e.g. qft6, qft:7) or .qc file")
    sweep_parser.add_argument("environment", nargs="?", default=None,
                              help="environment spec (e.g. histidine, chain:12) "
                                   "or environment .json file")
    sweep_parser.add_argument("--thresholds", type=float, nargs="+", default=None,
                              help="threshold values (default: the paper's list)")
    sweep_parser.add_argument("--jobs", type=int, default=None,
                              help="worker processes for the sweep grid "
                                   "(default 1 = serial; results are identical "
                                   "either way)")
    sweep_parser.add_argument("--progress", action="store_true",
                              help="print one line per completed sweep cell to stderr")
    sweep_parser.add_argument("--shards", type=int, default=None,
                              help="partition the sweep grid into this many "
                                   "deterministic shards (use with --shard-index)")
    sweep_parser.add_argument("--shard-index", type=int, default=None,
                              help="execute only this shard of the --shards "
                                   "partition; with --output json the payload "
                                   "is a mergeable outcome shard")
    sweep_parser.add_argument("--strategy", choices=list(SHARD_STRATEGIES.names()),
                              default=None,
                              help="shard partitioning strategy (default: round-robin)")
    _add_config_option(sweep_parser)
    _add_common_options(sweep_parser)
    _add_resilience_options(sweep_parser)
    _add_output_option(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    shard_parser = subparsers.add_parser(
        "shard", help="sharded sweep grids: plan, run one shard, merge outputs"
    )
    shard_subparsers = shard_parser.add_subparsers(dest="shard_command", required=True)

    plan_parser = shard_subparsers.add_parser(
        "plan", help="partition a sweep grid into shard input files + plan.json"
    )
    plan_parser.add_argument("circuit", nargs="?", default=None,
                             help="circuit spec (e.g. qft6, qft:7) or .qc file")
    plan_parser.add_argument("environment", nargs="?", default=None,
                             help="environment spec or environment .json file")
    plan_parser.add_argument("--thresholds", type=float, nargs="+", default=None,
                             help="threshold values (default: the paper's list)")
    plan_parser.add_argument("--shards", type=int, default=None,
                             help="number of shards to partition the grid into")
    plan_parser.add_argument("--strategy", choices=list(SHARD_STRATEGIES.names()),
                             default=None,
                             help="partitioning strategy (default: round-robin)")
    plan_parser.add_argument("--out-dir", required=True,
                             help="directory for plan.json and shard-<i>.pkl files")
    _add_config_option(plan_parser)
    _add_common_options(plan_parser)
    _add_resilience_options(plan_parser)
    plan_parser.set_defaults(func=_cmd_shard, shard_func=_cmd_shard_plan)

    run_parser = shard_subparsers.add_parser(
        "run", help="execute one shard input file and write its outcome shard"
    )
    run_parser.add_argument("--shard-file", required=True,
                            help="shard input written by 'shard plan'")
    run_parser.add_argument("--out", required=True,
                            help="where to write the JSON outcome shard")
    run_parser.add_argument("--jobs", type=int, default=1,
                            help="local worker processes for this shard's cells")
    run_parser.add_argument("--progress", action="store_true",
                            help="print one line per completed cell to stderr")
    run_parser.add_argument("--scheduler-backend", choices=list(BACKEND_CHOICES),
                            default=None,
                            help="override the runtime-evaluator backend for "
                                 "this shard (outputs are bit-identical)")
    _add_resilience_options(run_parser)
    run_parser.add_argument("--checkpoint", default=None, metavar="PATH",
                            help="journal completed cells to this file as "
                                 "the shard runs (crash-safe progress)")
    run_parser.add_argument("--resume", action="store_true",
                            help="with --checkpoint: skip cells already "
                                 "journaled and run only the missing ones")
    run_parser.set_defaults(func=_cmd_shard, shard_func=_cmd_shard_run)

    merge_parser = shard_subparsers.add_parser(
        "merge", help="verify and merge outcome shards back into one grid"
    )
    merge_parser.add_argument("shard_outputs", nargs="+",
                              help="outcome-shard JSON files (one per shard)")
    merge_parser.add_argument("--plan", default=None,
                              help="plan.json from 'shard plan'; enables the "
                                   "sweep-table rendering and extra verification")
    merge_parser.add_argument("--allow-partial", action="store_true",
                              help="merge whatever shards exist; missing or "
                                   "unreadable shards become an explicit "
                                   "missing-cell manifest instead of an error")
    _add_output_option(merge_parser)
    merge_parser.set_defaults(func=_cmd_shard, shard_func=_cmd_shard_merge)

    replan_parser = shard_subparsers.add_parser(
        "replan",
        help="write recovery shard inputs covering exactly the missing or "
             "corrupt outcome shards of a previous run",
    )
    replan_parser.add_argument("shard_outputs", nargs="*",
                               help="the outcome-shard files that DO exist "
                                    "(readable ones account for their shard; "
                                    "everything else is replanned)")
    replan_parser.add_argument("--plan", required=True,
                               help="plan.json of the original 'shard plan'")
    replan_parser.add_argument("--out-dir", required=True,
                               help="directory for the recovery shard inputs "
                                    "and recovery plan.json")
    replan_parser.set_defaults(func=_cmd_shard, shard_func=_cmd_shard_replan)

    list_parser = subparsers.add_parser("list", help="list circuits and environments")
    list_parser.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes: 0 success, 1 runtime failure (infeasible placement,
    corrupt shard files, ...), 2 usage error (unknown specs, invalid
    config values) — the message lists the valid registry names.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (UnknownSpecError, ConfigError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
