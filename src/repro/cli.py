"""Command-line interface.

Installed as ``repro-place`` (see ``pyproject.toml``) and usable as
``python -m repro.cli``.  Subcommands:

``place``
    Place a benchmark circuit (or a circuit file in the text format of
    :mod:`repro.circuits.qasm`) into a molecule (or an environment JSON
    file) and print the placement summary.

``sweep``
    Run a Table-3 style threshold sweep of one circuit over one molecule.
    ``--shards N --shard-index K`` executes only shard ``K`` of the
    deterministic ``N``-shard partition of the sweep grid — the
    single-invocation shard worker (its ``--output json`` payload is a
    mergeable outcome shard).

``shard``
    The sharded-grid pipeline: ``shard plan`` partitions a sweep grid
    into shard input files plus a ``plan.json``, ``shard run`` executes
    one shard file anywhere (any host with this package), and ``shard
    merge`` verifies and merges the outcome shards back into exactly the
    table a serial ``sweep`` would have printed.  See
    ``docs/parallelism.md`` ("Sharding across hosts").

``list``
    List the available benchmark circuits and molecules.

``place`` and ``sweep`` accept ``--output json`` for machine-readable
rows + counters; all JSON surfaces share one serialisation helper
(:mod:`repro.analysis.serialization`), so rows written by any of them can
be compared byte for byte.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from functools import partial
from typing import List, Optional, Tuple

from repro.analysis import sharding
from repro.analysis.reporting import format_table
from repro.analysis.runner import (
    ExperimentRunner,
    ExperimentSpec,
    stderr_progress,
)
from repro.analysis.serialization import dump_json, outcomes_payload
from repro.analysis.sweep import SweepRow, build_sweep_specs, row_from_outcomes
from repro.circuits import qasm
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import CIRCUIT_FACTORIES, benchmark_circuit
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.core.stats import STATS
from repro.exceptions import ExperimentError, ReproError
from repro.hardware import io as hardware_io
from repro.hardware.environment import PhysicalEnvironment
from repro.hardware.molecules import MOLECULE_FACTORIES, molecule
from repro.hardware.threshold_graph import PAPER_THRESHOLDS
from repro.timing._replay import BACKEND_CHOICES


def _load_circuit(spec: str) -> QuantumCircuit:
    """A circuit by benchmark name, or from a file when the name ends in ``.qc``."""
    if spec in CIRCUIT_FACTORIES:
        return benchmark_circuit(spec)
    if spec.endswith(".qc") or spec.endswith(".txt"):
        return qasm.load(spec)
    raise ReproError(
        f"unknown circuit {spec!r}; use one of {sorted(CIRCUIT_FACTORIES)} "
        "or a .qc/.txt circuit file"
    )


def _load_environment(spec: str) -> PhysicalEnvironment:
    """An environment by molecule name, or from a JSON file."""
    if spec in MOLECULE_FACTORIES:
        return molecule(spec)
    if spec.endswith(".json"):
        return hardware_io.load(spec)
    raise ReproError(
        f"unknown environment {spec!r}; use one of {sorted(MOLECULE_FACTORIES)} "
        "or an environment .json file"
    )


def _options_from_args(args: argparse.Namespace) -> PlacementOptions:
    return PlacementOptions(
        threshold=args.threshold,
        max_monomorphisms=args.max_monomorphisms,
        fine_tuning=not args.no_fine_tuning,
        lookahead=not args.no_lookahead,
        leaf_override=not args.no_leaf_override,
        scheduler_backend=args.scheduler_backend,
    )


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--threshold", type=float, default=None,
                        help="fast-interaction threshold (default: minimal connecting value)")
    parser.add_argument("--max-monomorphisms", type=int, default=100,
                        help="candidate monomorphisms per workspace (the paper's k)")
    parser.add_argument("--no-fine-tuning", action="store_true",
                        help="disable hill-climbing fine tuning")
    parser.add_argument("--no-lookahead", action="store_true",
                        help="disable the depth-2 lookahead")
    parser.add_argument("--no-leaf-override", action="store_true",
                        help="disable the leaf-target override routing heuristic")
    parser.add_argument("--scheduler-backend", choices=list(BACKEND_CHOICES),
                        default="auto",
                        help="runtime-evaluator backend (bit-identical outputs; "
                             "'auto' defers to REPRO_SCHEDULER_BACKEND, then "
                             "picks numpy when available and profitable)")


def _add_output_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--output", choices=("text", "json"), default="text",
                        help="output format: human-readable table, or "
                             "machine-readable JSON rows + counters "
                             "(one shared row format across place, sweep "
                             "and the shard pipeline)")


# ---------------------------------------------------------------------------
# place
# ---------------------------------------------------------------------------


def _cmd_place(args: argparse.Namespace) -> int:
    if args.output == "json":
        # Run through the experiment engine so the JSON row is the same
        # shape (and serialisation) as sweep cells and shard outputs.
        spec = ExperimentSpec(
            circuit_factory=partial(_load_circuit, args.circuit),
            environment_factory=partial(_load_environment, args.environment),
            options=_options_from_args(args),
            label=f"{args.circuit}@{args.environment}",
        )
        before = STATS.snapshot()
        outcome = ExperimentRunner().run([spec])[0]
        payload = outcomes_payload([outcome], counters=STATS.delta_since(before))
        payload["circuit"] = args.circuit
        payload["environment"] = args.environment
        print(dump_json(payload), end="")
        return 0 if outcome.feasible else 1
    circuit = _load_circuit(args.circuit)
    environment = _load_environment(args.environment)
    result = place_circuit(circuit, environment, _options_from_args(args))
    print(result.summary())
    print()
    rows = []
    for stage in result.stages:
        mapping = ", ".join(
            f"{qubit}->{node}" for qubit, node in sorted(stage.placement.items(), key=lambda kv: repr(kv[0]))
        )
        rows.append([f"stage {stage.index}", f"gates [{stage.start},{stage.stop})",
                     f"{stage.runtime:g} units", mapping])
    for swap in result.swap_stages:
        rows.append([f"swap {swap.index}->{swap.index + 1}",
                     f"{swap.num_swaps} SWAPs in {swap.depth} layers",
                     f"{swap.runtime:g} units", ""])
    print(format_table(["part", "content", "runtime", "placement"], rows))
    return 0


# ---------------------------------------------------------------------------
# sweep (including the single-invocation shard worker)
# ---------------------------------------------------------------------------


def _sweep_grid_from_args(
    args: argparse.Namespace,
) -> Tuple[PhysicalEnvironment, List[float], str, List[ExperimentSpec], List[int], Optional[str]]:
    """Build the sweep grid the way every sharding surface must: with
    module-level loader partials as factories, so specs — and therefore the
    plan fingerprint — serialise identically in any process.

    The scheduler backend is kept *out* of the specs (they stay on
    ``"auto"``) and returned separately as a runner override: backends are
    bit-identical by contract, so two shard invocations differing only in
    ``--scheduler-backend`` must produce mergeable shards with the same
    plan fingerprint."""
    environment = _load_environment(args.environment)
    thresholds = [float(t) for t in (args.thresholds or list(PAPER_THRESHOLDS))]
    options = _options_from_args(args)
    backend = (
        None if options.scheduler_backend == "auto" else options.scheduler_backend
    )
    options = options.replace(scheduler_backend="auto")
    circuit_factory = partial(_load_circuit, args.circuit)
    circuit_name = circuit_factory().name
    specs, cell_index = build_sweep_specs(
        circuit_factory,
        environment,
        partial(_load_environment, args.environment),
        thresholds,
        options,
        circuit_name=circuit_name,
    )
    return environment, thresholds, circuit_name, specs, cell_index, backend


def _sweep_row_table(row: SweepRow) -> str:
    table_rows = [
        [f"threshold {cell.threshold:g}", cell.formatted()] for cell in row.cells
    ]
    return format_table(["threshold", "runtime (subcircuits)"], table_rows,
                        title=f"{row.circuit_name} on {row.environment_name}")


def _sweep_json_payload(
    row: SweepRow, outcomes, counters, fingerprint: Optional[str] = None
) -> dict:
    payload = outcomes_payload(outcomes, counters=counters)
    payload["circuit"] = row.circuit_name
    payload["environment"] = row.environment_name
    payload["cells"] = [
        {
            "threshold": cell.threshold,
            "feasible": cell.feasible,
            "runtime_seconds": cell.runtime_seconds,
            "num_subcircuits": cell.num_subcircuits,
        }
        for cell in row.cells
    ]
    if fingerprint is not None:
        payload["plan_fingerprint"] = fingerprint
    return payload


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.shards < 1:
        raise ExperimentError(f"--shards must be at least 1, got {args.shards}")
    environment, thresholds, circuit_name, specs, cell_index, backend = (
        _sweep_grid_from_args(args)
    )
    runner = ExperimentRunner(
        jobs=args.jobs,
        progress=stderr_progress("sweep cell") if args.progress else None,
        scheduler_backend=backend,
    )

    if args.shard_index is not None:
        # Shard-worker mode: execute only this invocation's slice of the
        # deterministic N-shard partition.  The JSON payload is a full
        # outcome shard, so N such invocations merge back into the exact
        # serial sweep (repro-place shard merge).
        plan = sharding.ShardPlan.build(
            specs, num_shards=args.shards, strategy=args.strategy
        )
        shard = sharding.execute_shard(plan.shard_input(args.shard_index), runner)
        if args.output == "json":
            print(dump_json(sharding.outcome_shard_to_payload(shard)), end="")
            return 0
        table_rows = [
            [outcome.label, "ok" if outcome.feasible else "N/A"]
            for outcome in shard.outcomes
        ]
        print(format_table(
            ["cell", "status"], table_rows,
            title=f"shard {shard.shard_index}/{shard.num_shards} "
                  f"({len(shard.outcomes)} of {plan.total_cells} cells, "
                  f"fingerprint {shard.plan_fingerprint[:12]})",
        ))
        return 0
    if args.shards > 1:
        raise ExperimentError(
            "--shards without --shard-index selects nothing to run; pass "
            "--shard-index K to execute one shard, or use "
            "'repro-place shard plan' to write shard files for all of them"
        )

    before = STATS.snapshot()
    outcomes = runner.run(specs)
    row = row_from_outcomes(
        outcomes, cell_index, thresholds, circuit_name, environment.name
    )
    if args.output == "json":
        payload = _sweep_json_payload(row, outcomes, STATS.delta_since(before))
        print(dump_json(payload), end="")
        return 0
    print(_sweep_row_table(row))
    return 0


# ---------------------------------------------------------------------------
# shard plan / run / merge
# ---------------------------------------------------------------------------

PLAN_FILE = "plan.json"
PLAN_FORMAT = "repro-shard-plan"


def _cmd_shard_plan(args: argparse.Namespace) -> int:
    if args.shards < 1:
        raise ExperimentError(f"--shards must be at least 1, got {args.shards}")
    # The backend override is dropped on purpose: it is a per-worker
    # execution detail ('shard run --scheduler-backend'), never part of
    # the planned grid's identity.
    environment, thresholds, circuit_name, specs, cell_index, _backend = (
        _sweep_grid_from_args(args)
    )
    plan = sharding.ShardPlan.build(
        specs, num_shards=args.shards, strategy=args.strategy
    )
    os.makedirs(args.out_dir, exist_ok=True)
    shard_files = []
    for index in range(plan.num_shards):
        shard_file = f"shard-{index}.pkl"
        sharding.write_shard(
            plan.shard_input(index), os.path.join(args.out_dir, shard_file)
        )
        shard_files.append(shard_file)
    metadata = plan.metadata()
    metadata.update({
        "format": PLAN_FORMAT,
        "circuit": args.circuit,
        "circuit_name": circuit_name,
        "environment": args.environment,
        "environment_name": environment.name,
        "thresholds": thresholds,
        "cell_index": cell_index,
        "shard_files": shard_files,
    })
    plan_path = os.path.join(args.out_dir, PLAN_FILE)
    with open(plan_path, "w", encoding="utf-8") as handle:
        handle.write(dump_json(metadata))
    print(f"planned {plan.total_cells} cell(s) into {plan.num_shards} shard(s) "
          f"({plan.strategy}, fingerprint {plan.fingerprint[:12]})")
    for index, indices in enumerate(plan.assignments):
        print(f"  shard {index}: {len(indices)} cell(s) -> "
              f"{os.path.join(args.out_dir, shard_files[index])}")
    print(f"plan metadata: {plan_path}")
    return 0


def _cmd_shard_run(args: argparse.Namespace) -> int:
    shard = sharding.read_shard(args.shard_file)
    runner = ExperimentRunner(
        jobs=args.jobs,
        progress=(
            stderr_progress(f"shard {shard.shard_index} cell")
            if args.progress else None
        ),
        scheduler_backend=args.scheduler_backend,
    )
    outcome_shard = sharding.execute_shard(shard, runner)
    sharding.write_outcome_shard(outcome_shard, args.out)
    infeasible = sum(1 for o in outcome_shard.outcomes if not o.feasible)
    print(f"shard {shard.shard_index}/{shard.num_shards}: "
          f"{len(outcome_shard.outcomes)} cell(s) "
          f"({infeasible} infeasible) -> {args.out}")
    return 0


_PLAN_REQUIRED_KEYS = (
    "fingerprint", "num_shards", "total_cells", "cell_index", "thresholds",
    "circuit_name", "environment_name",
)


def _read_plan_metadata(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            metadata = json.load(handle)
    except Exception as exc:
        raise ExperimentError(f"cannot read plan file {path!r}: {exc}") from exc
    if not isinstance(metadata, dict) or metadata.get("format") != PLAN_FORMAT:
        raise ExperimentError(
            f"{path!r} is not a shard-plan file (expected format "
            f"{PLAN_FORMAT!r}); pass the plan.json written by "
            "'repro-place shard plan'"
        )
    missing = [key for key in _PLAN_REQUIRED_KEYS if key not in metadata]
    if missing:
        raise ExperimentError(
            f"plan file {path!r} is missing {missing}; the file is "
            "truncated or was not written by 'repro-place shard plan'"
        )
    return metadata


def _cmd_shard_merge(args: argparse.Namespace) -> int:
    shards = [sharding.read_outcome_shard(path) for path in args.shard_outputs]
    merged = sharding.merge_shards(shards)
    metadata = None
    if args.plan is not None:
        metadata = _read_plan_metadata(args.plan)
        if merged.plan_fingerprint != metadata["fingerprint"]:
            raise ExperimentError(
                f"outcome shards carry fingerprint "
                f"{merged.plan_fingerprint!r} but the plan is "
                f"{metadata['fingerprint']!r}; these shards belong to a "
                "different grid"
            )
        if merged.num_shards != metadata["num_shards"]:
            raise ExperimentError(
                f"outcome shards declare {merged.num_shards} shard(s) but "
                f"the plan has {metadata['num_shards']}"
            )
        if len(merged.outcomes) != metadata["total_cells"]:
            raise ExperimentError(
                f"merged grid has {len(merged.outcomes)} cell(s) but the "
                f"plan describes {metadata['total_cells']}"
            )
    if metadata is not None:
        try:
            row = row_from_outcomes(
                merged.outcomes,
                metadata["cell_index"],
                metadata["thresholds"],
                metadata["circuit_name"],
                metadata["environment_name"],
            )
        except (IndexError, TypeError, ValueError) as exc:
            raise ExperimentError(
                f"plan file {args.plan!r} does not describe the merged grid "
                f"({exc!r}); the plan is corrupt or belongs to another run"
            ) from exc
        if args.output == "json":
            payload = _sweep_json_payload(
                row, merged.outcomes, merged.counters, merged.plan_fingerprint
            )
            print(dump_json(payload), end="")
            return 0
        print(_sweep_row_table(row))
        return 0
    # Plan-less merge: no threshold layout to rebuild a sweep table from,
    # so emit the generic merged payload (rows in grid order + counters).
    if args.output == "json":
        payload = outcomes_payload(merged.outcomes, counters=merged.counters)
        payload["plan_fingerprint"] = merged.plan_fingerprint
        payload["num_shards"] = merged.num_shards
        print(dump_json(payload), end="")
        return 0
    table_rows = [
        [outcome.label or outcome.circuit_name,
         "ok" if outcome.feasible else "N/A"]
        for outcome in merged.outcomes
    ]
    print(format_table(
        ["cell", "status"], table_rows,
        title=f"merged grid ({merged.num_shards} shard(s), "
              f"fingerprint {merged.plan_fingerprint[:12]})",
    ))
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    return args.shard_func(args)


# ---------------------------------------------------------------------------
# list
# ---------------------------------------------------------------------------


def _cmd_list(_: argparse.Namespace) -> int:
    print("benchmark circuits:")
    for name in sorted(CIRCUIT_FACTORIES):
        circuit = benchmark_circuit(name)
        print(f"  {name:28s} {circuit.num_qubits:3d} qubits  {circuit.num_gates:4d} gates")
    print("molecules:")
    for name in sorted(MOLECULE_FACTORIES):
        environment = molecule(name)
        print(f"  {name:28s} {environment.num_qubits:3d} qubits")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-place",
        description="Quantum circuit placement (Maslov, Falconer, Mosca 2007/2008)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    place_parser = subparsers.add_parser("place", help="place a circuit into an environment")
    place_parser.add_argument("circuit", help="benchmark circuit name or .qc file")
    place_parser.add_argument("environment", help="molecule name or environment .json file")
    _add_common_options(place_parser)
    _add_output_option(place_parser)
    place_parser.set_defaults(func=_cmd_place)

    sweep_parser = subparsers.add_parser("sweep", help="threshold sweep (Table 3 style)")
    sweep_parser.add_argument("circuit", help="benchmark circuit name or .qc file")
    sweep_parser.add_argument("environment", help="molecule name or environment .json file")
    sweep_parser.add_argument("--thresholds", type=float, nargs="+", default=None,
                              help="threshold values (default: the paper's list)")
    sweep_parser.add_argument("--jobs", type=int, default=1,
                              help="worker processes for the sweep grid "
                                   "(1 = serial; results are identical either way)")
    sweep_parser.add_argument("--progress", action="store_true",
                              help="print one line per completed sweep cell to stderr")
    sweep_parser.add_argument("--shards", type=int, default=1,
                              help="partition the sweep grid into this many "
                                   "deterministic shards (use with --shard-index)")
    sweep_parser.add_argument("--shard-index", type=int, default=None,
                              help="execute only this shard of the --shards "
                                   "partition; with --output json the payload "
                                   "is a mergeable outcome shard")
    sweep_parser.add_argument("--strategy", choices=list(sharding.STRATEGIES),
                              default="round-robin",
                              help="shard partitioning strategy (default: round-robin)")
    _add_common_options(sweep_parser)
    _add_output_option(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    shard_parser = subparsers.add_parser(
        "shard", help="sharded sweep grids: plan, run one shard, merge outputs"
    )
    shard_subparsers = shard_parser.add_subparsers(dest="shard_command", required=True)

    plan_parser = shard_subparsers.add_parser(
        "plan", help="partition a sweep grid into shard input files + plan.json"
    )
    plan_parser.add_argument("circuit", help="benchmark circuit name or .qc file")
    plan_parser.add_argument("environment", help="molecule name or environment .json file")
    plan_parser.add_argument("--thresholds", type=float, nargs="+", default=None,
                             help="threshold values (default: the paper's list)")
    plan_parser.add_argument("--shards", type=int, required=True,
                             help="number of shards to partition the grid into")
    plan_parser.add_argument("--strategy", choices=list(sharding.STRATEGIES),
                             default="round-robin",
                             help="partitioning strategy (default: round-robin)")
    plan_parser.add_argument("--out-dir", required=True,
                             help="directory for plan.json and shard-<i>.pkl files")
    _add_common_options(plan_parser)
    plan_parser.set_defaults(func=_cmd_shard, shard_func=_cmd_shard_plan)

    run_parser = shard_subparsers.add_parser(
        "run", help="execute one shard input file and write its outcome shard"
    )
    run_parser.add_argument("--shard-file", required=True,
                            help="shard input written by 'shard plan'")
    run_parser.add_argument("--out", required=True,
                            help="where to write the JSON outcome shard")
    run_parser.add_argument("--jobs", type=int, default=1,
                            help="local worker processes for this shard's cells")
    run_parser.add_argument("--progress", action="store_true",
                            help="print one line per completed cell to stderr")
    run_parser.add_argument("--scheduler-backend", choices=list(BACKEND_CHOICES),
                            default=None,
                            help="override the runtime-evaluator backend for "
                                 "this shard (outputs are bit-identical)")
    run_parser.set_defaults(func=_cmd_shard, shard_func=_cmd_shard_run)

    merge_parser = shard_subparsers.add_parser(
        "merge", help="verify and merge outcome shards back into one grid"
    )
    merge_parser.add_argument("shard_outputs", nargs="+",
                              help="outcome-shard JSON files (one per shard)")
    merge_parser.add_argument("--plan", default=None,
                              help="plan.json from 'shard plan'; enables the "
                                   "sweep-table rendering and extra verification")
    _add_output_option(merge_parser)
    merge_parser.set_defaults(func=_cmd_shard, shard_func=_cmd_shard_merge)

    list_parser = subparsers.add_parser("list", help="list circuits and molecules")
    list_parser.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
