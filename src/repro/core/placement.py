"""The quantum circuit placer (Section 5 of the paper).

:func:`place_circuit` runs the full heuristic:

1. extract the adjacency graph of fast interactions at the chosen threshold;
2. greedily split the circuit into maximal workspaces embeddable in that
   graph (:mod:`repro.core.workspace`);
3. for each workspace, ask the configured placement engine
   (``options.placer``, a :data:`repro.registry.PLACERS` spec) for scored
   candidate placements — the default ``exact`` engine enumerates up to
   ``k`` monomorphisms of the workspace's interaction graph into the
   adjacency graph, completes each to a full placement and fine tunes it by
   hill climbing — and pick the best according to the scheduled runtime
   plus (estimated) swap cost, optionally with the depth-2 lookahead of
   Section 5.3;
4. connect consecutive workspaces with SWAP stages built by the recursive
   bubble router (:mod:`repro.routing.bubble`);
5. assemble the whole computation ``C1 E12 C2 E23 ... Ct`` over physical
   nodes and report its scheduled runtime.

Steps 1, 2, 4 and 5 are shared by every placement engine —
:func:`run_pipeline` implements them and delegates step 3 to a
:class:`repro.core.placers.Placer`, so the heuristic engines
(:mod:`repro.core.placers.greedy`, :mod:`repro.core.placers.anneal`)
emit exactly the result types and swap stages the exact engine does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Qubit
from repro.core._bitset import HostEncoding, encode_host, node_index_table
from repro.core.config import DEFAULT_OPTIONS, PlacementOptions
from repro.core.fine_tuning import fine_tune_workspace_placement
from repro.core.monomorphism import find_monomorphisms
from repro.core.result import PlacementResult, StagePlacement, SwapStage
from repro.core.workspace import Workspace, extract_workspaces
from repro.exceptions import PlacementError, ThresholdError
from repro.hardware.environment import Node, PhysicalEnvironment
from repro.routing.bubble import RoutingResult, route_permutation
from repro.routing.permutation import required_permutation
from repro.routing.swap_circuit import swap_stage_circuit, swap_stage_runtime
from repro.timing.scheduler import (
    RuntimeEvaluator,
    circuit_runtime,
    sequential_level_runtime,
)

Placement = Dict[Qubit, Node]


class _GraphContext:
    """Shared integer-indexed lookups for one working graph.

    Built once per :func:`place_circuit` run and threaded through the
    helpers so that the hot loops never sort nodes by ``repr`` or launch a
    fresh breadth-first search: the node-order table replaces every
    ``sorted(..., key=repr)`` tie-break (one ``repr`` per node, total), and
    hop distances are computed per source node at most once.
    """

    def __init__(self, graph: nx.Graph, circuit: QuantumCircuit) -> None:
        self.graph = graph
        self.node_order: Dict[Node, int] = node_index_table(graph.nodes())
        self.host_encoding: HostEncoding = encode_host(graph)
        self.qubits: Tuple[Qubit, ...] = tuple(circuit.qubits)
        self._distances: Dict[Node, Dict[Node, int]] = {}

    def distances_from(self, source: Node) -> Dict[Node, int]:
        """Hop distances from ``source`` (cached per source node)."""
        cached = self._distances.get(source)
        if cached is None:
            cached = nx.single_source_shortest_path_length(self.graph, source)
            self._distances[source] = cached
        return cached

    def placement_key(self, placement: Placement) -> Tuple[int, ...]:
        """Order-free integer fingerprint of a placement (for deduplication)."""
        order = self.node_order
        return tuple(order[placement[q]] for q in self.qubits)


class QuantumCircuitPlacer:
    """Object-oriented front end over :func:`place_circuit`.

    Holds an environment and options so that several circuits can be placed
    against the same hardware description::

        placer = QuantumCircuitPlacer(molecules.trans_crotonic_acid(),
                                      PlacementOptions(threshold=200))
        result = placer.place(qft_circuit(6))
    """

    def __init__(
        self,
        environment: PhysicalEnvironment,
        options: Optional[PlacementOptions] = None,
    ) -> None:
        self.environment = environment
        self.options = options or DEFAULT_OPTIONS

    def place(self, circuit: QuantumCircuit) -> PlacementResult:
        """Place ``circuit`` into the stored environment."""
        return place_circuit(circuit, self.environment, self.options)


# ---------------------------------------------------------------------------
# Internal helpers
# ---------------------------------------------------------------------------


def _working_graph(
    circuit: QuantumCircuit,
    environment: PhysicalEnvironment,
    options: PlacementOptions,
    threshold: float,
) -> nx.Graph:
    """Adjacency graph (or its largest component) the placer works inside."""
    adjacency = environment.adjacency_graph(threshold)
    if adjacency.number_of_edges() == 0 and circuit.num_two_qubit_gates > 0:
        raise ThresholdError(
            f"threshold {threshold:g} disallows every interaction of "
            f"{environment.name!r}; the circuit cannot be executed (N/A)"
        )
    if circuit.num_qubits > environment.num_qubits:
        raise PlacementError(
            f"circuit {circuit.name!r} needs {circuit.num_qubits} qubits but "
            f"{environment.name!r} only provides {environment.num_qubits}"
        )
    if environment.is_connected_at(threshold):
        return adjacency
    if not options.restrict_to_largest_component:
        return adjacency
    largest = environment.largest_component_graph(threshold)
    if largest.number_of_nodes() < circuit.num_qubits:
        raise ThresholdError(
            f"threshold {threshold:g} leaves only {largest.number_of_nodes()} connected "
            f"physical qubits on {environment.name!r}, fewer than the "
            f"{circuit.num_qubits} the circuit needs (N/A)"
        )
    return largest


def _median_edge_delay(graph: nx.Graph) -> float:
    delays = sorted(data.get("delay", 1.0) for _, _, data in graph.edges(data=True))
    if not delays:
        return 1.0
    middle = len(delays) // 2
    if len(delays) % 2:
        return delays[middle]
    return (delays[middle - 1] + delays[middle]) / 2.0


def _complete_placement(
    circuit: QuantumCircuit,
    partial: Placement,
    context: _GraphContext,
    previous: Optional[Placement],
) -> Placement:
    """Extend a monomorphism over the active qubits to all circuit qubits.

    Inactive qubits prefer to stay where the previous stage left them (when
    that node is still free), then take the free node closest to their old
    position, and finally any free node in a deterministic order.
    """
    graph = context.graph
    node_order = context.node_order
    placement: Placement = dict(partial)
    used = set(placement.values())
    free_set = {node for node in graph.nodes() if node not in used}

    unplaced = [q for q in circuit.qubits if q not in placement]
    remaining: List[Qubit] = []
    if previous is not None:
        for qubit in unplaced:
            old_node = previous.get(qubit)
            if old_node is not None and old_node in free_set:
                placement[qubit] = old_node
                free_set.remove(old_node)
            else:
                remaining.append(qubit)
    else:
        remaining = list(unplaced)

    for qubit in remaining:
        if not free_set:
            raise PlacementError(
                "ran out of physical qubits while completing a placement"
            )
        if previous is not None and previous.get(qubit) in graph:
            distances = context.distances_from(previous[qubit])
            target = min(
                free_set,
                key=lambda node: (
                    distances.get(node, float("inf")),
                    node_order[node],
                ),
            )
        else:
            target = min(free_set, key=node_order.__getitem__)
        placement[qubit] = target
        free_set.remove(target)
    return placement


def _stage_runtime(
    subcircuit: QuantumCircuit,
    placement: Placement,
    environment: PhysicalEnvironment,
    options: PlacementOptions,
    evaluator: Optional[RuntimeEvaluator] = None,
) -> float:
    if options.sequential_levels:
        return sequential_level_runtime(subcircuit, placement, environment, validate=False)
    if evaluator is not None:
        return evaluator.runtime(placement)
    return circuit_runtime(
        subcircuit,
        placement,
        environment,
        apply_interaction_cap=options.apply_interaction_cap,
        validate=False,
    )


def _estimate_swap_cost(
    previous: Placement,
    candidate: Placement,
    context: _GraphContext,
    median_delay: float,
) -> float:
    """Cheap estimate of the swap-stage runtime between two placements.

    Uses hop distances in the adjacency graph: the stage's depth is at least
    the largest displacement and its work at least the total displacement;
    each layer costs about one SWAP, i.e. three times a typical edge delay.
    """
    max_hops = 0
    total_hops = 0
    for qubit, new_node in candidate.items():
        old_node = previous.get(qubit)
        if old_node is None or old_node == new_node:
            continue
        hops = context.distances_from(old_node).get(new_node)
        if hops is None:  # pragma: no cover - guarded by construction
            return float("inf")
        max_hops = max(max_hops, hops)
        total_hops += hops
    if total_hops == 0:
        return 0.0
    estimated_depth = max_hops + 0.5 * (total_hops - max_hops) / max(
        1, context.graph.number_of_nodes()
    )
    return 3.0 * median_delay * estimated_depth


def _candidate_placements(
    workspace: Workspace,
    subcircuit: QuantumCircuit,
    circuit: QuantumCircuit,
    context: _GraphContext,
    environment: PhysicalEnvironment,
    options: PlacementOptions,
    previous: Optional[Placement],
    evaluator: Optional[RuntimeEvaluator] = None,
) -> List[Tuple[Placement, float]]:
    """Scored candidate placements for one workspace, cheapest first."""
    pattern = workspace.interaction_graph
    graph = context.graph
    candidates: List[Tuple[Placement, float]] = []

    if pattern.number_of_edges() == 0:
        base = previous if previous is not None else {}
        placement = _complete_placement(circuit, dict(base) if previous else {}, context, previous)
        runtime = _stage_runtime(subcircuit, placement, environment, options, evaluator)
        return [(placement, runtime)]

    monomorphisms = find_monomorphisms(
        pattern,
        graph,
        max_count=options.max_monomorphisms,
        host_encoding=context.host_encoding,
    )
    if not monomorphisms:
        raise PlacementError(
            f"workspace {workspace.index} has no monomorphism into the "
            "adjacency graph although extraction admitted it"
        )

    allowed_nodes = list(graph.nodes())
    seen = set()
    for mapping in monomorphisms:
        placement = _complete_placement(circuit, mapping, context, previous)
        if options.fine_tuning:
            placement, runtime = fine_tune_workspace_placement(
                subcircuit,
                placement,
                environment,
                allowed_nodes=allowed_nodes,
                apply_interaction_cap=options.apply_interaction_cap,
                max_rounds=options.fine_tuning_max_rounds,
                evaluator=evaluator,
                full_recompute=options.debug_full_recompute,
                backend=options.scheduler_backend,
            )
        else:
            runtime = _stage_runtime(subcircuit, placement, environment, options, evaluator)
        key = context.placement_key(placement)
        if key in seen:
            continue
        seen.add(key)
        candidates.append((placement, runtime))

    candidates.sort(key=lambda item: item[1])
    return candidates


def _build_swap_stage(
    index: int,
    previous: Placement,
    target: Placement,
    graph: nx.Graph,
    environment: PhysicalEnvironment,
    options: PlacementOptions,
) -> SwapStage:
    partial = required_permutation(previous, target)
    routing = route_permutation(graph, partial, leaf_override=options.leaf_override)
    runtime = swap_stage_runtime(
        routing.layers, environment, sequential_levels=options.sequential_levels
    )
    return SwapStage(index=index, routing=routing, runtime=runtime)


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


def place_circuit(
    circuit: QuantumCircuit,
    environment: PhysicalEnvironment,
    options: Optional[PlacementOptions] = None,
) -> PlacementResult:
    """Place ``circuit`` into ``environment`` with the configured engine.

    Dispatches on ``options.placer`` through the
    :data:`repro.registry.PLACERS` registry; the default ``"exact"`` runs
    the paper's exhaustive heuristic, bit-identical to before the registry
    existed.
    """
    options = options or DEFAULT_OPTIONS
    from repro.registry import PLACERS

    return PLACERS.build(options.placer).place(circuit, environment, options)


def run_pipeline(
    circuit: QuantumCircuit,
    environment: PhysicalEnvironment,
    options: PlacementOptions,
    placer,
) -> PlacementResult:
    """The engine-independent placement pipeline.

    Runs threshold/graph resolution, workspace extraction, candidate
    selection (delegated to ``placer``, a
    :class:`repro.core.placers.Placer`), swap-stage routing and final
    assembly.  :func:`place_circuit` is the spec-string front end.
    """
    if options.reorder_commuting_gates:
        from repro.circuits.commutation import commutation_aware_reorder

        circuit = commutation_aware_reorder(circuit)
    threshold = (
        options.threshold
        if options.threshold is not None
        else environment.minimal_connecting_threshold()
    )
    graph = _working_graph(circuit, environment, options, threshold)
    if circuit.num_qubits > graph.number_of_nodes():
        raise ThresholdError(
            f"threshold {threshold:g} leaves only {graph.number_of_nodes()} usable "
            f"physical qubits on {environment.name!r}, fewer than the "
            f"{circuit.num_qubits} the circuit needs (N/A)"
        )
    median_delay = _median_edge_delay(graph)
    context = _GraphContext(graph, circuit)

    workspaces = extract_workspaces(
        circuit, graph, max_two_qubit_gates=options.max_workspace_two_qubit_gates
    )
    subcircuits = [ws.subcircuit(circuit) for ws in workspaces]

    # One compiled runtime evaluator per workspace, shared by every candidate
    # monomorphism of that workspace (and by the lookahead, which scores the
    # next workspace's candidates one iteration early).
    evaluators: List[Optional[RuntimeEvaluator]] = [None] * len(workspaces)

    def evaluator_for(index: int) -> Optional[RuntimeEvaluator]:
        if options.sequential_levels:
            return None
        if evaluators[index] is None:
            evaluators[index] = RuntimeEvaluator(
                subcircuits[index],
                environment,
                apply_interaction_cap=options.apply_interaction_cap,
                full_recompute=options.debug_full_recompute,
                backend=options.scheduler_backend,
            )
        return evaluators[index]

    stages: List[StagePlacement] = []
    swap_stages: List[SwapStage] = []
    previous_placement: Optional[Placement] = None

    for index, workspace in enumerate(workspaces):
        subcircuit = subcircuits[index]
        candidates = placer.candidates(
            workspace, subcircuit, circuit, context, environment, options,
            previous_placement, evaluator_for(index),
        )

        # The depth-2 lookahead scores each candidate together with the best
        # follow-up for the next workspace.  The next workspace's candidate
        # monomorphisms do not depend on the choice made here (the paper's
        # "only 2k monomorphism calls" observation), so one shared list is
        # enough for scoring; the accepted next-stage placement is recomputed
        # with the proper previous placement on the next loop iteration.
        # Single-candidate engines (greedy, anneal) skip the lookahead: with
        # one candidate per workspace there is nothing to rank, and the
        # extra engine run would double their cost for an identical choice.
        lookahead_candidates: Optional[List[Tuple[Placement, float]]] = None
        if (
            options.lookahead
            and placer.provides_multiple_candidates
            and index + 1 < len(workspaces)
        ):
            lookahead_candidates = placer.candidates(
                workspaces[index + 1],
                subcircuits[index + 1],
                circuit,
                context,
                environment,
                options,
                None,
                evaluator_for(index + 1),
            )

        best_placement, best_runtime = _select_candidate(
            candidates,
            lookahead_candidates,
            previous_placement,
            context,
            median_delay,
            options,
        )

        if previous_placement is not None:
            swap_stage = _build_swap_stage(
                index - 1, previous_placement, best_placement, graph, environment, options
            )
            swap_stages.append(swap_stage)

        stages.append(
            StagePlacement(
                index=index,
                start=workspace.start,
                stop=workspace.stop,
                placement=dict(best_placement),
                runtime=_stage_runtime(
                    subcircuit, best_placement, environment, options,
                    evaluator_for(index),
                ),
            )
        )
        previous_placement = best_placement

    physical_circuit = _assemble_physical_circuit(
        circuit, environment, stages, swap_stages, subcircuits
    )
    identity = {node: node for node in environment.nodes}
    if options.sequential_levels:
        total_runtime = sequential_level_runtime(
            physical_circuit, identity, environment, validate=False
        )
    else:
        total_runtime = circuit_runtime(
            physical_circuit,
            identity,
            environment,
            apply_interaction_cap=options.apply_interaction_cap,
            validate=False,
        )

    return PlacementResult(
        circuit_name=circuit.name,
        environment_name=environment.name,
        threshold=threshold,
        stages=stages,
        swap_stages=swap_stages,
        physical_circuit=physical_circuit,
        total_runtime=total_runtime,
        time_unit_seconds=environment.time_unit_seconds,
        placement_nodes=tuple(graph.nodes()),
    )


def _select_candidate(
    candidates: List[Tuple[Placement, float]],
    lookahead_candidates: Optional[List[Tuple[Placement, float]]],
    previous: Optional[Placement],
    context: _GraphContext,
    median_delay: float,
    options: PlacementOptions,
) -> Tuple[Placement, float]:
    """Pick the cheapest candidate, optionally looking one stage ahead."""
    width = options.lookahead_width
    shortlist = candidates[:width] if lookahead_candidates is not None else candidates
    best: Optional[Tuple[Placement, float]] = None
    best_score = float("inf")
    for placement, runtime in shortlist:
        score = runtime
        if previous is not None:
            score += _estimate_swap_cost(previous, placement, context, median_delay)
        if lookahead_candidates is not None:
            next_best = float("inf")
            for next_placement, next_runtime in lookahead_candidates[:width]:
                next_score = next_runtime + _estimate_swap_cost(
                    placement, next_placement, context, median_delay
                )
                next_best = min(next_best, next_score)
            if next_best < float("inf"):
                score += next_best
        if score < best_score:
            best_score = score
            best = (placement, runtime)
    if best is None:  # pragma: no cover - candidates is never empty
        raise PlacementError("no candidate placement available")
    return best


def _assemble_physical_circuit(
    circuit: QuantumCircuit,
    environment: PhysicalEnvironment,
    stages: Sequence[StagePlacement],
    swap_stages: Sequence[SwapStage],
    subcircuits: Sequence[QuantumCircuit],
) -> QuantumCircuit:
    """Build the full computation ``C1 E12 C2 ... Ct`` over physical nodes."""
    physical = QuantumCircuit(
        environment.nodes, name=f"{circuit.name}@{environment.name}"
    )
    for index, stage in enumerate(stages):
        mapping = stage.placement
        for gate in subcircuits[index]:
            physical.append(gate.remap(mapping))
        if index < len(swap_stages):
            swap_circuit = swap_stage_circuit(
                swap_stages[index].routing.layers, environment.nodes
            )
            physical.extend(swap_circuit.gates)
    return physical


def placement_runtime_seconds(result: PlacementResult) -> float:
    """Convenience accessor mirroring the paper's "estimated circuit runtime"."""
    return result.runtime_seconds
