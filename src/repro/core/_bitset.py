"""Integer-bitset host encodings for the monomorphism engine.

The backtracking enumerator in :mod:`repro.core.monomorphism` spends its
time asking two questions: "which host nodes are still available?" and
"which host nodes are adjacent to every already-placed neighbour?".  Both
become single big-int operations once the host graph is relabelled to
contiguous integers and its adjacency is stored as one Python-int bitmask
per node: bit ``j`` of ``adjacency[i]`` is set iff host nodes ``i`` and
``j`` share an edge.

The bit order is the engine's canonical *node order*: host nodes sorted by
``repr`` — the same deterministic order the original enumerator used — with
the ``repr`` computed exactly once per node instead of inside every
comparison of every search.  Iterating the set bits of a mask from least to
most significant therefore visits host nodes in exactly the order the
original ``for host_node in sorted(host.nodes(), key=repr)`` scan did,
which keeps the enumeration-order contract intact.

Encodings are cached per host graph in a :class:`weakref.WeakKeyDictionary`
(with a cheap size check to catch in-place mutation) because the placer
asks for monomorphisms into the same adjacency graph hundreds of times per
run — once per workspace-extraction step and once per workspace placement.
"""

from __future__ import annotations

import weakref
from typing import Dict, Hashable, Iterator, List, Tuple

import networkx as nx

from repro.core.stats import STATS

Node = Hashable


def node_index_table(nodes) -> Dict[Node, int]:
    """Deterministic node -> index table (``repr``-sorted, computed once).

    This is the shared replacement for the ad-hoc ``sorted(..., key=repr)``
    calls that used to appear in every tie-break of the placer: the ``repr``
    of each node is computed exactly once here, and every later comparison
    is an integer comparison.  Works for mixed node types (integers, strings,
    tuples, ...) because only the ``repr`` strings are ever compared.

    This module is the *only* sanctioned home of a ``key=repr`` sort
    (lint rule DET002, ``docs/static-analysis.md``): every other module
    obtains the canonical order through this table or the helpers below,
    so there is exactly one definition of node order to audit.
    """
    return {node: index for index, node in enumerate(sorted(nodes, key=repr))}


def canonical_order(nodes) -> List[Node]:
    """The nodes in canonical order (the order of :func:`node_index_table`).

    Exploits dict insertion order: the table is built by enumerating the
    canonically sorted nodes, so listing its keys *is* the sorted scan —
    no second sort, no per-comparison ``repr``.
    """
    return list(node_index_table(nodes))


def canonical_min(nodes) -> Node:
    """The canonically first node (deterministic ``min`` for mixed types)."""
    order = canonical_order(nodes)
    if not order:
        raise ValueError("canonical_min() of an empty node collection")
    return order[0]


class HostEncoding:
    """A host graph relabelled to contiguous ints with bitmask adjacency."""

    __slots__ = (
        "nodes",
        "index",
        "adjacency",
        "degree",
        "neighbor_degrees",
        "full_mask",
        "_size_signature",
    )

    def __init__(self, host: nx.Graph) -> None:
        self.nodes: List[Node] = canonical_order(host.nodes())
        self.index: Dict[Node, int] = {
            node: position for position, node in enumerate(self.nodes)
        }
        count = len(self.nodes)
        adjacency = [0] * count
        degree = [0] * count
        for a, b in host.edges():
            i = self.index[a]
            j = self.index[b]
            if i == j:  # self-loops carry no placement meaning
                continue
            adjacency[i] |= 1 << j
            adjacency[j] |= 1 << i
        for position in range(count):
            degree[position] = adjacency[position].bit_count()
        self.adjacency: List[int] = adjacency
        self.degree: List[int] = degree
        # Descending degree multiset of each node's neighbourhood, used by
        # the candidate-domain pruning in the enumerator.
        self.neighbor_degrees: List[Tuple[int, ...]] = [
            tuple(
                sorted(
                    (degree[j] for j in iter_bits(adjacency[i])),
                    reverse=True,
                )
            )
            for i in range(count)
        ]
        self.full_mask: int = (1 << count) - 1
        self._size_signature = (host.number_of_nodes(), host.number_of_edges())

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def matches(self, host: nx.Graph) -> bool:
        """Cheap staleness check against in-place host mutation."""
        return self._size_signature == (
            host.number_of_nodes(),
            host.number_of_edges(),
        )


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set-bit positions of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


_ENCODING_CACHE: "weakref.WeakKeyDictionary[nx.Graph, HostEncoding]" = (
    weakref.WeakKeyDictionary()
)


def encode_host(host: nx.Graph) -> HostEncoding:
    """Return a (cached) :class:`HostEncoding` for ``host``.

    The cache is keyed by graph identity and validated against the graph's
    node/edge counts, so the common case — the placer reusing one adjacency
    graph across hundreds of searches — hits, while a graph that was
    mutated in place (same object, different size) is re-encoded.  Mutations
    that preserve both counts are not detected; the placement engine never
    mutates adjacency graphs, and external callers can simply pass a fresh
    graph object.
    """
    encoding = _ENCODING_CACHE.get(host)
    if encoding is not None and encoding.matches(host):
        STATS.increment("monomorphism.host_encoding_hits")
        return encoding
    encoding = HostEncoding(host)
    STATS.increment("monomorphism.host_encodings")
    try:
        _ENCODING_CACHE[host] = encoding
    except TypeError:  # pragma: no cover - non-weakrefable graph subclass
        pass
    return encoding
