"""The quantum circuit placement engine (the paper's primary contribution)."""

from repro.core.config import DEFAULT_OPTIONS, PlacementOptions
from repro.core.exhaustive import (
    hill_climbing_whole_circuit_placement,
    optimal_whole_circuit_placement,
    search_space_size,
    whole_circuit_runtime,
)
from repro.core.monomorphism import (
    count_monomorphisms,
    find_monomorphisms,
    first_monomorphism,
    has_monomorphism,
    iter_monomorphisms,
    verify_monomorphism,
)
from repro.core.placement import QuantumCircuitPlacer, place_circuit
from repro.core.result import PlacementResult, StagePlacement, SwapStage
from repro.core.workspace import Workspace, extract_workspaces

__all__ = [
    "place_circuit",
    "QuantumCircuitPlacer",
    "PlacementOptions",
    "DEFAULT_OPTIONS",
    "PlacementResult",
    "StagePlacement",
    "SwapStage",
    "Workspace",
    "extract_workspaces",
    "find_monomorphisms",
    "iter_monomorphisms",
    "first_monomorphism",
    "has_monomorphism",
    "count_monomorphisms",
    "verify_monomorphism",
    "optimal_whole_circuit_placement",
    "hill_climbing_whole_circuit_placement",
    "whole_circuit_runtime",
    "search_space_size",
]
