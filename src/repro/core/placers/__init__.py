"""Pluggable placement engines (:data:`repro.registry.PLACERS`).

Importing this package registers the engine portfolio:

``exact``
    The paper's exhaustive monomorphism search + fine tuning — the
    default, bit-identical to every release before the registry existed.
``greedy``
    One-shot interaction-weight greedy seeding: no search tree, the
    cheap baseline and the annealer's initial mapping.
``anneal`` / ``anneal:SEED`` / ``anneal:SEEDxITERS``
    Deterministic greedy-seeded simulated annealing with incremental
    delta costs — the engine for hosts where exact search is infeasible
    (1000+-node grids).  ``SEED`` defaults to 0, ``ITERS`` to
    :data:`repro.core.placers.anneal.DEFAULT_ITERATIONS`.
``anneal:SEED1,SEED2,...``
    Multi-restart portfolio: one independent anneal per listed seed from
    the same greedy seed placement, best row wins (cost ties broken by
    canonical node-index signature).  An optional second parameter still
    sets the per-restart iteration budget (``anneal:3,5,9x500``).

See ``docs/placers.md`` for when to use which and the determinism
contract.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.core.placers.anneal import (
    DEFAULT_ITERATIONS,
    AnnealPlacer,
    MultiRestartAnnealPlacer,
)
from repro.core.placers.base import Placer, WorkspacePlacer
from repro.core.placers.exact import ExactPlacer
from repro.core.placers.greedy import GreedyPlacer
from repro.exceptions import PlacementError
from repro.registry import PLACERS


def anneal_instance(
    seed: Union[int, Tuple[int, ...]] = 0,
    iterations: int = DEFAULT_ITERATIONS,
) -> WorkspacePlacer:
    """The ``anneal[:SEED[xITERS]]`` / ``anneal:S1,S2,...`` registry factory.

    A comma-list first parameter builds the multi-restart portfolio; a
    plain integer builds the single-trajectory annealer (bit-identical to
    what the spec built before the portfolio mode existed).
    """
    if isinstance(iterations, tuple):
        raise PlacementError(
            "the anneal iteration budget must be a single integer, "
            f"got the list {iterations!r}"
        )
    if isinstance(seed, tuple):
        return MultiRestartAnnealPlacer(seeds=seed, iterations=iterations)
    return AnnealPlacer(seed=seed, iterations=iterations)


PLACERS.add(
    "exact",
    ExactPlacer,
    description="exhaustive monomorphism search + fine tuning "
    "(the paper's engine; default)",
)
PLACERS.add(
    "greedy",
    GreedyPlacer,
    description="one-shot interaction-weight greedy seeding (cheap baseline)",
)
PLACERS.add(
    "anneal",
    anneal_instance,
    min_params=0,
    max_params=2,
    list_params=(0,),
    description="greedy-seeded deterministic simulated annealing "
    f"(optional seed or comma-list of restart seeds, default 0, and "
    f"iteration budget, default {DEFAULT_ITERATIONS})",
)

__all__ = [
    "Placer",
    "WorkspacePlacer",
    "ExactPlacer",
    "GreedyPlacer",
    "AnnealPlacer",
    "MultiRestartAnnealPlacer",
    "DEFAULT_ITERATIONS",
    "anneal_instance",
]
