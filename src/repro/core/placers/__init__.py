"""Pluggable placement engines (:data:`repro.registry.PLACERS`).

Importing this package registers the engine portfolio:

``exact``
    The paper's exhaustive monomorphism search + fine tuning — the
    default, bit-identical to every release before the registry existed.
``greedy``
    One-shot interaction-weight greedy seeding: no search tree, the
    cheap baseline and the annealer's initial mapping.
``anneal`` / ``anneal:SEED`` / ``anneal:SEEDxITERS``
    Deterministic greedy-seeded simulated annealing with incremental
    delta costs — the engine for hosts where exact search is infeasible
    (1000+-node grids).  ``SEED`` defaults to 0, ``ITERS`` to
    :data:`repro.core.placers.anneal.DEFAULT_ITERATIONS`.

See ``docs/placers.md`` for when to use which and the determinism
contract.
"""

from __future__ import annotations

from repro.core.placers.anneal import DEFAULT_ITERATIONS, AnnealPlacer
from repro.core.placers.base import Placer, WorkspacePlacer
from repro.core.placers.exact import ExactPlacer
from repro.core.placers.greedy import GreedyPlacer
from repro.registry import PLACERS


def anneal_instance(seed: int = 0, iterations: int = DEFAULT_ITERATIONS) -> AnnealPlacer:
    """The ``anneal[:SEED[xITERS]]`` registry factory."""
    return AnnealPlacer(seed=seed, iterations=iterations)


PLACERS.add(
    "exact",
    ExactPlacer,
    description="exhaustive monomorphism search + fine tuning "
    "(the paper's engine; default)",
)
PLACERS.add(
    "greedy",
    GreedyPlacer,
    description="one-shot interaction-weight greedy seeding (cheap baseline)",
)
PLACERS.add(
    "anneal",
    anneal_instance,
    min_params=0,
    max_params=2,
    description="greedy-seeded deterministic simulated annealing "
    f"(optional seed, default 0, and iteration budget, "
    f"default {DEFAULT_ITERATIONS})",
)

__all__ = [
    "Placer",
    "WorkspacePlacer",
    "ExactPlacer",
    "GreedyPlacer",
    "AnnealPlacer",
    "DEFAULT_ITERATIONS",
    "anneal_instance",
]
