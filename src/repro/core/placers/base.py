"""The pluggable placement-engine abstraction.

A :class:`Placer` turns a circuit + environment + options into the same
:class:`~repro.core.result.PlacementResult` the exact engine emits, so
every downstream surface — sweeps, shard files, the CLI, JSON reports —
works unchanged whichever engine produced the placement.  Engines are
addressed by :data:`repro.registry.PLACERS` spec strings
(``options.placer``); see ``docs/placers.md`` for the portfolio.

The shape follows qibo's ``Placer``/``Router`` ABCs (SNIPPETS.md
Snippet 3): a small abstract surface, concrete engines as subclasses.
:class:`WorkspacePlacer` is the shared skeleton for engines that plug
into the paper's workspace pipeline (:func:`repro.core.placement
.run_pipeline`): they only choose where one workspace's qubits go; the
threshold graph, workspace extraction, swap routing and assembly are
common code.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Qubit
from repro.core.config import DEFAULT_OPTIONS, PlacementOptions
from repro.core.result import PlacementResult
from repro.hardware.environment import Node, PhysicalEnvironment

Placement = Dict[Qubit, Node]


class Placer(ABC):
    """A placement engine: circuit + environment + options -> result.

    Attributes
    ----------
    name:
        The engine's registry name (``exact``, ``greedy``, ``anneal``).
    provides_multiple_candidates:
        Whether :meth:`~WorkspacePlacer.candidates` can return more than
        one scored placement per workspace.  The pipeline only runs the
        depth-2 lookahead for such engines — with a single candidate per
        workspace there is nothing to rank.
    """

    name: str = "abstract"
    provides_multiple_candidates: bool = True

    @abstractmethod
    def place(
        self,
        circuit: QuantumCircuit,
        environment: PhysicalEnvironment,
        options: Optional[PlacementOptions] = None,
    ) -> PlacementResult:
        """Place ``circuit`` into ``environment``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class WorkspacePlacer(Placer):
    """Base class for engines driving the shared workspace pipeline.

    Subclasses implement :meth:`workspace_candidates` — scored placements
    for one workspace with at least one two-qubit interaction.  Edgeless
    workspaces need no engine: every qubit just stays where the previous
    stage left it (completed deterministically), identically for every
    engine, so :meth:`candidates` handles them here.
    """

    def place(
        self,
        circuit: QuantumCircuit,
        environment: PhysicalEnvironment,
        options: Optional[PlacementOptions] = None,
    ) -> PlacementResult:
        from repro.core.placement import run_pipeline

        return run_pipeline(circuit, environment, options or DEFAULT_OPTIONS, self)

    def candidates(
        self,
        workspace,
        subcircuit: QuantumCircuit,
        circuit: QuantumCircuit,
        context,
        environment: PhysicalEnvironment,
        options: PlacementOptions,
        previous: Optional[Placement],
        evaluator,
    ) -> List[Tuple[Placement, float]]:
        """Scored candidate placements for one workspace, cheapest first."""
        from repro.core.placement import _complete_placement, _stage_runtime

        if workspace.interaction_graph.number_of_edges() == 0:
            placement = _complete_placement(
                circuit, dict(previous) if previous else {}, context, previous
            )
            runtime = _stage_runtime(
                subcircuit, placement, environment, options, evaluator
            )
            return [(placement, runtime)]
        return self.workspace_candidates(
            workspace, subcircuit, circuit, context, environment, options,
            previous, evaluator,
        )

    @abstractmethod
    def workspace_candidates(
        self,
        workspace,
        subcircuit: QuantumCircuit,
        circuit: QuantumCircuit,
        context,
        environment: PhysicalEnvironment,
        options: PlacementOptions,
        previous: Optional[Placement],
        evaluator,
    ) -> List[Tuple[Placement, float]]:
        """Scored placements for a workspace with two-qubit interactions."""
