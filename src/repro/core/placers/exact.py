"""The exact placement engine (the paper's exhaustive search; default).

Enumerates up to ``options.max_monomorphisms`` monomorphisms of the
workspace's interaction graph into the adjacency graph with the bitset
engine (:mod:`repro.core.monomorphism`), completes each to a full
placement and hill-climb fine tunes it.  This is the code path every
release before the placer registry ran unconditionally; it is unchanged
and stays the default, so outputs with ``placer="exact"`` (or no placer
at all) are bit-identical to before.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.placers.base import Placement, WorkspacePlacer


class ExactPlacer(WorkspacePlacer):
    """Exhaustive monomorphism enumeration + fine tuning (Section 5)."""

    name = "exact"
    provides_multiple_candidates = True

    def workspace_candidates(
        self,
        workspace,
        subcircuit,
        circuit,
        context,
        environment,
        options,
        previous: Optional[Placement],
        evaluator,
    ) -> List[Tuple[Placement, float]]:
        from repro.core.placement import _candidate_placements

        return _candidate_placements(
            workspace, subcircuit, circuit, context, environment, options,
            previous, evaluator,
        )
