"""The greedy placement engine: one-shot interaction-weight seeding.

Orders the workspace's interacting qubits highest-degree-first with a
connected frontier (the same ordering heuristic the exact engine's
monomorphism search uses) and assigns each to a physical node greedily:

* preferably a free node adjacent to *every* already-placed interaction
  partner, minimising the interaction-weighted edge delay to them — on
  hosts whose non-adjacent interactions are infinitely slow (the
  synthetic grid/chain architectures) this keeps the seed executable;
* otherwise the free node minimising the interaction-weighted hop
  distance to the placed partners;
* the first qubit (and any later disconnected one) takes the free node
  of highest host degree, keeping the frontier in the well-connected
  middle of the host.

Cost: one pass over the pattern with bitmask adjacency intersections —
no search tree.  If the greedy seed still schedules to an infinite
runtime (adjacency could not be satisfied everywhere), it falls back to
the first monomorphism, which workspace extraction guarantees to exist.

The result is used standalone (``placer="greedy"``: the cheap baseline)
and as the simulated annealer's initial mapping
(:mod:`repro.core.placers.anneal`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Qubit
from repro.core.monomorphism import _pattern_order, find_monomorphisms
from repro.core.placers.base import Placement, WorkspacePlacer
from repro.exceptions import PlacementError


def _interaction_weights(subcircuit: QuantumCircuit) -> Dict[Tuple[Qubit, Qubit], float]:
    """Total two-qubit gate duration per qubit pair (canonical key order)."""
    weights: Dict[Tuple[Qubit, Qubit], float] = {}
    for gate in subcircuit:
        if not gate.is_two_qubit:
            continue
        a, b = gate.qubits
        key = (a, b) if repr(a) <= repr(b) else (b, a)
        weights[key] = weights.get(key, 0.0) + gate.duration
    return weights


def _pair_weight(
    weights: Dict[Tuple[Qubit, Qubit], float], a: Qubit, b: Qubit
) -> float:
    key = (a, b) if repr(a) <= repr(b) else (b, a)
    return weights.get(key, 1.0)


def _iter_mask_nodes(mask: int, encoding):
    """The host nodes whose bits are set in ``mask``, in index order."""
    while mask:
        low = mask & -mask
        mask ^= low
        yield encoding.nodes[low.bit_length() - 1]


def greedy_seed_mapping(workspace, subcircuit: QuantumCircuit, context) -> Placement:
    """Greedy mapping of the workspace's interacting qubits to host nodes."""
    pattern = workspace.interaction_graph
    graph = context.graph
    encoding = context.host_encoding
    node_order = context.node_order
    weights = _interaction_weights(subcircuit)

    mapping: Placement = {}
    used_mask = 0
    for qubit in _pattern_order(pattern):
        placed = [nb for nb in pattern.neighbors(qubit) if nb in mapping]
        chosen = None
        if placed:
            adjacent_mask = encoding.full_mask & ~used_mask
            for nb in placed:
                adjacent_mask &= encoding.adjacency[encoding.index[mapping[nb]]]
            if adjacent_mask:
                best_key = None
                for node in _iter_mask_nodes(adjacent_mask, encoding):
                    cost = sum(
                        _pair_weight(weights, qubit, nb)
                        * graph[node][mapping[nb]].get("delay", 1.0)
                        for nb in placed
                    )
                    key = (cost, node_order[node])
                    if best_key is None or key < best_key:
                        best_key = key
                        chosen = node
            else:
                # No free node is adjacent to every placed partner; take
                # the free node closest (interaction-weighted hops) to them.
                distance_maps = [
                    (
                        _pair_weight(weights, qubit, nb),
                        context.distances_from(mapping[nb]),
                    )
                    for nb in placed
                ]
                best_key = None
                free_mask = encoding.full_mask & ~used_mask
                for node in _iter_mask_nodes(free_mask, encoding):
                    cost = sum(
                        weight * distances.get(node, math.inf)
                        for weight, distances in distance_maps
                    )
                    key = (cost, node_order[node])
                    if best_key is None or key < best_key:
                        best_key = key
                        chosen = node
        else:
            best_key = None
            free_mask = encoding.full_mask & ~used_mask
            for node in _iter_mask_nodes(free_mask, encoding):
                key = (-encoding.degree[encoding.index[node]], node_order[node])
                if best_key is None or key < best_key:
                    best_key = key
                    chosen = node
        if chosen is None:
            raise PlacementError(
                f"workspace {workspace.index}: ran out of free physical "
                "qubits while greedy-seeding"
            )
        mapping[qubit] = chosen
        used_mask |= 1 << encoding.index[chosen]
    return mapping


def greedy_candidate(
    workspace,
    subcircuit: QuantumCircuit,
    circuit: QuantumCircuit,
    context,
    environment,
    options,
    previous: Optional[Placement],
    evaluator,
) -> Tuple[Placement, float]:
    """The greedy seed completed to a full placement, with its runtime.

    Falls back to the first monomorphism when the greedy seed's schedule
    is infinitely slow (possible on hosts whose non-adjacent pairs have
    infinite delay when the seed could not keep every interaction
    adjacent) — extraction admitted the workspace, so one exists.
    """
    from repro.core.placement import _complete_placement, _stage_runtime

    mapping = greedy_seed_mapping(workspace, subcircuit, context)
    placement = _complete_placement(circuit, mapping, context, previous)
    runtime = _stage_runtime(subcircuit, placement, environment, options, evaluator)
    if math.isinf(runtime):
        monomorphisms = find_monomorphisms(
            workspace.interaction_graph,
            context.graph,
            max_count=1,
            host_encoding=context.host_encoding,
        )
        if not monomorphisms:
            raise PlacementError(
                f"workspace {workspace.index} has no monomorphism into the "
                "adjacency graph although extraction admitted it"
            )
        placement = _complete_placement(circuit, monomorphisms[0], context, previous)
        runtime = _stage_runtime(
            subcircuit, placement, environment, options, evaluator
        )
    return placement, runtime


class GreedyPlacer(WorkspacePlacer):
    """One-shot greedy seeding (cheap baseline; the annealer's seed)."""

    name = "greedy"
    provides_multiple_candidates = False

    def workspace_candidates(
        self,
        workspace,
        subcircuit,
        circuit,
        context,
        environment,
        options,
        previous: Optional[Placement],
        evaluator,
    ) -> List[Tuple[Placement, float]]:
        return [
            greedy_candidate(
                workspace, subcircuit, circuit, context, environment, options,
                previous, evaluator,
            )
        ]
