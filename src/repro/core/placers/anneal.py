"""The simulated-annealing placement engine (Enola-style, deterministic).

Refines the greedy seed (:mod:`repro.core.placers.greedy`) with a
fixed-budget simulated annealer in the style of Enola's
``SAPlacerPartial`` (SNIPPETS.md Snippet 1):

* **geometric temperature schedule** from ``T0 = 0.25 * seed cost`` down
  to ``T0 / 1000`` over the iteration budget;
* **moves**: pick a random interacting qubit, then either a host
  neighbour of one of its interaction partners' nodes (local move,
  3/4 of proposals — the only moves that keep interactions adjacent on
  hosts whose non-adjacent pairs are infinitely slow) or any host node
  (exploration); occupied targets swap occupants;
* **incremental delta cost** via the checkpointed
  :class:`~repro.timing.scheduler.RuntimeEvaluator`: each proposal
  re-schedules only the operations after the first one that touches a
  moved qubit, with an early-exit ``limit`` of ``current + 20 * T``
  (moves that expensive have acceptance probability < 2e-9, so cutting
  the replay short cannot change any acceptance decision);
* **uphill acceptance** with probability ``exp(-delta / T)``;
* **best-ever tracking** seeded with the greedy placement, so the
  annealer is never worse than its seed by construction.

Determinism: the RNG is a private :class:`random.Random` seeded from
SHA-256 of ``(spec seed, workspace index)`` — never the ``random``
module's global state — and every tie-break is value-ordered, so the
same ``anneal:SEEDxITERS`` spec yields the same placement regardless of
``PYTHONHASHSEED``, ``--jobs``, scheduler backend or shard layout.

:class:`MultiRestartAnnealPlacer` (spec ``anneal:SEED1,SEED2,...``) runs
one independent anneal per listed seed from the same greedy seed
placement and keeps the best row, with cost ties broken by the
placements' canonical node-index signatures — the portfolio mode for
hosts where a single annealing trajectory gets stuck.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core._bitset import canonical_order
from repro.core.placers.base import Placement, WorkspacePlacer
from repro.core.placers.greedy import greedy_candidate
from repro.core.stats import STATS
from repro.exceptions import PlacementError

#: Default iteration budget per workspace (the ITERS of ``anneal:SEEDxITERS``).
DEFAULT_ITERATIONS = 2000

#: Fraction of proposals drawn from a partner node's host neighbourhood.
_LOCAL_MOVE_FRACTION = 0.75

#: Early-exit margin: proposals costing more than ``current + 20 * T`` have
#: acceptance probability below exp(-20) ~ 2e-9 and are rejected unscored.
_LIMIT_TEMPERATURES = 20.0


def _derive_seed(seed: int, workspace_index: int) -> int:
    """A process-independent RNG seed for one workspace's anneal."""
    digest = hashlib.sha256(
        f"placer.anneal:{seed}:{workspace_index}".encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big")


class AnnealPlacer(WorkspacePlacer):
    """Greedy-seeded simulated annealing over one workspace's placement."""

    name = "anneal"
    provides_multiple_candidates = False

    def __init__(self, seed: int = 0, iterations: int = DEFAULT_ITERATIONS) -> None:
        if seed < 0:
            raise PlacementError(f"anneal seed must be non-negative, got {seed}")
        if iterations < 0:
            raise PlacementError(
                f"anneal iteration budget must be non-negative, got {iterations}"
            )
        self.seed = seed
        self.iterations = iterations

    def workspace_candidates(
        self,
        workspace,
        subcircuit,
        circuit,
        context,
        environment,
        options,
        previous: Optional[Placement],
        evaluator,
    ) -> List[Tuple[Placement, float]]:
        seed_placement, seed_runtime = greedy_candidate(
            workspace, subcircuit, circuit, context, environment, options,
            previous, evaluator,
        )
        movable = canonical_order(
            {q for gate in subcircuit if gate.is_two_qubit for q in gate.qubits}
        )
        if (
            not movable
            or self.iterations == 0
            or not math.isfinite(seed_runtime)
            or seed_runtime <= 0.0
        ):
            return [(seed_placement, seed_runtime)]
        best, best_cost = self._anneal(
            workspace, subcircuit, context, environment, options,
            seed_placement, seed_runtime, movable, evaluator,
        )
        return [(best, best_cost)]

    def _anneal(
        self,
        workspace,
        subcircuit,
        context,
        environment,
        options,
        seed_placement: Placement,
        seed_runtime: float,
        movable,
        evaluator,
    ) -> Tuple[Placement, float]:
        from repro.core.placement import _stage_runtime

        rng = random.Random(_derive_seed(self.seed, workspace.index))
        pattern = workspace.interaction_graph
        node_order = context.node_order
        allowed = list(context.graph.nodes())
        partners = {
            qubit: canonical_order(pattern.neighbors(qubit))
            for qubit in movable
            if qubit in pattern
        }
        neighbour_cache: Dict = {}

        def host_neighbours(node):
            cached = neighbour_cache.get(node)
            if cached is None:
                cached = sorted(
                    context.graph.neighbors(node), key=node_order.__getitem__
                )
                neighbour_cache[node] = cached
            return cached

        current = dict(seed_placement)
        current_cost = seed_runtime
        best = dict(seed_placement)
        best_cost = seed_runtime
        node_to_qubit = {node: q for q, node in current.items()}
        if evaluator is not None:
            evaluator.set_base(current)

        t0 = 0.25 * seed_runtime
        t_end = t0 * 1e-3
        alpha = (
            (t_end / t0) ** (1.0 / (self.iterations - 1))
            if self.iterations > 1
            else 1.0
        )
        temperature = t0
        accepted = rejected = delta_evals = 0

        for _ in range(self.iterations):
            qubit = movable[rng.randrange(len(movable))]
            current_node = current[qubit]
            qubit_partners = partners.get(qubit)
            target = None
            if qubit_partners and rng.random() < _LOCAL_MOVE_FRACTION:
                anchor = current[
                    qubit_partners[rng.randrange(len(qubit_partners))]
                ]
                neighbours = host_neighbours(anchor)
                if neighbours:
                    target = neighbours[rng.randrange(len(neighbours))]
            if target is None:
                target = allowed[rng.randrange(len(allowed))]
            if target == current_node:
                rejected += 1
                temperature *= alpha
                continue
            occupant = node_to_qubit.get(target)
            if occupant is None:
                overrides = {qubit: target}
            else:
                overrides = {qubit: target, occupant: current_node}
            delta_evals += 1
            if evaluator is not None:
                value = evaluator.runtime_with(
                    overrides,
                    limit=current_cost + _LIMIT_TEMPERATURES * temperature,
                )
            else:
                candidate = dict(current)
                candidate.update(overrides)
                value = _stage_runtime(
                    subcircuit, candidate, environment, options, None
                )
            accept = value <= current_cost
            if not accept and math.isfinite(value):
                accept = rng.random() < math.exp(
                    -(value - current_cost) / temperature
                )
            if accept:
                current.update(overrides)
                node_to_qubit[target] = qubit
                if occupant is None:
                    del node_to_qubit[current_node]
                else:
                    node_to_qubit[current_node] = occupant
                current_cost = value
                if evaluator is not None:
                    evaluator.set_base(current)
                if value < best_cost:
                    best = dict(current)
                    best_cost = value
                accepted += 1
            else:
                rejected += 1
            temperature *= alpha

        if evaluator is not None:
            evaluator.flush_stats()
        STATS.increment("placer.anneal_steps", self.iterations)
        STATS.increment("placer.moves_accepted", accepted)
        STATS.increment("placer.moves_rejected", rejected)
        STATS.increment("placer.delta_evals", delta_evals)
        return best, best_cost


class MultiRestartAnnealPlacer(WorkspacePlacer):
    """Best-of-N annealing restarts: ``anneal:SEED1,SEED2,...``.

    Runs one independent :class:`AnnealPlacer` anneal per listed seed over
    the *same* greedy seed placement (computed once per workspace) and
    keeps the best row.  Ties on cost break deterministically by the
    placements' node-index signatures in :func:`canonical_order` — never
    by seed-list order combined with float luck in some hash-dependent
    direction — so the same spec yields the same placement regardless of
    ``PYTHONHASHSEED``, worker count, scheduler backend or shard layout.
    The restart loop is never worse than a single restart of any listed
    seed by construction.
    """

    name = "anneal"
    provides_multiple_candidates = False

    def __init__(
        self,
        seeds: Sequence[int],
        iterations: int = DEFAULT_ITERATIONS,
    ) -> None:
        if not seeds:
            raise PlacementError("anneal needs at least one restart seed")
        # Each restart is a full AnnealPlacer, so seed/iteration validation
        # happens here, at spec-build time, not mid-run.
        self._restarts = tuple(
            AnnealPlacer(seed=seed, iterations=iterations) for seed in seeds
        )
        self.seeds = tuple(seeds)
        self.iterations = iterations

    def workspace_candidates(
        self,
        workspace,
        subcircuit,
        circuit,
        context,
        environment,
        options,
        previous: Optional[Placement],
        evaluator,
    ) -> List[Tuple[Placement, float]]:
        seed_placement, seed_runtime = greedy_candidate(
            workspace, subcircuit, circuit, context, environment, options,
            previous, evaluator,
        )
        movable = canonical_order(
            {q for gate in subcircuit if gate.is_two_qubit for q in gate.qubits}
        )
        if (
            not movable
            or self.iterations == 0
            or not math.isfinite(seed_runtime)
            or seed_runtime <= 0.0
        ):
            return [(seed_placement, seed_runtime)]
        node_order = context.node_order
        best: Optional[Placement] = None
        best_cost = math.inf
        best_signature: Tuple[int, ...] = ()
        for restart in self._restarts:
            placement, cost = restart._anneal(
                workspace, subcircuit, context, environment, options,
                seed_placement, seed_runtime, movable, evaluator,
            )
            signature = tuple(
                node_order[placement[qubit]]
                for qubit in canonical_order(placement)
            )
            if best is None or (cost, signature) < (best_cost, best_signature):
                best = placement
                best_cost = cost
                best_signature = signature
        STATS.increment("placer.anneal_restarts", len(self._restarts))
        assert best is not None
        return [(best, best_cost)]
