"""Subgraph monomorphism enumeration (the VFLib role of the original code).

The original implementation used the VFLib graph matching library to align a
subcircuit's interaction graph with the adjacency graph of fast physical
interactions.  This module provides a self-contained backtracking enumerator
with the same contract:

* a *monomorphism* is an injective map from pattern nodes to host nodes that
  sends every pattern edge to a host edge (the host may have extra edges —
  this is subgraph monomorphism, not induced-subgraph isomorphism);
* enumeration is capped (the paper uses ``k = 100`` candidate mappings per
  workspace) and deterministic, so experiments are reproducible.

The search itself runs over integer bitmasks (:mod:`repro.core._bitset`):
the host is relabelled to contiguous ints once (and cached per graph), its
adjacency is stored as one Python-int mask per node, and every backtracking
step computes the candidate set for the next pattern node with a handful of
``&`` operations instead of a ``for host_node in host_nodes`` scan with
``has_edge`` calls.  Per-pattern-node candidate *domains* are precomputed
from two sound necessary conditions — host degree at least the pattern
degree, and the host neighbourhood's degree multiset dominating the pattern
neighbourhood's — so impossible candidates never enter the search at all.

Both prunings only remove host nodes that cannot appear in *any* complete
monomorphism, and candidate bits are visited lowest-index-first, i.e. in
the canonical ``repr``-sorted host order; the sequence of yielded mappings
is therefore exactly the one the original scan-based enumerator produced
(property-tested in ``tests/test_monomorphism_equivalence.py``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional

import networkx as nx

from repro.core._bitset import HostEncoding, encode_host, iter_bits, node_index_table
from repro.core.stats import STATS
from repro.exceptions import MonomorphismError

Node = Hashable
Mapping_ = Dict[Node, Node]


def _pattern_order(pattern: nx.Graph) -> List[Node]:
    """Order pattern nodes: highest degree first, then keep the frontier connected."""
    if pattern.number_of_nodes() == 0:
        return []
    remaining = set(pattern.nodes())
    node_order = node_index_table(remaining)
    order: List[Node] = []
    # Start from the highest-degree node (ties broken deterministically).
    start = max(remaining, key=lambda n: (pattern.degree(n), node_order[n]))
    order.append(start)
    remaining.remove(start)
    while remaining:
        frontier = [
            node
            for node in remaining
            if any(neighbour in order for neighbour in pattern.neighbors(node))
        ]
        pool = frontier if frontier else list(remaining)
        nxt = max(
            pool,
            key=lambda n: (
                sum(1 for nb in pattern.neighbors(n) if nb in order),
                pattern.degree(n),
                node_order[n],
            ),
        )
        order.append(nxt)
        remaining.remove(nxt)
    return order


def _candidate_domains(
    pattern: nx.Graph,
    order: List[Node],
    host: HostEncoding,
) -> List[int]:
    """Per-position candidate masks from sound degree-based pruning.

    A host node can only be the image of pattern node ``p`` if its degree is
    at least ``deg(p)`` and if, matching neighbourhoods greedily by degree,
    its ``t``-th best neighbour is at least as connected as ``p``'s ``t``-th
    best neighbour (every pattern neighbour must map to a *distinct* host
    neighbour of no smaller degree).  Both conditions are necessary for
    membership in a complete monomorphism, so filtering by them cannot drop
    or reorder any yielded mapping.
    """
    degree = host.degree
    neighbor_degrees = host.neighbor_degrees
    count = host.num_nodes
    domains: List[int] = []
    for pattern_node in order:
        pattern_degree = pattern.degree(pattern_node)
        pattern_profile = sorted(
            (pattern.degree(nb) for nb in pattern.neighbors(pattern_node)),
            reverse=True,
        )
        mask = 0
        for i in range(count):
            if degree[i] < pattern_degree:
                continue
            host_profile = neighbor_degrees[i]
            if any(
                host_profile[t] < pattern_profile[t]
                for t in range(pattern_degree)
            ):
                continue
            mask |= 1 << i
        domains.append(mask)
    return domains


def iter_monomorphisms(
    pattern: nx.Graph,
    host: nx.Graph,
    max_count: Optional[int] = None,
    host_encoding: Optional[HostEncoding] = None,
) -> Iterator[Mapping_]:
    """Yield injective pattern-to-host maps preserving pattern edges.

    Parameters
    ----------
    pattern:
        The (small) graph to embed — a subcircuit's interaction graph.
    host:
        The (larger) graph to embed into — the adjacency graph.
    max_count:
        Stop after yielding this many mappings (``None`` = unbounded).
    host_encoding:
        Optional precomputed :class:`~repro.core._bitset.HostEncoding` of
        ``host``; callers embedding many patterns into one host (workspace
        extraction, candidate placement) pass it to skip the per-call cache
        lookup entirely.
    """
    if max_count is not None and max_count <= 0:
        return
    if pattern.number_of_nodes() > host.number_of_nodes():
        return
    order = _pattern_order(pattern)
    positions = len(order)
    if positions == 0:
        STATS.increment("monomorphism.searches")
        STATS.increment("monomorphism.mappings_yielded")
        yield {}
        return

    encoding = host_encoding if host_encoding is not None else encode_host(host)
    domains = _candidate_domains(pattern, order, encoding)
    # For each position, the earlier positions holding its pattern neighbours
    # (the adjacency constraints active when this position is assigned).
    position_of = {node: position for position, node in enumerate(order)}
    anchors: List[List[int]] = [
        sorted(
            position_of[nb]
            for nb in pattern.neighbors(order[position])
            if position_of[nb] < position
        )
        for position in range(positions)
    ]

    host_nodes = encoding.nodes
    adjacency = encoding.adjacency
    last = positions - 1

    images = [0] * positions  # host bit index chosen at each position
    available = [0] * positions  # still-untried candidate masks per position
    available[0] = domains[0]
    used = 0
    position = 0
    yielded = 0
    explored = 0

    try:
        while True:
            mask = available[position]
            if mask:
                low_bit = mask & -mask
                available[position] = mask ^ low_bit
                bit_index = low_bit.bit_length() - 1
                explored += 1
                images[position] = bit_index
                if position == last:
                    yielded += 1
                    yield {
                        order[p]: host_nodes[images[p]] for p in range(positions)
                    }
                    if max_count is not None and yielded >= max_count:
                        return
                    continue  # next candidate at the same position
                used |= low_bit
                position += 1
                candidate_mask = domains[position] & ~used
                for anchor in anchors[position]:
                    candidate_mask &= adjacency[images[anchor]]
                available[position] = candidate_mask
            else:
                position -= 1
                if position < 0:
                    return
                used &= ~(1 << images[position])
    finally:
        STATS.increment("monomorphism.searches")
        STATS.increment("monomorphism.nodes_explored", explored)
        STATS.increment("monomorphism.mappings_yielded", yielded)


def find_monomorphisms(
    pattern: nx.Graph,
    host: nx.Graph,
    max_count: int = 100,
    host_encoding: Optional[HostEncoding] = None,
) -> List[Mapping_]:
    """Collect up to ``max_count`` monomorphisms (the paper's ``k``)."""
    return list(
        iter_monomorphisms(
            pattern, host, max_count=max_count, host_encoding=host_encoding
        )
    )


def has_monomorphism(
    pattern: nx.Graph,
    host: nx.Graph,
    host_encoding: Optional[HostEncoding] = None,
) -> bool:
    """Whether at least one monomorphism exists."""
    for _ in iter_monomorphisms(
        pattern, host, max_count=1, host_encoding=host_encoding
    ):
        return True
    return pattern.number_of_nodes() == 0


def first_monomorphism(pattern: nx.Graph, host: nx.Graph) -> Mapping_:
    """The first monomorphism in enumeration order; raises if none exists."""
    for mapping in iter_monomorphisms(pattern, host, max_count=1):
        return mapping
    if pattern.number_of_nodes() == 0:
        return {}
    raise MonomorphismError(
        f"no monomorphism of a {pattern.number_of_nodes()}-node pattern into a "
        f"{host.number_of_nodes()}-node host exists"
    )


def count_monomorphisms(
    pattern: nx.Graph,
    host: nx.Graph,
    limit: Optional[int] = None,
) -> int:
    """Number of monomorphisms, optionally stopping at ``limit``."""
    count = 0
    for _ in iter_monomorphisms(pattern, host, max_count=limit):
        count += 1
    return count


def verify_monomorphism(pattern: nx.Graph, host: nx.Graph, mapping: Mapping_) -> bool:
    """Check that ``mapping`` really is an injective edge-preserving map."""
    if set(mapping.keys()) != set(pattern.nodes()):
        return False
    images = list(mapping.values())
    if len(set(images)) != len(images):
        return False
    if any(image not in host for image in images):
        return False
    return all(host.has_edge(mapping[a], mapping[b]) for a, b in pattern.edges())
