"""Subgraph monomorphism enumeration (the VFLib role of the original code).

The original implementation used the VFLib graph matching library to align a
subcircuit's interaction graph with the adjacency graph of fast physical
interactions.  This module provides a self-contained VF2-style backtracking
enumerator with the same contract:

* a *monomorphism* is an injective map from pattern nodes to host nodes that
  sends every pattern edge to a host edge (the host may have extra edges —
  this is subgraph monomorphism, not induced-subgraph isomorphism);
* enumeration is capped (the paper uses ``k = 100`` candidate mappings per
  workspace) and deterministic, so experiments are reproducible.

The enumerator orders pattern nodes most-constrained-first (connected to
already-matched nodes, then by degree) and prunes candidates by degree and by
adjacency consistency with the partial map, which is entirely sufficient for
the molecule-sized and chain-sized hosts used in the paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Sequence

import networkx as nx

from repro.exceptions import MonomorphismError

Node = Hashable
Mapping_ = Dict[Node, Node]


def _pattern_order(pattern: nx.Graph) -> List[Node]:
    """Order pattern nodes: highest degree first, then keep the frontier connected."""
    if pattern.number_of_nodes() == 0:
        return []
    remaining = set(pattern.nodes())
    order: List[Node] = []
    # Start from the highest-degree node (ties broken deterministically).
    start = max(remaining, key=lambda n: (pattern.degree(n), repr(n)))
    order.append(start)
    remaining.remove(start)
    while remaining:
        frontier = [
            node
            for node in remaining
            if any(neighbour in order for neighbour in pattern.neighbors(node))
        ]
        pool = frontier if frontier else list(remaining)
        nxt = max(
            pool,
            key=lambda n: (
                sum(1 for nb in pattern.neighbors(n) if nb in order),
                pattern.degree(n),
                repr(n),
            ),
        )
        order.append(nxt)
        remaining.remove(nxt)
    return order


def iter_monomorphisms(
    pattern: nx.Graph,
    host: nx.Graph,
    max_count: Optional[int] = None,
) -> Iterator[Mapping_]:
    """Yield injective pattern-to-host maps preserving pattern edges.

    Parameters
    ----------
    pattern:
        The (small) graph to embed — a subcircuit's interaction graph.
    host:
        The (larger) graph to embed into — the adjacency graph.
    max_count:
        Stop after yielding this many mappings (``None`` = unbounded).
    """
    if pattern.number_of_nodes() > host.number_of_nodes():
        return
    order = _pattern_order(pattern)
    host_nodes = sorted(host.nodes(), key=repr)
    host_degree = dict(host.degree())
    pattern_degree = dict(pattern.degree())

    yielded = 0
    assignment: Mapping_ = {}
    used_hosts: set = set()

    def backtrack(position: int) -> Iterator[Mapping_]:
        nonlocal yielded
        if max_count is not None and yielded >= max_count:
            return
        if position == len(order):
            yielded += 1
            yield dict(assignment)
            return
        pattern_node = order[position]
        mapped_neighbours = [
            assignment[nb]
            for nb in pattern.neighbors(pattern_node)
            if nb in assignment
        ]
        for host_node in host_nodes:
            if host_node in used_hosts:
                continue
            if host_degree.get(host_node, 0) < pattern_degree.get(pattern_node, 0):
                continue
            if any(not host.has_edge(host_node, image) for image in mapped_neighbours):
                continue
            assignment[pattern_node] = host_node
            used_hosts.add(host_node)
            yield from backtrack(position + 1)
            del assignment[pattern_node]
            used_hosts.remove(host_node)
            if max_count is not None and yielded >= max_count:
                return

    yield from backtrack(0)


def find_monomorphisms(
    pattern: nx.Graph,
    host: nx.Graph,
    max_count: int = 100,
) -> List[Mapping_]:
    """Collect up to ``max_count`` monomorphisms (the paper's ``k``)."""
    return list(iter_monomorphisms(pattern, host, max_count=max_count))


def has_monomorphism(pattern: nx.Graph, host: nx.Graph) -> bool:
    """Whether at least one monomorphism exists."""
    for _ in iter_monomorphisms(pattern, host, max_count=1):
        return True
    return pattern.number_of_nodes() == 0


def first_monomorphism(pattern: nx.Graph, host: nx.Graph) -> Mapping_:
    """The first monomorphism in enumeration order; raises if none exists."""
    for mapping in iter_monomorphisms(pattern, host, max_count=1):
        return mapping
    if pattern.number_of_nodes() == 0:
        return {}
    raise MonomorphismError(
        f"no monomorphism of a {pattern.number_of_nodes()}-node pattern into a "
        f"{host.number_of_nodes()}-node host exists"
    )


def count_monomorphisms(
    pattern: nx.Graph,
    host: nx.Graph,
    limit: Optional[int] = None,
) -> int:
    """Number of monomorphisms, optionally stopping at ``limit``."""
    count = 0
    for _ in iter_monomorphisms(pattern, host, max_count=limit):
        count += 1
    return count


def verify_monomorphism(pattern: nx.Graph, host: nx.Graph, mapping: Mapping_) -> bool:
    """Check that ``mapping`` really is an injective edge-preserving map."""
    if set(mapping.keys()) != set(pattern.nodes()):
        return False
    images = list(mapping.values())
    if len(set(images)) != len(images):
        return False
    if any(image not in host for image in images):
        return False
    return all(host.has_edge(mapping[a], mapping[b]) for a, b in pattern.edges())
