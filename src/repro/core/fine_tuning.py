"""Hill-climbing fine tuning of a workspace placement.

After a monomorphism fixes where the interacting qubits go, the paper's fine
tuning step "shuffles the solution taking the actual numbers that represent
the length of each gate (including single qubit gates) into account": for
every qubit that takes part in a two-qubit gate of the workspace, try every
alternative physical node (moving to a free node, or swapping with the qubit
currently there) and keep the change whenever the scheduled runtime improves.
The sweep is repeated until no improvement is found or a round budget is
exhausted.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Qubit
from repro.hardware.environment import Node, PhysicalEnvironment
from repro.timing.scheduler import circuit_runtime

Placement = Dict[Qubit, Node]
CostFunction = Callable[[Placement], float]


def default_cost_function(
    subcircuit: QuantumCircuit,
    environment: PhysicalEnvironment,
    apply_interaction_cap: bool = True,
) -> CostFunction:
    """Cost of a placement = scheduled runtime of the workspace subcircuit."""

    def cost(placement: Placement) -> float:
        return circuit_runtime(
            subcircuit,
            placement,
            environment,
            apply_interaction_cap=apply_interaction_cap,
            validate=False,
        )

    return cost


def _candidate_moves(
    placement: Placement,
    qubit: Qubit,
    allowed_nodes: Sequence[Node],
) -> Iterable[Placement]:
    """All placements reachable by re-assigning ``qubit`` to another node."""
    current_node = placement[qubit]
    node_to_qubit = {node: q for q, node in placement.items()}
    for node in allowed_nodes:
        if node == current_node:
            continue
        candidate = dict(placement)
        occupant = node_to_qubit.get(node)
        candidate[qubit] = node
        if occupant is not None:
            candidate[occupant] = current_node
        yield candidate


def hill_climb(
    placement: Placement,
    cost_function: CostFunction,
    movable_qubits: Sequence[Qubit],
    allowed_nodes: Sequence[Node],
    max_rounds: int = 10,
) -> Tuple[Placement, float]:
    """Greedy improvement of ``placement`` by single-qubit reassignments.

    Returns the improved placement and its cost.  The search accepts the
    first improving move per qubit (matching the paper's description: "if it
    is [better], change the way qubit q_i is placed, otherwise move on to the
    next qubit") and sweeps until a full round makes no change or the round
    budget runs out.
    """
    best = dict(placement)
    best_cost = cost_function(best)
    for _ in range(max_rounds):
        improved = False
        for qubit in movable_qubits:
            for candidate in _candidate_moves(best, qubit, allowed_nodes):
                candidate_cost = cost_function(candidate)
                if candidate_cost < best_cost:
                    best = candidate
                    best_cost = candidate_cost
                    improved = True
                    break
        if not improved:
            break
    return best, best_cost


def fine_tune_workspace_placement(
    subcircuit: QuantumCircuit,
    placement: Placement,
    environment: PhysicalEnvironment,
    allowed_nodes: Sequence[Node],
    apply_interaction_cap: bool = True,
    max_rounds: int = 10,
    extra_cost: Optional[CostFunction] = None,
) -> Tuple[Placement, float]:
    """Fine tune a workspace placement with the default runtime cost.

    ``extra_cost`` (e.g. an incoming swap-stage estimate) is added to the
    runtime so that fine tuning does not wander away from cheap-to-reach
    placements.
    """
    movable: List[Qubit] = sorted(
        {q for gate in subcircuit if gate.is_two_qubit for q in gate.qubits},
        key=repr,
    )
    if not movable:
        movable = list(subcircuit.used_qubits())
    base_cost = default_cost_function(
        subcircuit, environment, apply_interaction_cap=apply_interaction_cap
    )
    if extra_cost is None:
        cost = base_cost
    else:
        def cost(candidate: Placement) -> float:
            return base_cost(candidate) + extra_cost(candidate)

    return hill_climb(
        placement,
        cost,
        movable_qubits=movable,
        allowed_nodes=list(allowed_nodes),
        max_rounds=max_rounds,
    )
