"""Hill-climbing fine tuning of a workspace placement.

After a monomorphism fixes where the interacting qubits go, the paper's fine
tuning step "shuffles the solution taking the actual numbers that represent
the length of each gate (including single qubit gates) into account": for
every qubit that takes part in a two-qubit gate of the workspace, try every
alternative physical node (moving to a free node, or swapping with the qubit
currently there) and keep the change whenever the scheduled runtime improves.
The sweep is repeated until no improvement is found or a round budget is
exhausted.

Two execution paths implement the same search:

* the generic :func:`hill_climb`, which accepts an arbitrary cost function
  and re-evaluates every candidate placement from scratch;
* the incremental path used by the placer, driven by a
  :class:`~repro.timing.scheduler.RuntimeEvaluator` — each candidate move
  re-schedules only the operations after the first one that touches a moved
  qubit, reusing recorded busy-time checkpoints and per-operation durations
  for the untouched prefix.

Both paths enumerate candidates in the same order and accept the first
improving move, and the incremental evaluator is bit-for-bit equal to a full
evaluation (``full_recompute=True`` asserts this on every step), so they
return identical placements.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Qubit
from repro.core._bitset import canonical_order
from repro.hardware.environment import Node, PhysicalEnvironment
from repro.timing.scheduler import RuntimeEvaluator, circuit_runtime

Placement = Dict[Qubit, Node]
CostFunction = Callable[[Placement], float]


def default_cost_function(
    subcircuit: QuantumCircuit,
    environment: PhysicalEnvironment,
    apply_interaction_cap: bool = True,
) -> CostFunction:
    """Cost of a placement = scheduled runtime of the workspace subcircuit."""

    def cost(placement: Placement) -> float:
        return circuit_runtime(
            subcircuit,
            placement,
            environment,
            apply_interaction_cap=apply_interaction_cap,
            validate=False,
        )

    return cost


def _candidate_moves(
    placement: Placement,
    qubit: Qubit,
    allowed_nodes: Sequence[Node],
) -> Iterable[Placement]:
    """All placements reachable by re-assigning ``qubit`` to another node."""
    current_node = placement[qubit]
    node_to_qubit = {node: q for q, node in placement.items()}
    for node in allowed_nodes:
        if node == current_node:
            continue
        candidate = dict(placement)
        occupant = node_to_qubit.get(node)
        candidate[qubit] = node
        if occupant is not None:
            candidate[occupant] = current_node
        yield candidate


def hill_climb(
    placement: Placement,
    cost_function: CostFunction,
    movable_qubits: Sequence[Qubit],
    allowed_nodes: Sequence[Node],
    max_rounds: int = 10,
) -> Tuple[Placement, float]:
    """Greedy improvement of ``placement`` by single-qubit reassignments.

    Returns the improved placement and its cost.  The search accepts the
    first improving move per qubit (matching the paper's description: "if it
    is [better], change the way qubit q_i is placed, otherwise move on to the
    next qubit") and sweeps until a full round makes no change or the round
    budget runs out.
    """
    best = dict(placement)
    best_cost = cost_function(best)
    for _ in range(max_rounds):
        improved = False
        for qubit in movable_qubits:
            for candidate in _candidate_moves(best, qubit, allowed_nodes):
                candidate_cost = cost_function(candidate)
                if candidate_cost < best_cost:
                    best = candidate
                    best_cost = candidate_cost
                    improved = True
                    break
        if not improved:
            break
    return best, best_cost


def hill_climb_incremental(
    placement: Placement,
    evaluator: RuntimeEvaluator,
    movable_qubits: Sequence[Qubit],
    allowed_nodes: Sequence[Node],
    max_rounds: int = 10,
    extra_cost: Optional[CostFunction] = None,
) -> Tuple[Placement, float]:
    """The same greedy search as :func:`hill_climb`, with delta-cost moves.

    Candidate moves are scored through ``evaluator.runtime_with`` — a swap
    of two qubits re-schedules only the levels after the first affected
    operation — instead of a full :func:`circuit_runtime` per candidate.
    Enumeration order and the first-improvement acceptance rule are exactly
    those of :func:`hill_climb`, and the evaluator's incremental results are
    bitwise equal to full evaluations, so both searches land on the same
    placement at the same cost.
    """
    best = dict(placement)
    best_cost = evaluator.set_base(best)
    if extra_cost is not None:
        best_cost += extra_cost(best)
    for _ in range(max_rounds):
        improved = False
        for qubit in movable_qubits:
            current_node = best[qubit]
            node_to_qubit = {node: q for q, node in best.items()}
            for node in allowed_nodes:
                if node == current_node:
                    continue
                occupant = node_to_qubit.get(node)
                if occupant is None:
                    overrides = {qubit: node}
                else:
                    overrides = {qubit: node, occupant: current_node}
                if extra_cost is None:
                    # Rejected moves only need to be known to be >= the
                    # incumbent, so the evaluator may stop scheduling early.
                    candidate_cost = evaluator.runtime_with(
                        overrides, limit=best_cost
                    )
                else:
                    candidate_cost = evaluator.runtime_with(overrides)
                    candidate = dict(best)
                    candidate.update(overrides)
                    candidate_cost += extra_cost(candidate)
                if candidate_cost < best_cost:
                    best.update(overrides)
                    evaluator.set_base(best)
                    best_cost = candidate_cost
                    improved = True
                    break
        if not improved:
            break
    evaluator.flush_stats()
    return best, best_cost


def fine_tune_workspace_placement(
    subcircuit: QuantumCircuit,
    placement: Placement,
    environment: PhysicalEnvironment,
    allowed_nodes: Sequence[Node],
    apply_interaction_cap: bool = True,
    max_rounds: int = 10,
    extra_cost: Optional[CostFunction] = None,
    evaluator: Optional[RuntimeEvaluator] = None,
    full_recompute: bool = False,
    backend: str = "auto",
) -> Tuple[Placement, float]:
    """Fine tune a workspace placement with the default runtime cost.

    ``extra_cost`` (e.g. an incoming swap-stage estimate) is added to the
    runtime so that fine tuning does not wander away from cheap-to-reach
    placements.  ``evaluator`` lets the placer share one compiled
    :class:`~repro.timing.scheduler.RuntimeEvaluator` across the many
    candidate monomorphisms of a workspace (its backend wins over the
    ``backend`` argument, which only configures a locally built evaluator);
    ``full_recompute`` turns on the evaluator's parity assertion (every
    incremental cost is checked against a from-scratch evaluation — a
    debugging aid, not a production mode).
    """
    movable: List[Qubit] = canonical_order(
        {q for gate in subcircuit if gate.is_two_qubit for q in gate.qubits}
    )
    if not movable:
        movable = list(subcircuit.used_qubits())
    if evaluator is None:
        evaluator = RuntimeEvaluator(
            subcircuit,
            environment,
            apply_interaction_cap=apply_interaction_cap,
            full_recompute=full_recompute,
            backend=backend,
        )
    elif full_recompute:
        evaluator.full_recompute = True

    return hill_climb_incremental(
        placement,
        evaluator,
        movable_qubits=movable,
        allowed_nodes=list(allowed_nodes),
        max_rounds=max_rounds,
        extra_cost=extra_cost,
    )
