"""Lightweight global performance counters for the placement engine.

The hot paths of the placer (monomorphism search, adjacency-graph caching,
incremental cost evaluation) report what they did through a single global
:class:`Counters` registry so that benchmarks — and curious users — can see
*why* a run was fast or slow: how many search-tree nodes the monomorphism
enumerator visited, how often the environment's adjacency cache hit, and how
much scheduling work the incremental evaluator skipped.

Counting is deliberately simple: plain integer counters behind plain
attribute-free function calls, with hot loops expected to accumulate locally
and flush once (see :mod:`repro.core.monomorphism`), so the instrumentation
itself stays off the profile.

Counters are process-local.  Multi-process experiment runs (see
:mod:`repro.analysis.runner`) take a :meth:`Counters.snapshot` around each
cell inside the worker, ship the plain-dict delta back with the result, and
:meth:`Counters.merge` it into the parent registry — so ``STATS`` in the
coordinating process reports the aggregate work of the whole run, not just
the parent's share.

Counter names used by the engine
--------------------------------

``monomorphism.searches``
    Number of enumeration runs (one per ``iter_monomorphisms`` exhaustion).
``monomorphism.nodes_explored``
    Search-tree nodes visited (candidate assignments tried).
``monomorphism.mappings_yielded``
    Complete mappings produced.
``monomorphism.host_encodings``
    Bitset host encodings built (cache misses of the host-encoding cache).
``monomorphism.host_encoding_hits``
    Host encodings reused from the cache.
``environment.adjacency_cache_hits`` / ``environment.adjacency_cache_misses``
    Reuse vs. construction of per-threshold adjacency graphs.
``environment.component_cache_hits`` / ``environment.component_cache_misses``
    Reuse vs. construction of per-threshold largest-component subgraphs.
``scheduler.full_evals`` / ``scheduler.incremental_evals``
    Full-circuit versus delta cost evaluations.
``placer.anneal_steps``
    Simulated-annealing iterations run (:mod:`repro.core.placers.anneal`;
    the configured budget, summed over workspaces).
``placer.moves_accepted`` / ``placer.moves_rejected``
    Annealing move proposals accepted (downhill or uphill-by-luck)
    versus rejected (including no-op proposals).
``placer.delta_evals``
    Annealing move proposals actually scored (delta-cost evaluations;
    no-op proposals are rejected unscored).
``scheduler.ops_replayed`` / ``scheduler.ops_skipped``
    Scheduled operations re-executed versus skipped by checkpoint restore.
``cells_retried`` / ``cells_timed_out`` / ``cells_failed``
    Fault-tolerance counters (:mod:`repro.analysis.resilience`): cell
    attempts re-scheduled after a failure, attempts killed for exceeding
    the per-cell timeout, and cells that exhausted every attempt and were
    recorded as :class:`~repro.analysis.resilience.FailedOutcome` rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional


class Counters:
    """A named-counter registry (monotonic integers, explicit reset)."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of ``name`` (zero if never incremented)."""
        return self._counts.get(name, 0)

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, int]:
        """A copy of all counters, optionally restricted to a name prefix."""
        if prefix is None:
            return dict(self._counts)
        return {k: v for k, v in self._counts.items() if k.startswith(prefix)}

    def reset(self, names: Optional[Iterable[str]] = None) -> None:
        """Reset the given counters (all of them when ``names`` is ``None``)."""
        if names is None:
            self._counts.clear()
            return
        for name in names:
            self._counts.pop(name, None)

    def hit_rate(self, hits: str, misses: str) -> Optional[float]:
        """``hits / (hits + misses)`` or ``None`` when nothing was counted."""
        h = self.get(hits)
        m = self.get(misses)
        total = h + m
        if total == 0:
            return None
        return h / total

    def merge(self, counts: Mapping[str, int]) -> None:
        """Add a counter snapshot (e.g. a worker's delta) into this registry.

        Merging is plain per-name addition, so folding worker deltas in any
        completion order yields the same totals — the property the parallel
        experiment runner relies on for deterministic aggregate counters.
        """
        for name, value in counts.items():
            if value:
                self._counts[name] = self._counts.get(name, 0) + value

    def delta_since(self, baseline: Mapping[str, int]) -> Dict[str, int]:
        """Per-counter difference against an earlier :meth:`snapshot`."""
        result: Dict[str, int] = {}
        for name, value in self._counts.items():
            diff = value - baseline.get(name, 0)
            if diff:
                result[name] = diff
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Counters({inner})"


#: The process-wide counter registry used by the placement engine.
STATS = Counters()
