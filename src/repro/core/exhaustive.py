"""Whole-circuit placement baselines.

Two baselines bracket the heuristic placer:

* :func:`optimal_whole_circuit_placement` — exhaustive search over all
  ``m! / (m - n)!`` injective assignments (the paper's "placement of the
  circuit as a whole", last column of Table 3 and the search-space column of
  Table 2).  Only feasible for small environments; a guard raises when the
  search space exceeds a configurable limit.
* :func:`hill_climbing_whole_circuit_placement` — the hill-climbing fallback
  the paper describes for when enumerating all matchings is not feasible.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Qubit
from repro.core.fine_tuning import hill_climb
from repro.exceptions import PlacementError
from repro.hardware.environment import Node, PhysicalEnvironment
from repro.timing.scheduler import circuit_runtime

Placement = Dict[Qubit, Node]

#: Refuse to exhaustively enumerate more assignments than this by default.
DEFAULT_SEARCH_SPACE_LIMIT = 2_000_000


def search_space_size(circuit: QuantumCircuit, environment: PhysicalEnvironment) -> int:
    """Number of injective assignments ``m! / (m - n)!`` (Table 2's last column)."""
    return environment.search_space_size(circuit.num_qubits)


def iter_placements(
    circuit: QuantumCircuit,
    environment: PhysicalEnvironment,
    nodes: Optional[Sequence[Node]] = None,
) -> Iterable[Placement]:
    """Yield every injective assignment of circuit qubits to environment nodes."""
    pool = list(nodes) if nodes is not None else list(environment.nodes)
    for assignment in itertools.permutations(pool, circuit.num_qubits):
        yield dict(zip(circuit.qubits, assignment))


def optimal_whole_circuit_placement(
    circuit: QuantumCircuit,
    environment: PhysicalEnvironment,
    apply_interaction_cap: bool = True,
    search_space_limit: int = DEFAULT_SEARCH_SPACE_LIMIT,
    nodes: Optional[Sequence[Node]] = None,
) -> Tuple[Placement, float]:
    """Exhaustively find the runtime-optimal whole-circuit placement.

    Raises :class:`~repro.exceptions.PlacementError` when the circuit does
    not fit the environment or the search space exceeds ``search_space_limit``
    (use the hill-climbing baseline instead in that case).
    """
    if circuit.num_qubits > environment.num_qubits:
        raise PlacementError(
            f"circuit needs {circuit.num_qubits} qubits but environment "
            f"{environment.name!r} has only {environment.num_qubits}"
        )
    size = search_space_size(circuit, environment)
    if size > search_space_limit:
        raise PlacementError(
            f"search space of {size} assignments exceeds the limit of "
            f"{search_space_limit}; use hill_climbing_whole_circuit_placement"
        )

    best_placement: Optional[Placement] = None
    best_runtime = float("inf")
    for placement in iter_placements(circuit, environment, nodes=nodes):
        runtime = circuit_runtime(
            circuit,
            placement,
            environment,
            apply_interaction_cap=apply_interaction_cap,
            validate=False,
        )
        if runtime < best_runtime:
            best_runtime = runtime
            best_placement = placement
    if best_placement is None:  # pragma: no cover - empty environments rejected earlier
        raise PlacementError("no placement found")
    return best_placement, best_runtime


def hill_climbing_whole_circuit_placement(
    circuit: QuantumCircuit,
    environment: PhysicalEnvironment,
    apply_interaction_cap: bool = True,
    max_rounds: int = 20,
    initial_placement: Optional[Placement] = None,
) -> Tuple[Placement, float]:
    """Hill-climbing whole-circuit placement (the paper's large-instance fallback)."""
    if circuit.num_qubits > environment.num_qubits:
        raise PlacementError(
            f"circuit needs {circuit.num_qubits} qubits but environment "
            f"{environment.name!r} has only {environment.num_qubits}"
        )
    if initial_placement is None:
        initial_placement = dict(zip(circuit.qubits, environment.nodes))

    def cost(placement: Placement) -> float:
        return circuit_runtime(
            circuit,
            placement,
            environment,
            apply_interaction_cap=apply_interaction_cap,
            validate=False,
        )

    return hill_climb(
        initial_placement,
        cost,
        movable_qubits=list(circuit.qubits),
        allowed_nodes=list(environment.nodes),
        max_rounds=max_rounds,
    )


def whole_circuit_runtime(
    circuit: QuantumCircuit,
    environment: PhysicalEnvironment,
    apply_interaction_cap: bool = True,
    search_space_limit: int = DEFAULT_SEARCH_SPACE_LIMIT,
) -> float:
    """Runtime of the best whole-circuit placement (exhaustive when feasible)."""
    try:
        _, runtime = optimal_whole_circuit_placement(
            circuit,
            environment,
            apply_interaction_cap=apply_interaction_cap,
            search_space_limit=search_space_limit,
        )
    except PlacementError:
        _, runtime = hill_climbing_whole_circuit_placement(
            circuit, environment, apply_interaction_cap=apply_interaction_cap
        )
    return runtime
