"""Configuration options of the placement engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import PlacementError
from repro.timing._replay import BACKEND_CHOICES


@dataclass
class PlacementOptions:
    """Knobs of :func:`repro.core.placement.place_circuit`.

    Attributes
    ----------
    threshold:
        The ``Threshold`` below which an interaction counts as fast.  ``None``
        selects the paper's default: the minimal value at which the fast
        graph is connected.
    max_monomorphisms:
        The paper's ``k``: how many candidate monomorphisms are enumerated
        per workspace (the original implementation used 100).
    fine_tuning:
        Run hill-climbing fine tuning on each workspace placement.
    fine_tuning_max_rounds:
        Maximum hill-climbing sweeps per workspace.
    lookahead:
        Enable the depth-2 lookahead when picking a workspace's placement
        (score = this stage's runtime + incoming swap cost + best next-stage
        runtime + its swap cost).
    lookahead_width:
        How many of the cheapest candidates are combined in the k x k
        lookahead.  Keeps the Python implementation fast; the paper's C++
        code used the full ``k``.
    leaf_override:
        Enable the leaf–target value override heuristic in the SWAP router.
    apply_interaction_cap:
        Cap runs of consecutive two-qubit gates on one pair at three
        interaction uses when computing runtimes (Section 6).
    sequential_levels:
        Use the strict sequential-levels runtime model instead of the default
        asynchronous one.
    restrict_to_largest_component:
        When the threshold disconnects the adjacency graph, confine placement
        to the largest connected component (provided it is big enough).
    reorder_commuting_gates:
        Apply the commutation-aware reordering pass
        (:func:`repro.circuits.commutation.commutation_aware_reorder`) before
        placing — the paper's "further research" direction of using gate
        commutation to obtain a more favourable instance.  The pass only
        exchanges exactly-commuting gates, so the computation is unchanged.
    max_workspace_two_qubit_gates:
        Optional cap on the number of two-qubit gates per workspace.  The
        paper's strategy is greedy-maximal (``None``); a finite cap explores
        the computation-depth vs. swap-depth balance its conclusions mention.
    debug_full_recompute:
        Debug-only: make the incremental cost evaluator verify every
        delta-cost evaluation against a from-scratch scheduling run and
        assert exact equality (on the numpy backend this additionally
        cross-checks every full evaluation against the pure Python
        reference).  Slows fine tuning down to (worse than) the
        non-incremental speed; useful when auditing scheduler changes.
    scheduler_backend:
        Evaluation backend of the scheduler's
        :class:`~repro.timing.scheduler.RuntimeEvaluator`: ``"python"``
        (the reference loop), ``"numpy"`` (vectorised duration tables;
        requires numpy) or ``"auto"`` (the default — defer to the
        ``REPRO_SCHEDULER_BACKEND`` environment variable, then pick numpy
        when available and profitable).  Backends are bit-identical, so
        this knob never changes any placement output.
    placer:
        Placement engine, as a :data:`repro.registry.PLACERS` spec:
        ``"exact"`` (the default — the paper's exhaustive monomorphism
        search, bit-identical to every release before this knob existed),
        ``"greedy"`` (one-shot interaction-weight seeding) or
        ``"anneal"``/``"anneal:SEED"``/``"anneal:SEEDxITERS"`` (the
        deterministic simulated annealer for hosts where exact search is
        infeasible; see ``docs/placers.md``).  Unknown specs raise the
        spec-listing :class:`~repro.exceptions.UnknownSpecError` at
        construction time.
    """

    threshold: Optional[float] = None
    max_monomorphisms: int = 100
    fine_tuning: bool = True
    fine_tuning_max_rounds: int = 10
    lookahead: bool = True
    lookahead_width: int = 8
    leaf_override: bool = True
    apply_interaction_cap: bool = True
    sequential_levels: bool = False
    restrict_to_largest_component: bool = True
    reorder_commuting_gates: bool = False
    max_workspace_two_qubit_gates: Optional[int] = None
    debug_full_recompute: bool = False
    scheduler_backend: str = "auto"
    placer: str = "exact"

    def __post_init__(self) -> None:
        if not isinstance(self.placer, str) or not self.placer:
            raise PlacementError(
                f"placer must be a non-empty spec string, got {self.placer!r}"
            )
        if self.placer != "exact":
            # The default short-circuits the registry lookup: validating it
            # would import repro.core.placers -> repro.core.placement ->
            # this module while DEFAULT_OPTIONS below is still being built.
            from repro.registry import PLACERS

            PLACERS.validate(self.placer)
        if self.scheduler_backend not in BACKEND_CHOICES:
            raise PlacementError(
                f"scheduler_backend must be one of {BACKEND_CHOICES}, "
                f"got {self.scheduler_backend!r}"
            )
        if self.max_monomorphisms < 1:
            raise PlacementError("max_monomorphisms must be at least 1")
        if self.lookahead_width < 1:
            raise PlacementError("lookahead_width must be at least 1")
        if self.fine_tuning_max_rounds < 0:
            raise PlacementError("fine_tuning_max_rounds must be non-negative")
        if self.threshold is not None and self.threshold <= 0:
            raise PlacementError("threshold must be positive")
        if (
            self.max_workspace_two_qubit_gates is not None
            and self.max_workspace_two_qubit_gates < 1
        ):
            raise PlacementError("max_workspace_two_qubit_gates must be at least 1")

    def replace(self, **changes) -> "PlacementOptions":
        """Return a copy with some fields changed."""
        from dataclasses import replace as dataclass_replace

        return dataclass_replace(self, **changes)


#: Default options (the configuration used throughout the paper's evaluation).
DEFAULT_OPTIONS = PlacementOptions()
