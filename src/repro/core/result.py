"""Result objects produced by the placement engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Qubit
from repro.hardware.environment import Node, PhysicalEnvironment
from repro.routing.bubble import RoutingResult

Placement = Dict[Qubit, Node]


@dataclass(frozen=True)
class StagePlacement:
    """One placed workspace (subcircuit) of the decomposition.

    Attributes
    ----------
    index:
        Stage number (0-based).
    start, stop:
        Gate range ``[start, stop)`` of the original circuit.
    placement:
        Full placement of every circuit qubit during this stage.
    runtime:
        Scheduled runtime of the stage's subcircuit in environment units.
    """

    index: int
    start: int
    stop: int
    placement: Placement
    runtime: float


@dataclass(frozen=True)
class SwapStage:
    """The SWAP stage between two consecutive workspaces.

    Attributes
    ----------
    index:
        The swap stage sits between workspace ``index`` and ``index + 1``.
    routing:
        The routing result (parallel SWAP layers over physical nodes).
    runtime:
        Scheduled runtime of the swap circuit in environment units.
    """

    index: int
    routing: RoutingResult
    runtime: float

    @property
    def depth(self) -> int:
        """Number of parallel SWAP layers."""
        return self.routing.depth

    @property
    def num_swaps(self) -> int:
        """Total number of SWAP gates."""
        return self.routing.num_swaps


@dataclass
class PlacementResult:
    """Complete outcome of placing a circuit into a physical environment.

    The physical circuit runs over *physical node labels*: workspace gates
    are remapped through their stage placement and SWAP stages are inserted
    between consecutive workspaces, so the whole object can be scheduled,
    simulated and inspected directly.
    """

    circuit_name: str
    environment_name: str
    threshold: float
    stages: List[StagePlacement]
    swap_stages: List[SwapStage]
    physical_circuit: QuantumCircuit
    total_runtime: float
    time_unit_seconds: float
    placement_nodes: Tuple[Node, ...] = field(default_factory=tuple)

    @property
    def num_subcircuits(self) -> int:
        """The number of workspaces the placer used (Table 3's bracketed number)."""
        return len(self.stages)

    @property
    def initial_placement(self) -> Placement:
        """Placement of logical qubits at the start of the computation."""
        return dict(self.stages[0].placement)

    @property
    def final_placement(self) -> Placement:
        """Placement of logical qubits at the end of the computation."""
        return dict(self.stages[-1].placement)

    @property
    def runtime_seconds(self) -> float:
        """Total runtime converted to seconds."""
        return self.total_runtime * self.time_unit_seconds

    @property
    def total_swap_count(self) -> int:
        """Total number of SWAP gates over all swap stages."""
        return sum(stage.num_swaps for stage in self.swap_stages)

    @property
    def total_swap_depth(self) -> int:
        """Total number of SWAP layers over all swap stages."""
        return sum(stage.depth for stage in self.swap_stages)

    def stage_runtimes(self) -> List[float]:
        """Runtime of each workspace subcircuit, in order."""
        return [stage.runtime for stage in self.stages]

    def swap_runtimes(self) -> List[float]:
        """Runtime of each swap stage, in order."""
        return [stage.runtime for stage in self.swap_stages]

    def summary(self) -> str:
        """One-paragraph human readable summary."""
        return (
            f"{self.circuit_name!r} on {self.environment_name!r} "
            f"(threshold {self.threshold:g}): runtime {self.runtime_seconds:.4f} s "
            f"({self.total_runtime:g} units) using {self.num_subcircuits} "
            f"subcircuit(s) and {self.total_swap_count} SWAP(s)"
        )
