"""Greedy workspace (subcircuit) extraction.

The basic placement stage of the paper's heuristic reads two-qubit gates
from the circuit into a workspace "as long as these gates can be arranged
along the fastest interactions provided by the physical environment"; the
first gate whose addition breaks embeddability closes the workspace and
starts the next one.  Single-qubit gates never break a workspace — they are
always executable wherever their qubit happens to sit.

Workspaces partition the circuit's gate sequence into contiguous slices; the
slices are later placed independently and glued with SWAP stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, Qubit
from repro.core._bitset import HostEncoding, canonical_order, encode_host
from repro.core.monomorphism import has_monomorphism
from repro.exceptions import PlacementError


@dataclass(frozen=True)
class Workspace:
    """A contiguous slice of the circuit placeable along fast interactions.

    Attributes
    ----------
    index:
        Position of the workspace in the decomposition (0-based).
    start, stop:
        Gate-index range ``[start, stop)`` in the original circuit.
    gates:
        The gates of the slice, in order (single- and two-qubit).
    interaction_graph:
        Interaction graph of the slice's two-qubit gates.
    """

    index: int
    start: int
    stop: int
    gates: Tuple[Gate, ...]
    interaction_graph: nx.Graph

    @property
    def num_gates(self) -> int:
        """Number of gates in the workspace."""
        return len(self.gates)

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit gates in the workspace."""
        return sum(1 for gate in self.gates if gate.is_two_qubit)

    @property
    def active_qubits(self) -> Tuple[Qubit, ...]:
        """Qubits participating in at least one two-qubit gate of the slice."""
        return tuple(canonical_order(self.interaction_graph.nodes()))

    def subcircuit(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """The workspace as a standalone circuit over the parent's qubits."""
        return circuit.subcircuit(self.start, self.stop, name=f"{circuit.name}#W{self.index}")


def _embeds(
    graph: nx.Graph,
    host: nx.Graph,
    host_encoding: Optional[HostEncoding] = None,
    host_bipartite: bool = False,
) -> bool:
    """Exact embeddability check with the cheap necessary conditions first."""
    if graph.number_of_nodes() == 0:
        return True
    if graph.number_of_nodes() > host.number_of_nodes():
        return False
    if graph.number_of_edges() > host.number_of_edges():
        return False
    if host_bipartite and not nx.is_bipartite(graph):
        # Subgraphs of a bipartite host are bipartite, so a pattern with an
        # odd cycle can be refuted in O(V+E).  Proving non-embeddability by
        # search instead is the worst case of the enumerator — on a
        # 1024-node grid a refutation can visit an astronomical number of
        # search nodes, and synthetic hosts (grid/chain/ring with even
        # length) are all bipartite.
        return False
    return has_monomorphism(graph, host, host_encoding=host_encoding)


def extract_workspaces(
    circuit: QuantumCircuit,
    adjacency_graph: nx.Graph,
    max_two_qubit_gates: Optional[int] = None,
) -> List[Workspace]:
    """Split ``circuit`` into maximal workspaces embeddable in ``adjacency_graph``.

    Parameters
    ----------
    max_two_qubit_gates:
        Optional cap on the number of two-qubit gates per workspace.  The
    paper's strategy is greedy-maximal ("the computational stage is formed
        to be as large as possible"); bounding the workspace size is the
        alternative its conclusions suggest exploring — it trades more SWAP
        stages for smaller, better-optimised computational stages.

    Raises :class:`~repro.exceptions.PlacementError` when even a single
    two-qubit gate cannot be aligned with a fast interaction (i.e. the
    adjacency graph has no edge at all), because then no decomposition
    exists.
    """
    if adjacency_graph.number_of_edges() == 0 and circuit.num_two_qubit_gates > 0:
        raise PlacementError(
            "the adjacency graph allows no interaction at all; "
            "raise the threshold"
        )
    if max_two_qubit_gates is not None and max_two_qubit_gates < 1:
        raise PlacementError("max_two_qubit_gates must be at least 1")

    # One bitset encoding of the host serves every embeddability probe of
    # the greedy scan (one probe per distinct two-qubit interaction).
    host_encoding = (
        encode_host(adjacency_graph)
        if adjacency_graph.number_of_nodes() > 0
        else None
    )
    host_bipartite = (
        adjacency_graph.number_of_edges() > 0 and nx.is_bipartite(adjacency_graph)
    )

    workspaces: List[Workspace] = []
    current_graph = nx.Graph()
    current_start = 0
    current_two_qubit_count = 0
    index = 0

    def close(stop: int) -> None:
        nonlocal current_graph, current_start, current_two_qubit_count, index
        if stop <= current_start:
            return
        workspaces.append(
            Workspace(
                index=index,
                start=current_start,
                stop=stop,
                gates=tuple(circuit.gates[current_start:stop]),
                interaction_graph=current_graph.copy(),
            )
        )
        index += 1
        current_start = stop
        current_graph = nx.Graph()
        current_two_qubit_count = 0

    gates = circuit.gates
    for position, gate in enumerate(gates):
        if not gate.is_two_qubit:
            continue
        a, b = gate.interaction()
        if (
            max_two_qubit_gates is not None
            and current_two_qubit_count >= max_two_qubit_gates
        ):
            close(position)
        if current_graph.has_edge(a, b):
            current_two_qubit_count += 1
            continue
        candidate = current_graph.copy()
        candidate.add_edge(a, b)
        if _embeds(candidate, adjacency_graph, host_encoding, host_bipartite):
            current_graph = candidate
            current_two_qubit_count += 1
            continue
        # The gate breaks embeddability: close the workspace before it.
        close(position)
        current_graph.add_edge(a, b)
        current_two_qubit_count = 1
        if not _embeds(
            current_graph, adjacency_graph, host_encoding, host_bipartite
        ):
            raise PlacementError(
                f"two-qubit gate {gate!r} cannot be aligned with any fast "
                "interaction of the environment"
            )
    close(len(gates))

    if not workspaces:
        # A circuit with no gates (or only gates before the first close) still
        # forms one (possibly empty) workspace so that placement has
        # something to work with.
        workspaces.append(
            Workspace(
                index=0,
                start=0,
                stop=len(gates),
                gates=tuple(gates),
                interaction_graph=nx.Graph(),
            )
        )
    return workspaces


def workspace_boundaries(workspaces: Sequence[Workspace]) -> List[int]:
    """The gate indices at which new workspaces start (excluding index 0)."""
    return [workspace.start for workspace in workspaces[1:]]
