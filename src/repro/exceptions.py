"""Exception hierarchy for the quantum circuit placement library.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch a single base class.  More specific subclasses are
raised close to where the problem is detected and carry enough context in
their message to diagnose the failure without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class CircuitError(ReproError):
    """Raised for malformed circuits or gates (bad qubit indices, arity...)."""


class GateError(CircuitError):
    """Raised when a gate is constructed or used inconsistently."""


class EnvironmentError_(ReproError):
    """Raised for malformed physical environments.

    The trailing underscore avoids shadowing the (deprecated) builtin
    ``EnvironmentError`` alias of ``OSError``.
    """


class ThresholdError(EnvironmentError_):
    """Raised when a threshold produces an unusable adjacency graph."""


class PlacementError(ReproError):
    """Raised when a placement cannot be constructed.

    Typical causes: the circuit uses more qubits than the environment
    provides, or the adjacency graph is disconnected so no monomorphism and
    no routing path exists for some interaction.
    """


class MonomorphismError(PlacementError):
    """Raised when no subgraph monomorphism exists for a workspace."""


class RoutingError(ReproError):
    """Raised when a permutation cannot be realised over an adjacency graph."""


class ExperimentError(ReproError):
    """Raised by the experiment runner for misconfigured cell grids.

    Typical cause: asking for multi-process execution with specs that
    cannot be pickled (lambda factories, closures over local state).
    """


class ShardFormatError(ExperimentError):
    """Raised when a shard/plan/checkpoint file cannot be read back.

    Wraps every low-level failure mode — missing file, truncated pickle or
    JSON, foreign format tag, payload-checksum mismatch — in one exception
    whose single-line message names the offending path and the cause, so
    shard workers and the merge step fail with an actionable error instead
    of a raw ``pickle``/``json``/``EOFError`` traceback.
    """


class InjectedFaultError(ReproError):
    """Raised by the test-only fault injector (``repro.analysis.resilience``).

    Deliberately *not* a :class:`ThresholdError`/:class:`PlacementError`
    (which mark a cell as structurally infeasible): an injected fault must
    look like an unexpected runtime failure so the retry machinery treats
    it as transient and retries the cell.
    """


class RegistryError(ReproError):
    """Raised for misuse of a named registry (duplicate or invalid names)."""


class UnknownSpecError(RegistryError):
    """Raised when a registry spec string does not resolve to an entry.

    The message is a single line listing the valid registry names, so CLI
    surfaces can show it verbatim (``repro-place`` exits with code 2).
    """


class ConfigError(ReproError):
    """Raised for invalid :class:`repro.config.RunConfig` values or files.

    Like :class:`UnknownSpecError`, this marks a caller/usage mistake
    rather than an internal failure; the CLI exits with code 2.
    """


class SimulationError(ReproError):
    """Raised by the statevector simulator (e.g. too many qubits)."""


class SerializationError(ReproError):
    """Raised when parsing or writing circuit / environment files fails."""
