#!/usr/bin/env bash
# Tier-1-equivalent smoke gate, suitable for a CI job.
#
# Runs, in order:
#   0. the static-analysis gate: a cold-vs-warm lint-cache contract check
#      (the warm run must be byte-identical and under half the cold wall
#      time), `python -m repro.lint --check --jobs 2`, and the mypy typing
#      tiers of mypy.ini when mypy is installed — fail-fast, before any
#      test process is spawned (docs/static-analysis.md);
#   1. the tier-1 test suite (`pytest -x -q`; bench-marked tests excluded
#      via pytest.ini);
#   2. a 2-shard plan -> run -> merge round trip through the CLI, asserting
#      the merged sweep table is byte-identical to the serial `sweep`
#      output — the sharded pipeline's end-to-end contract;
#   3. a RunConfig round-trip smoke: a flag-based `place --output json` run
#      re-described as a repro.config.RunConfig and re-run via `--config`
#      must produce identical deterministic fields — the unified workload
#      API's config contract (docs/api.md);
#   4. a fault-injection smoke: the same 2-shard sweep with an injected
#      worker crash (recovered by --retries) and a corrupted outcome
#      shard (recovered by `shard replan` + re-run, with `shard run
#      --resume` exercising the checkpoint journal), asserting the
#      recovered merge is byte-identical to the serial table;
#   5. a heuristic-placer smoke: the same `--placer anneal:SEEDxITERS`
#      sweep run twice in separate processes must be byte-identical —
#      the seeded annealer's determinism contract (docs/placers.md);
#   6. a native-backend smoke: build the compiled replay kernel on demand
#      (skipped, with a log line, on hosts without a C compiler) and run
#      the scheduler-facing tier-1 subset under
#      REPRO_SCHEDULER_BACKEND=native — the third backend's bit-identity
#      contract (docs/performance.md);
#   7. the benchmark regression gate on the fast micro scenarios
#      (`run_bench.py --check --scenarios ...`), which also re-checks the
#      deterministic counters and output fingerprints against the
#      committed BENCH_placement.json (including the exact-vs-anneal
#      ablation and replay backend-consistency scenarios).
#
# Usage: scripts/ci_check.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"
PYTHON="${PYTHON:-python}"

echo "== 0/7 static-analysis gate =="
# Cold-vs-warm cache contract: the gate runs twice against a fresh cache
# directory in one interpreter (so interpreter startup does not pollute
# the timing); the warm run must take under half the cold wall time and
# both runs must agree byte for byte.
LINT_CACHE_DIR="$(mktemp -d)"
REPRO_LINT_CACHE_DIR="$LINT_CACHE_DIR" "$PYTHON" - <<'PYEOF'
import sys
import time

from repro.lint import DiagnosticCache, lint_tree

cold_cache = DiagnosticCache()
start = time.perf_counter()
cold = lint_tree(".", jobs=2, cache=cold_cache)
cold_seconds = time.perf_counter() - start

warm_cache = DiagnosticCache()
start = time.perf_counter()
warm = lint_tree(".", jobs=2, cache=warm_cache)
warm_seconds = time.perf_counter() - start

print(
    f"lint cache: cold {cold_seconds:.3f}s ({cold_cache.stores} stored), "
    f"warm {warm_seconds:.3f}s ({warm_cache.hits} hits)"
)
if warm != cold:
    raise SystemExit("FAIL: warm-cache lint output differs from cold")
if warm_cache.misses:
    raise SystemExit(f"FAIL: warm lint run missed {warm_cache.misses} file(s)")
if warm_seconds >= cold_seconds / 2:
    raise SystemExit(
        f"FAIL: warm lint run ({warm_seconds:.3f}s) not under half the "
        f"cold run ({cold_seconds:.3f}s)"
    )
PYEOF
REPRO_LINT_CACHE_DIR="$LINT_CACHE_DIR" "$PYTHON" -m repro.lint --check --jobs 2
rm -rf "$LINT_CACHE_DIR"
if "$PYTHON" -c "import mypy" > /dev/null 2>&1; then
    "$PYTHON" -m mypy --config-file mypy.ini
else
    echo "mypy not installed; skipping the typing tier (lint gate still ran)"
fi

echo "== 1/7 tier-1 test suite =="
"$PYTHON" -m pytest -x -q

echo "== 2/7 sharded plan -> run -> merge round trip =="
WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

SWEEP_ARGS=(error-correction-encoding acetyl-chloride --thresholds 50 100 200 1000)
"$PYTHON" -m repro.cli sweep "${SWEEP_ARGS[@]}" > "$WORK_DIR/serial.txt"
"$PYTHON" -m repro.cli shard plan "${SWEEP_ARGS[@]}" \
    --shards 2 --out-dir "$WORK_DIR/shards"
"$PYTHON" -m repro.cli shard run --shard-file "$WORK_DIR/shards/shard-0.pkl" \
    --out "$WORK_DIR/outcomes-0.json"
"$PYTHON" -m repro.cli shard run --shard-file "$WORK_DIR/shards/shard-1.pkl" \
    --out "$WORK_DIR/outcomes-1.json"
"$PYTHON" -m repro.cli shard merge --plan "$WORK_DIR/shards/plan.json" \
    "$WORK_DIR/outcomes-0.json" "$WORK_DIR/outcomes-1.json" > "$WORK_DIR/merged.txt"
if ! diff "$WORK_DIR/serial.txt" "$WORK_DIR/merged.txt"; then
    echo "FAIL: merged shard output differs from the serial sweep" >&2
    exit 1
fi
echo "merged output byte-identical to serial sweep"

echo "== 3/7 run-config round-trip smoke =="
"$PYTHON" -m repro.cli place error-correction-encoding acetyl-chloride \
    --output json > "$WORK_DIR/place-flags.json"
"$PYTHON" - "$WORK_DIR" <<'PYEOF'
import sys
from repro.config import RunConfig

work_dir = sys.argv[1]
RunConfig(
    circuit="error-correction-encoding",
    environment="acetyl-chloride",
    output="json",
).save(f"{work_dir}/run.json")
PYEOF
"$PYTHON" -m repro.cli place --config "$WORK_DIR/run.json" \
    > "$WORK_DIR/place-config.json"
"$PYTHON" - "$WORK_DIR" <<'PYEOF'
import json
import sys

work_dir = sys.argv[1]

def deterministic(path):
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    payload.pop("counters", None)
    for row in payload.get("rows", []):
        row.pop("software_runtime_seconds", None)
        row.pop("counters", None)
    return payload

flags = deterministic(f"{work_dir}/place-flags.json")
config = deterministic(f"{work_dir}/place-config.json")
if flags != config:
    raise SystemExit(
        "FAIL: --config run differs from the flag-based run in "
        "deterministic fields"
    )
print("config round trip: deterministic fields identical")
PYEOF

echo "== 4/7 fault-injection smoke =="
FAULT_DIR="$WORK_DIR/fault"
mkdir -p "$FAULT_DIR"
# Worker crash on cell 0's first attempt: --retries must recover to the
# exact serial table through the resilient (process-per-attempt) path.
REPRO_FAULT_PLAN="0:kill" "$PYTHON" -m repro.cli sweep "${SWEEP_ARGS[@]}" \
    --retries 2 > "$FAULT_DIR/faulted-sweep.txt"
if ! diff "$WORK_DIR/serial.txt" "$FAULT_DIR/faulted-sweep.txt"; then
    echo "FAIL: sweep with injected crash + retries differs from serial" >&2
    exit 1
fi
# Corrupt shard 1's outcome file as it is written; a strict merge must
# fail closed on the checksum, then replan + re-run + resume recovers.
"$PYTHON" -m repro.cli shard run --shard-file "$WORK_DIR/shards/shard-0.pkl" \
    --out "$FAULT_DIR/outcomes-0.json" --checkpoint "$FAULT_DIR/ckpt-0.jsonl"
REPRO_FAULT_PLAN="out:1" "$PYTHON" -m repro.cli shard run \
    --shard-file "$WORK_DIR/shards/shard-1.pkl" \
    --out "$FAULT_DIR/outcomes-1.json"
if "$PYTHON" -m repro.cli shard merge --plan "$WORK_DIR/shards/plan.json" \
    "$FAULT_DIR/outcomes-0.json" "$FAULT_DIR/outcomes-1.json" \
    > /dev/null 2> "$FAULT_DIR/merge-err.txt"; then
    echo "FAIL: merge accepted a corrupted outcome shard" >&2
    exit 1
fi
grep -q "outcomes-1.json" "$FAULT_DIR/merge-err.txt"
"$PYTHON" -m repro.cli shard replan --plan "$WORK_DIR/shards/plan.json" \
    --out-dir "$FAULT_DIR/recovery" \
    "$FAULT_DIR/outcomes-0.json" "$FAULT_DIR/outcomes-1.json" > /dev/null
# Resume shard 0 from its journal (all cells already done -> no re-work)
# and re-run the replanned shard 1 input.
"$PYTHON" -m repro.cli shard run --shard-file "$WORK_DIR/shards/shard-0.pkl" \
    --out "$FAULT_DIR/outcomes-0.json" \
    --checkpoint "$FAULT_DIR/ckpt-0.jsonl" --resume
"$PYTHON" -m repro.cli shard run \
    --shard-file "$FAULT_DIR/recovery/shard-1.pkl" \
    --out "$FAULT_DIR/recovered-1.json"
"$PYTHON" -m repro.cli shard merge --plan "$WORK_DIR/shards/plan.json" \
    "$FAULT_DIR/outcomes-0.json" "$FAULT_DIR/recovered-1.json" \
    > "$FAULT_DIR/recovered-merge.txt"
if ! diff "$WORK_DIR/serial.txt" "$FAULT_DIR/recovered-merge.txt"; then
    echo "FAIL: recovered merge differs from the serial sweep" >&2
    exit 1
fi
echo "fault injection: crash, corruption, replan and resume all recovered"

echo "== 5/7 heuristic-placer determinism smoke =="
ANNEAL_ARGS=(sweep random:8x20x5 grid:4x4 --thresholds 10 20
             --placer anneal:7x150)
"$PYTHON" -m repro.cli "${ANNEAL_ARGS[@]}" > "$WORK_DIR/anneal-a.txt"
"$PYTHON" -m repro.cli "${ANNEAL_ARGS[@]}" > "$WORK_DIR/anneal-b.txt"
if ! diff "$WORK_DIR/anneal-a.txt" "$WORK_DIR/anneal-b.txt"; then
    echo "FAIL: same-seed anneal sweeps differ across processes" >&2
    exit 1
fi
echo "anneal sweep byte-identical across processes"

echo "== 6/7 native scheduler backend smoke =="
if "$PYTHON" - <<'PYEOF'
from repro.timing import _native

if _native.available():
    raise SystemExit(0)
print(f"native kernel unavailable: {_native.unavailable_reason()}")
raise SystemExit(1)
PYEOF
then
    REPRO_SCHEDULER_BACKEND=native "$PYTHON" -m pytest -x -q \
        tests/test_replay_backends.py tests/test_scheduler.py \
        tests/test_incremental_scheduler.py tests/test_placers.py
    echo "scheduler-facing tier-1 subset green under the native backend"
else
    echo "skipping the native-backend subset (no C toolchain on this host)"
fi

echo "== 7/7 micro benchmark regression gate =="
"$PYTHON" scripts/run_bench.py --check --repeats 1 \
    --scenarios monomorphism_micro place_qec5_boc place_phaseest_crotonic \
    exact_vs_anneal replay_native

echo "ci_check: all gates passed"
