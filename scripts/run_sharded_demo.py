#!/usr/bin/env python
"""Round-trip a real Table-3 sweep through the sharded grid pipeline.

Plans the QFT / trans-crotonic-acid threshold sweep into N shards, writes
the shard input files to disk, executes each shard from its file (exactly
what ``repro-place shard run`` does on a remote host), writes and re-reads
the JSON outcome shards, merges them — and verifies the merged grid
against a plain serial ``ExperimentRunner`` run of the same grid:
byte-identical deterministic rows, identical work counters, identical
rendered sweep table.

Usage::

    python scripts/run_sharded_demo.py                # 2 shards, round-robin
    python scripts/run_sharded_demo.py --shards 4 --strategy cost-balanced
    python scripts/run_sharded_demo.py --keep-dir /tmp/demo-shards
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis import sharding  # noqa: E402
from repro.analysis.runner import ExperimentRunner, molecule_factory  # noqa: E402
from repro.analysis.serialization import (  # noqa: E402
    deterministic_rows,
    dump_json,
    work_counters,
)
from repro.analysis.sweep import build_sweep_specs, row_from_outcomes  # noqa: E402
from repro.circuits.library import qft_circuit  # noqa: E402
from repro.core.stats import STATS  # noqa: E402
from repro.hardware.molecules import trans_crotonic_acid  # noqa: E402
from repro.hardware.threshold_graph import PAPER_THRESHOLDS  # noqa: E402
from repro.registry import SHARD_STRATEGIES  # noqa: E402
from functools import partial  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=2,
                        help="number of shards (default: 2)")
    parser.add_argument("--strategy",
                        choices=list(SHARD_STRATEGIES.names()),
                        default="round-robin",
                        help="partitioning strategy (default: round-robin)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes inside each shard run")
    parser.add_argument("--keep-dir", default=None,
                        help="write shard files here (kept) instead of a "
                             "temporary directory")
    args = parser.parse_args(argv)

    thresholds = list(PAPER_THRESHOLDS)
    environment = trans_crotonic_acid()
    specs, cell_index = build_sweep_specs(
        partial(qft_circuit, 7),
        environment,
        molecule_factory("trans-crotonic-acid"),
        thresholds,
    )
    print(f"grid: QFT-7 over {environment.name}, {len(thresholds)} thresholds "
          f"-> {len(specs)} deduplicated cell(s)")

    # --- the serial baseline -------------------------------------------------
    before = STATS.snapshot()
    serial = ExperimentRunner().run(specs)
    serial_counters = STATS.delta_since(before)

    # --- plan -> (write, read, execute, write, read) per shard -> merge ------
    plan = sharding.ShardPlan.build(specs, args.shards, args.strategy)
    print(f"plan: {plan.num_shards} shard(s), {plan.strategy}, "
          f"fingerprint {plan.fingerprint[:12]}")
    work_dir = args.keep_dir or tempfile.mkdtemp(prefix="sharded-demo-")
    os.makedirs(work_dir, exist_ok=True)
    shards = []
    for index in range(plan.num_shards):
        shard_path = os.path.join(work_dir, f"shard-{index}.pkl")
        sharding.write_shard(plan.shard_input(index), shard_path)
        shard_input = sharding.read_shard(shard_path)
        outcome_shard = sharding.execute_shard(
            shard_input, ExperimentRunner(jobs=args.jobs)
        )
        out_path = os.path.join(work_dir, f"outcomes-{index}.json")
        sharding.write_outcome_shard(outcome_shard, out_path)
        shards.append(sharding.read_outcome_shard(out_path))
        print(f"  shard {index}: {len(shard_input.indices)} cell(s) "
              f"[{shard_path} -> {out_path}]")
    merged = sharding.merge_shards(shards, plan=plan)

    # --- verification --------------------------------------------------------
    rows_identical = dump_json(deterministic_rows(merged.outcomes)) == dump_json(
        deterministic_rows(serial)
    )
    counters_identical = work_counters(merged.counters) == work_counters(
        serial_counters
    )
    row = row_from_outcomes(
        merged.outcomes, cell_index, thresholds, "qft7", environment.name
    )
    print()
    print(f"merged sweep row ({environment.name}):")
    for cell in row.cells:
        print(f"  threshold {cell.threshold:>6g}  {cell.formatted()}")
    print()
    print(f"deterministic rows byte-identical to serial: {rows_identical}")
    print(f"merged work counters identical to serial:    {counters_identical}")
    if args.keep_dir is None:
        import shutil

        shutil.rmtree(work_dir, ignore_errors=True)
    else:
        print(f"shard files kept in {work_dir}")
    if not (rows_identical and counters_identical):
        print("MISMATCH: sharded round trip diverged from the serial run",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
