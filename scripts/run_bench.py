#!/usr/bin/env python
"""Run the placement-engine performance benchmarks.

Produces ``BENCH_placement.json`` at the repository root: wall time,
monomorphism search-tree nodes explored, cache hit rates and incremental
scheduling counters for every named scenario in
``benchmarks/perf/bench_harness.py``, plus a fingerprint of each
scenario's outputs.

Usage::

    python scripts/run_bench.py                 # run + write BENCH_placement.json
    python scripts/run_bench.py --check         # compare against the committed
                                                # baseline; exit 1 on >20% regression
    python scripts/run_bench.py --check --update  # check, then refresh the baseline
    python scripts/run_bench.py --repeats 5 --output /tmp/bench.json
    python scripts/run_bench.py --backend python  # force a scheduler backend for
                                                  # every 'auto' evaluator
    python scripts/run_bench.py --check --scenarios monomorphism_micro \
        place_qec5_boc                            # gate a fast subset (CI)

The regression gate compares wall times (ignoring scenarios whose baseline
is under 150 ms — too noisy) and the deterministic counter metrics, both
with the same relative tolerance (``--tolerance``, default 0.20, or the
``REPRO_BENCH_TOLERANCE`` environment variable).  See
``docs/performance.md`` for how to read the report.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks" / "perf"))

import bench_harness  # noqa: E402  (path set up above)

from repro.analysis.serialization import atomic_write_text  # noqa: E402
from repro.timing._replay import BACKEND_CHOICES, BACKEND_ENV_VAR  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "BENCH_placement.json"


def _lint_dirty_reason():
    """Why the tree fails the static-analysis gate, or ``None`` when clean.

    Re-baselining performance numbers while the lint gate is red would let
    the two ratchets drift apart — a perf baseline recorded on top of known
    determinism violations is not a baseline worth committing.
    """
    from repro.lint import (
        BASELINE_FILENAME,
        compare_to_baseline,
        lint_tree,
        load_baseline,
    )

    baseline = load_baseline(str(REPO_ROOT / BASELINE_FILENAME))
    fresh, stale = compare_to_baseline(lint_tree(str(REPO_ROOT)), baseline)
    if fresh:
        return f"{len(fresh)} new lint finding(s), e.g. {fresh[0].format()}"
    if stale:
        return f"stale lint baseline entries: {', '.join(stale)}"
    return None


def build_report(repeats: int, names=None) -> dict:
    results = bench_harness.run_all(repeats=repeats, names=names)
    return {
        "schema_version": 1,
        "description": "Placement-engine performance benchmarks "
        "(scripts/run_bench.py)",
        "python": platform.python_version(),
        "repeats": repeats,
        "scenarios": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_BASELINE,
        help="where to write the report (default: BENCH_placement.json)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline to compare against with --check",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per scenario"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.20")),
        help="allowed relative regression before --check fails (default 0.20)",
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_CHOICES),
        default=None,
        help="force the scheduler evaluation backend for the whole run by "
        "setting REPRO_SCHEDULER_BACKEND (the explicit-backend replay_* "
        "scenarios are unaffected); outputs are bit-identical either way",
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="NAME",
        choices=list(bench_harness.SCENARIOS),
        help="run only these scenarios (default: all); with --check the "
        "baseline comparison is restricted to the same subset — used by "
        "scripts/ci_check.sh to gate the fast micro scenarios in CI",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the baseline instead of overwriting it; "
        "exit 1 if any tracked benchmark regressed beyond the tolerance",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="with --check: rewrite the baseline after reporting",
    )
    args = parser.parse_args(argv)

    if args.update and args.scenarios is not None:
        print(
            "error: --update with --scenarios would write a partial "
            "baseline; run the full suite to refresh it",
            file=sys.stderr,
        )
        return 2
    if (
        args.scenarios is not None
        and not args.check
        and args.output.resolve() == DEFAULT_BASELINE.resolve()
    ):
        print(
            "error: --scenarios without --check would overwrite the full "
            "baseline with a partial report; pass --output or --check",
            file=sys.stderr,
        )
        return 2

    writes_baseline = args.update or (
        not args.check and args.output.resolve() == DEFAULT_BASELINE.resolve()
    )
    if writes_baseline:
        reason = _lint_dirty_reason()
        if reason is not None:
            print(
                f"error: refusing to re-baseline while the static-analysis "
                f"gate fails ({reason}); run `python -m repro.lint --check` "
                "and fix the findings first",
                file=sys.stderr,
            )
            return 2

    if args.backend is not None:
        os.environ[BACKEND_ENV_VAR] = args.backend

    report = build_report(args.repeats, names=args.scenarios)
    scenarios = report["scenarios"]
    width = max(len(name) for name in scenarios)
    for name, data in scenarios.items():
        explored = data["metrics"].get("monomorphism.nodes_explored", 0)
        print(
            f"{name:<{width}}  {data['wall_time_s']*1000:9.2f} ms  "
            f"nodes={explored:>8}  "
            f"adj-hit={data['metrics'].get('adjacency_cache_hit_rate', 0.0):.2f}"
        )

    # Worker-count, backend and shard independence are correctness
    # properties, not timings — never write (or pass) a baseline in which
    # parallel runs, the numpy backend or the sharded round trip changed
    # output.
    consistency = bench_harness.parallel_consistency_failures(scenarios)
    consistency += bench_harness.replay_consistency_failures(scenarios)
    consistency += bench_harness.sharded_consistency_failures(scenarios)
    consistency += bench_harness.placer_consistency_failures(scenarios)
    if consistency:
        print("\nCONSISTENCY FAILURES:", file=sys.stderr)
        for failure in consistency:
            print(f"  {failure}", file=sys.stderr)
        return 1

    if args.check:
        if not args.baseline.exists():
            print(f"error: baseline {args.baseline} not found", file=sys.stderr)
            return 2
        baseline = json.loads(args.baseline.read_text())
        if args.scenarios is not None:
            # A subset run can only be compared against the matching
            # subset of the baseline; the scenarios that were not run are
            # not "missing", they were not requested.  But a *requested*
            # scenario absent from the baseline would silently gate
            # nothing — that is an error, not a pass.
            selected = set(args.scenarios)
            baseline_scenarios = baseline.get("scenarios", baseline)
            unbaselined = sorted(selected - set(baseline_scenarios))
            if unbaselined:
                print(
                    f"error: scenario(s) {unbaselined} not in the baseline "
                    f"{args.baseline}; re-record it with the full suite "
                    "before gating on them",
                    file=sys.stderr,
                )
                return 2
            baseline = {
                "scenarios": {
                    name: data
                    for name, data in baseline_scenarios.items()
                    if name in selected
                }
            }
        failures = bench_harness.check_results(
            baseline, scenarios, tolerance=args.tolerance
        )
        if failures:
            print("\nREGRESSIONS:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\nOK: no benchmark regressed more than {args.tolerance:.0%}")
        if args.update:
            atomic_write_text(args.output, json.dumps(report, indent=1, sort_keys=False) + "\n")
            print(f"baseline updated: {args.output}")
        return 0

    atomic_write_text(args.output, json.dumps(report, indent=1, sort_keys=False) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
