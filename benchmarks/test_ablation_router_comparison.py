"""Ablation: the paper's bubble router versus a greedy token-swapping baseline.

The paper's recursive bisection router guarantees linear depth; a greedy
token-swapping baseline usually spends fewer total SWAPs but concentrates
them sequentially.  The benchmark routes the same random permutations with
both and reports depth and swap counts.
"""

import random

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.hardware.architectures import grid, linear_chain
from repro.hardware.molecules import trans_crotonic_acid
from repro.routing.bubble import route_permutation
from repro.routing.token_swapping import route_permutation_greedy
from repro.simulation.verify import verify_routing_layers

CASES = [
    ("trans-crotonic acid", trans_crotonic_acid, 100.0),
    ("chain-16", lambda: linear_chain(16), 10.0),
    ("grid-4x4", lambda: grid(4, 4), 10.0),
]

TRIALS = 10


def test_router_comparison(benchmark):
    def runner():
        rng = random.Random(99)
        summary = []
        for name, factory, threshold in CASES:
            graph = factory().adjacency_graph(threshold)
            nodes = list(graph.nodes())
            bubble_depth = bubble_swaps = greedy_depth = greedy_swaps = 0
            for _ in range(TRIALS):
                shuffled = list(nodes)
                rng.shuffle(shuffled)
                permutation = dict(zip(nodes, shuffled))
                bubble = route_permutation(graph, permutation)
                greedy = route_permutation_greedy(graph, permutation)
                assert verify_routing_layers(bubble.layers, permutation)
                assert verify_routing_layers(greedy.layers, permutation)
                bubble_depth += bubble.depth
                bubble_swaps += bubble.num_swaps
                greedy_depth += greedy.depth
                greedy_swaps += greedy.num_swaps
            summary.append(
                (name, len(nodes),
                 bubble_depth / TRIALS, bubble_swaps / TRIALS,
                 greedy_depth / TRIALS, greedy_swaps / TRIALS)
            )
        return summary

    summary = run_once(benchmark, runner)

    rows = [
        [name, n, f"{b_depth:.1f}", f"{b_swaps:.1f}", f"{g_depth:.1f}", f"{g_swaps:.1f}"]
        for name, n, b_depth, b_swaps, g_depth, g_swaps in summary
    ]
    print()
    print(
        format_table(
            ["architecture", "n", "bubble depth", "bubble SWAPs",
             "greedy depth", "greedy SWAPs"],
            rows,
            title="Ablation — bubble router vs greedy token swapping",
        )
    )

    for name, n, bubble_depth, _, greedy_depth, _ in summary:
        # Both stay in the linear-depth regime the placer relies on.
        assert bubble_depth <= 8 * n + 8
        assert greedy_depth <= n * n
