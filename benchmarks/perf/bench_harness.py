"""Timed micro/macro benchmark scenarios for the placement engine.

Each scenario is a callable that performs a realistic unit of placement
work — a threshold sweep, a single placement, a raw monomorphism
enumeration — on the paper's molecule environments and library circuits.
The harness times it, snapshots the :data:`repro.core.stats.STATS` counters
around it, and records a small *fingerprint* of the outputs so that a
human comparing two ``BENCH_placement.json`` files can tell an honest
speedup from a benchmark that silently started doing different work.

Used by ``scripts/run_bench.py`` (the command-line entry point, including
the ``--check`` regression gate) and by the ``bench``-marked pytest in
this directory.  Wall times are machine-dependent; the counter metrics
(search-tree nodes explored, cache hits, incremental evaluations) are
deterministic and are tracked with the same regression tolerance.
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from functools import partial
from typing import Callable, Dict, List, Tuple

import networkx as nx

from repro.analysis import sharding
from repro.analysis.runner import ExperimentRunner, molecule_factory
from repro.analysis.scalability import run_scalability_point
from repro.analysis.serialization import (
    deterministic_rows,
    dump_json,
    work_counters,
)
from repro.analysis.sweep import SweepRow, build_sweep_specs, sweep_circuit
from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import (
    aqft9,
    phaseest,
    qec5_encoder,
    qft_circuit,
    random_chain_instance,
    random_circuit_instance,
)
from repro.core.config import PlacementOptions
from repro.core.monomorphism import find_monomorphisms
from repro.core.placement import place_circuit
from repro.core.stats import STATS
from repro.hardware.architectures import heavy_hex, grid
from repro.hardware.molecules import (
    boc_glycine_fluoride,
    histidine,
    trans_crotonic_acid,
)
from repro.hardware.threshold_graph import PAPER_THRESHOLDS
from repro.timing.scheduler import RuntimeEvaluator

#: Scenarios whose wall time is recorded but not regression-gated.  The
#: sharded round-trip macro executes the same grid three times (serial,
#: 2-shard, 4-shard) with shard-file I/O through temp directories in
#: between, so its wall time is dominated by scheduling and disk noise —
#: like the multi-worker scenarios (gated via their ``jobs`` fingerprint
#: tag), its correctness is enforced by fingerprints and the
#: :func:`sharded_consistency_failures` gate instead, and its work
#: counters are still gated exactly.
WALL_GATE_EXEMPT = ("sharded_sweep",)

#: Counter names whose per-scenario deltas are recorded and regression-checked.
TRACKED_COUNTERS = (
    "monomorphism.searches",
    "monomorphism.nodes_explored",
    "monomorphism.mappings_yielded",
    "monomorphism.host_encodings",
    "monomorphism.host_encoding_hits",
    "environment.adjacency_cache_hits",
    "environment.adjacency_cache_misses",
    "environment.component_cache_hits",
    "environment.component_cache_misses",
    "scheduler.full_evals",
    "scheduler.incremental_evals",
    "scheduler.ops_skipped",
    "scheduler.ops_replayed",
    "scheduler.pair_matrix_cache_hits",
    "scheduler.pair_matrix_cache_misses",
    "placer.anneal_steps",
    "placer.moves_accepted",
    "placer.moves_rejected",
    "placer.delta_evals",
)


def _sweep_fingerprint(row: SweepRow) -> Dict:
    best = row.best_cell()
    return {
        "num_subcircuits": [cell.num_subcircuits for cell in row.cells],
        "feasible": [cell.feasible for cell in row.cells],
        "best_threshold": best.threshold if best else None,
    }


def _placement_fingerprint(result) -> Dict:
    return {
        "num_subcircuits": result.num_subcircuits,
        "num_swap_stages": len(result.swap_stages),
        "threshold": result.threshold,
    }


def scenario_sweep_qft7_crotonic() -> Dict:
    """The macro benchmark: QFT threshold sweep over trans-crotonic acid.

    The 7-qubit QFT is the largest QFT the 7-qubit molecule admits; its
    interaction graph is the complete graph, so every cell exercises
    workspace extraction, monomorphism enumeration, fine tuning and SWAP
    routing at the paper's six Table-3 thresholds.
    """
    row = sweep_circuit(lambda: qft_circuit(7), trans_crotonic_acid())
    return _sweep_fingerprint(row)


def scenario_sweep_qft8_histidine() -> Dict:
    """An 8-qubit QFT swept over the 12-qubit histidine molecule."""
    row = sweep_circuit(lambda: qft_circuit(8), histidine())
    return _sweep_fingerprint(row)


def scenario_place_phaseest_crotonic() -> Dict:
    """Phase estimation on trans-crotonic acid at threshold 100 (Table 3)."""
    result = place_circuit(
        phaseest(), trans_crotonic_acid(), PlacementOptions(threshold=100.0)
    )
    return _placement_fingerprint(result)


def scenario_place_aqft9_histidine() -> Dict:
    """The approximate 9-qubit QFT on histidine at threshold 200."""
    result = place_circuit(aqft9(), histidine(), PlacementOptions(threshold=200.0))
    return _placement_fingerprint(result)


def scenario_place_qec5_boc() -> Dict:
    """The 5-qubit error-correction encoder on BOC-glycine-fluoride."""
    result = place_circuit(qec5_encoder(), boc_glycine_fluoride())
    return _placement_fingerprint(result)


def scenario_scalability_chain32() -> Dict:
    """One Table-4 scalability point: a 32-qubit hidden-stage chain instance."""
    record = run_scalability_point(32, seed=0)
    return {
        "num_subcircuits": record.num_subcircuits,
        "hidden_stages": record.hidden_stages,
        "num_gates": record.num_gates,
    }


def _parallel_sweep(jobs: int) -> Dict:
    """The parallel-sweep macro benchmark at a given worker count.

    The QFT-7 sweep over trans-crotonic acid with cell deduplication
    disabled, so all six thresholds are placed from scratch — six
    independent cells for the runner to distribute.  The circuit factory is
    a ``partial`` (not a lambda) so the same scenario body runs serially
    and across worker processes; the fingerprint must be identical at
    every ``jobs`` value, which the ``--check`` gate enforces by comparing
    each scenario against its committed baseline.
    """
    row = sweep_circuit(
        partial(qft_circuit, 7),
        trans_crotonic_acid(),
        reuse_equivalent_cells=False,
        jobs=jobs,
    )
    return {**_sweep_fingerprint(row), "jobs": jobs}


def scenario_parallel_sweep_jobs1() -> Dict:
    """Serial reference point of the parallel-sweep macro benchmark."""
    return _parallel_sweep(1)


def scenario_parallel_sweep_jobs2() -> Dict:
    """Two-worker run of the parallel-sweep macro benchmark."""
    return _parallel_sweep(2)


def scenario_parallel_sweep_jobs4() -> Dict:
    """Four-worker run of the parallel-sweep macro benchmark.

    Compare ``wall_time_s`` against ``parallel_sweep_jobs1`` for the
    speedup; on a multi-core host the four-worker run should finish in
    well under half the serial wall time (on a single-core container it
    only measures the process-pool overhead).
    """
    return _parallel_sweep(4)


def _replay_workload_circuit() -> QuantumCircuit:
    """A deterministic 12-qubit, ~1500-op circuit for the replay scenarios.

    Sized well above the evaluator's ``auto`` profitability threshold so
    the two explicit-backend scenarios measure the regime the numpy kernel
    is built for (long compiled op lists, thousands of replays).
    """
    rng = random.Random(20260729)
    qubits = list(range(12))
    gate_list = []
    for _ in range(1500):
        kind = rng.random()
        if kind < 0.55:
            a, b = rng.sample(qubits, 2)
            gate_list.append(g.zz(a, b, rng.choice([45.0, 90.0, 180.0])))
        elif kind < 0.9:
            gate_list.append(g.rx(rng.choice(qubits), rng.choice([90.0, 180.0])))
        else:
            gate_list.append(g.rz(rng.choice(qubits), 90.0))  # free gate
    return QuantumCircuit(qubits, gate_list, name="replay-stress")


def _replay_stress(backend: str) -> Dict:
    """The scheduler-replay macro benchmark at an explicit backend.

    Mimics a hill-climbing fine-tuning campaign on one large placed
    circuit: a full ``set_base`` evaluation, sweeps of single-qubit moves
    and occupant swaps through ``runtime_with`` (exact and with the
    branch-and-bound ``limit`` cutoff), and periodic re-basing.  The
    fingerprint digests every computed runtime, so
    :func:`replay_consistency_failures` can verify bit-identical outputs
    across the two backend scenarios.
    """
    from repro.timing import _native
    from repro.timing._replay import NUMPY_AVAILABLE

    if backend == "numpy" and not NUMPY_AVAILABLE:
        return {"backend": backend, "skipped": "numpy not importable"}
    if backend == "native" and not _native.available():
        return {
            "backend": backend,
            "skipped": f"native kernel unavailable: "
            f"{_native.unavailable_reason()}",
        }
    environment = histidine()
    circuit = _replay_workload_circuit()
    evaluator = RuntimeEvaluator(
        circuit, environment, apply_interaction_cap=True, backend=backend
    )
    nodes = list(environment.nodes)
    placement = dict(zip(circuit.qubits, nodes))
    base = evaluator.set_base(placement)
    rng = random.Random(7)
    checksum = 0.0
    cutoffs = 0
    moves = 0
    for round_index in range(6):
        for qubit in circuit.qubits:
            current = placement[qubit]
            node_to_qubit = {node: q for q, node in placement.items()}
            for node in nodes:
                if node == current:
                    continue
                occupant = node_to_qubit.get(node)
                if occupant is None:
                    overrides = {qubit: node}
                else:
                    overrides = {qubit: node, occupant: current}
                if rng.random() < 0.5:
                    value = evaluator.runtime_with(overrides, limit=base)
                    if value == float("inf"):
                        cutoffs += 1
                        moves += 1
                        continue
                else:
                    value = evaluator.runtime_with(overrides)
                checksum += value
                moves += 1
        # Re-base on a rotated placement: the accepted-move/full-run path.
        rotated = nodes[round_index + 1:] + nodes[:round_index + 1]
        placement = dict(zip(circuit.qubits, rotated))
        base = evaluator.set_base(placement)
        checksum += base
    evaluator.flush_stats()
    return {
        "backend": backend,
        "moves": moves,
        "cutoffs": cutoffs,
        "checksum": round(checksum, 6),
    }


def scenario_replay_python() -> Dict:
    """Replay-engine stress on the pure Python reference backend."""
    return _replay_stress("python")


def scenario_replay_numpy() -> Dict:
    """Replay-engine stress on the vectorised numpy backend.

    Compare ``wall_time_s`` against ``replay_python`` for the backend
    speedup; the fingerprints (minus the ``backend`` tag) must be equal —
    the backends are bit-identical by contract.
    """
    return _replay_stress("numpy")


def scenario_replay_native() -> Dict:
    """Replay-engine stress on the compiled C replay kernel.

    Compare ``wall_time_s`` against ``replay_python`` for the native
    speedup; the fingerprints (minus the ``backend`` tag) must be equal
    across all three replay scenarios — the backends are bit-identical
    by contract.  Skipped (with the one-line build-failure reason in the
    fingerprint) on hosts without a C compiler.
    """
    return _replay_stress("native")


def scenario_sharded_sweep() -> Dict:
    """The sharded-grid macro benchmark: serial vs plan → run → merge.

    Runs the QFT-7 / trans-crotonic-acid sweep grid once serially, then
    round-trips the same grid through the full sharded pipeline at 2 and
    4 shards — shard inputs written to and read back from disk, each
    shard executed independently, JSON outcome shards written, re-read
    and merged.  The fingerprint records whether the merged grid's
    deterministic rows and work counters are byte-identical to the
    serial run; :func:`sharded_consistency_failures` gates on it — a
    ``False`` means the shard pipeline changed results, a correctness
    bug regardless of timings.  Wall time is recorded but exempt from
    the regression gate (see :data:`WALL_GATE_EXEMPT`); work counters
    are gated as usual.
    """
    specs, _ = build_sweep_specs(
        partial(qft_circuit, 7),
        trans_crotonic_acid(),
        molecule_factory("trans-crotonic-acid"),
        PAPER_THRESHOLDS,
    )
    before = STATS.snapshot()
    serial = ExperimentRunner().run(specs)
    serial_counters = STATS.delta_since(before)
    serial_rows = dump_json(deterministic_rows(serial))
    fingerprint: Dict = {
        "num_cells": len(specs),
        "num_subcircuits": [outcome.num_subcircuits for outcome in serial],
        "feasible": [outcome.feasible for outcome in serial],
    }
    for num_shards in (2, 4):
        plan = sharding.ShardPlan.build(specs, num_shards, "cost-balanced")
        shards = []
        with tempfile.TemporaryDirectory() as tmp:
            for index in range(plan.num_shards):
                shard_path = os.path.join(tmp, f"shard-{index}.pkl")
                sharding.write_shard(plan.shard_input(index), shard_path)
                outcome_shard = sharding.execute_shard(
                    sharding.read_shard(shard_path)
                )
                out_path = os.path.join(tmp, f"outcomes-{index}.json")
                sharding.write_outcome_shard(outcome_shard, out_path)
                shards.append(sharding.read_outcome_shard(out_path))
        merged = sharding.merge_shards(shards, plan=plan)
        fingerprint[f"rows_identical_{num_shards}"] = (
            dump_json(deterministic_rows(merged.outcomes)) == serial_rows
        )
        fingerprint[f"counters_identical_{num_shards}"] = work_counters(
            merged.counters
        ) == work_counters(serial_counters)
    return fingerprint


def _placer_run_fingerprint(result) -> Tuple:
    """An exact fingerprint of one placement run (for determinism gates)."""
    return (
        result.total_runtime,
        result.num_subcircuits,
        len(result.swap_stages),
        tuple(
            tuple(sorted((repr(q), repr(n)) for q, n in stage.placement.items()))
            for stage in result.stages
        ),
    )


def scenario_large_host_anneal() -> Dict:
    """The 1000+-node macro benchmark: annealing where exact search cannot go.

    Places a 24-qubit random nearest-neighbour circuit onto a 1024-node
    ``grid:32x32`` with ``anneal:11x600``.  The exact engine is hopeless
    at this host size — enumerating even one workspace's candidate set
    means fine tuning ~100 monomorphisms over 1024 allowed nodes each
    (millions of delta evaluations), on top of a worst-case-exponential
    enumeration; see ``docs/placers.md`` for measured blowup.  The
    scenario runs the placement twice and fingerprints both: the
    ``deterministic`` key (gated by
    :func:`placer_consistency_failures`) asserts the same-seed runs are
    identical.
    """
    environment = grid(32, 32)
    circuit = random_chain_instance(24, 72, 11)
    options = PlacementOptions(threshold=10.0, placer="anneal:11x600")
    first = place_circuit(circuit, environment, options)
    second = place_circuit(circuit, environment, options)
    return {
        "host_nodes": environment.num_qubits,
        "total_runtime": round(first.total_runtime, 6),
        "num_subcircuits": first.num_subcircuits,
        "num_swap_stages": len(first.swap_stages),
        "deterministic": _placer_run_fingerprint(first)
        == _placer_run_fingerprint(second),
    }


def scenario_exact_vs_anneal() -> Dict:
    """Quality/time ablation: exact vs annealed placement on a small grid.

    An 8-qubit arbitrary-pair random circuit on ``grid:4x5`` — small
    enough for the exact engine, structured enough (multiple workspaces,
    swap stages) that the annealer has real work to do.  The fingerprint
    records both engines' total runtimes and their quality ratio; wall
    times of the two phases can be compared across baselines.  The
    ``deterministic`` key gates same-seed anneal reproducibility; the
    quality ratio is *recorded*, not gated against the exact optimum —
    the annealer's contract is determinism, not optimality.
    """
    environment = grid(4, 5)
    circuit = random_circuit_instance(8, 20, 5)
    exact = place_circuit(
        circuit, environment, PlacementOptions(threshold=10.0)
    )
    anneal_options = PlacementOptions(threshold=10.0, placer="anneal:5x400")
    annealed = place_circuit(circuit, environment, anneal_options)
    repeat = place_circuit(circuit, environment, anneal_options)
    return {
        "exact_runtime": round(exact.total_runtime, 6),
        "anneal_runtime": round(annealed.total_runtime, 6),
        "quality_ratio": round(annealed.total_runtime / exact.total_runtime, 4),
        "deterministic": _placer_run_fingerprint(annealed)
        == _placer_run_fingerprint(repeat),
    }


def scenario_monomorphism_micro() -> Dict:
    """Raw enumerator stress: paths and grids embedded into sparse hosts."""
    host_hex = heavy_hex(3)
    graph_hex = host_hex.adjacency_graph(10.0)
    host_grid = grid(5, 5)
    graph_grid = host_grid.adjacency_graph(10.0)
    counts = [
        len(find_monomorphisms(nx.path_graph(12), graph_hex, max_count=100)),
        len(find_monomorphisms(nx.cycle_graph(8), graph_grid, max_count=100)),
        len(find_monomorphisms(nx.star_graph(4), graph_grid, max_count=100)),
        # No triangle embeds into a bipartite grid: a full refutation search.
        len(find_monomorphisms(nx.complete_graph(3), graph_grid, max_count=1)),
    ]
    return {"mapping_counts": counts}


#: Registry of named scenarios (insertion order is the report order).
SCENARIOS: Dict[str, Callable[[], Dict]] = {
    "sweep_qft7_crotonic": scenario_sweep_qft7_crotonic,
    "sweep_qft8_histidine": scenario_sweep_qft8_histidine,
    "place_phaseest_crotonic": scenario_place_phaseest_crotonic,
    "place_aqft9_histidine": scenario_place_aqft9_histidine,
    "place_qec5_boc": scenario_place_qec5_boc,
    "scalability_chain32": scenario_scalability_chain32,
    "monomorphism_micro": scenario_monomorphism_micro,
    "large_host_anneal": scenario_large_host_anneal,
    "exact_vs_anneal": scenario_exact_vs_anneal,
    "parallel_sweep_jobs1": scenario_parallel_sweep_jobs1,
    "parallel_sweep_jobs2": scenario_parallel_sweep_jobs2,
    "parallel_sweep_jobs4": scenario_parallel_sweep_jobs4,
    "replay_python": scenario_replay_python,
    "replay_numpy": scenario_replay_numpy,
    "replay_native": scenario_replay_native,
    "sharded_sweep": scenario_sharded_sweep,
}


def run_scenario(name: str, repeats: int = 3) -> Dict:
    """Run one scenario ``repeats`` times; report best wall time.

    Counter deltas and the fingerprint are taken from the first repeat
    (fresh caches); later repeats only tighten the wall-time measurement.
    """
    function = SCENARIOS[name]
    wall_times: List[float] = []
    fingerprint: Dict = {}
    metrics: Dict[str, int] = {}
    for repeat in range(max(1, repeats)):
        before = STATS.snapshot()
        start = time.perf_counter()
        result = function()
        wall_times.append(time.perf_counter() - start)
        if repeat == 0:
            delta = STATS.delta_since(before)
            metrics = {
                key: delta.get(key, 0)
                for key in TRACKED_COUNTERS
                if key in delta
            }
            fingerprint = result
    hits = metrics.get("environment.adjacency_cache_hits", 0)
    misses = metrics.get("environment.adjacency_cache_misses", 0)
    cache_rates = {}
    if hits + misses:
        cache_rates["adjacency_cache_hit_rate"] = round(hits / (hits + misses), 4)
    encoding_hits = metrics.get("monomorphism.host_encoding_hits", 0)
    encodings = metrics.get("monomorphism.host_encodings", 0)
    if encoding_hits + encodings:
        cache_rates["host_encoding_hit_rate"] = round(
            encoding_hits / (encoding_hits + encodings), 4
        )
    return {
        "wall_time_s": round(min(wall_times), 6),
        "metrics": {**metrics, **cache_rates},
        "fingerprint": fingerprint,
    }


def run_all(repeats: int = 3, names=None) -> Dict[str, Dict]:
    """Run registered scenarios (all, or a ``names`` subset) by name.

    Unknown names raise ``KeyError`` up front rather than silently
    shrinking the run; the subset keeps registry order.
    """
    if names is None:
        selected = list(SCENARIOS)
    else:
        unknown = [name for name in names if name not in SCENARIOS]
        if unknown:
            raise KeyError(
                f"unknown scenario(s) {unknown}; known: {list(SCENARIOS)}"
            )
        selected = [name for name in SCENARIOS if name in set(names)]
    return {name: run_scenario(name, repeats=repeats) for name in selected}


def parallel_consistency_failures(current: Dict[str, Dict]) -> List[str]:
    """Cross-scenario gate: every ``parallel_sweep_jobs*`` run must agree.

    The worker count is an execution detail; if the four-worker sweep
    fingerprint (ignoring the ``jobs`` tag itself) differs from the serial
    one, parallel execution changed the results — a determinism bug, not a
    performance regression.
    """
    failures: List[str] = []
    reference_name = "parallel_sweep_jobs1"
    reference = current.get(reference_name)
    if reference is None:
        return failures
    expected = {k: v for k, v in reference["fingerprint"].items() if k != "jobs"}
    for name, data in current.items():
        if not name.startswith("parallel_sweep_jobs") or name == reference_name:
            continue
        found = {k: v for k, v in data["fingerprint"].items() if k != "jobs"}
        if found != expected:
            failures.append(
                f"{name}: fingerprint diverged from {reference_name} "
                f"({found!r} != {expected!r}); parallel execution changed results"
            )
    return failures


def replay_consistency_failures(current: Dict[str, Dict]) -> List[str]:
    """Cross-backend gate: the ``replay_*`` scenarios must agree exactly.

    The evaluation backend is an execution detail with a bit-identical
    contract; if the numpy or native replay fingerprint (ignoring the
    ``backend`` tag) differs from the python one, the backends computed
    different runtimes — a correctness bug, not a performance regression.
    A ``skipped`` fingerprint (missing numpy, no C compiler) is exempt:
    no work ran, so there is nothing to compare.
    """
    failures: List[str] = []
    reference = current.get("replay_python")
    if reference is None:
        return failures
    expected = {
        k: v for k, v in reference["fingerprint"].items() if k != "backend"
    }
    for name in ("replay_numpy", "replay_native"):
        other = current.get(name)
        if other is None:
            continue
        found = {
            k: v for k, v in other["fingerprint"].items() if k != "backend"
        }
        if "skipped" in found:
            continue
        if found != expected:
            failures.append(
                f"{name}: fingerprint diverged from replay_python "
                f"({found!r} != {expected!r}); the backends are no longer "
                "bit-identical"
            )
    return failures


def sharded_consistency_failures(current: Dict[str, Dict]) -> List[str]:
    """Round-trip gate: the sharded pipeline must reproduce the serial grid.

    The ``sharded_sweep`` scenario records, in its fingerprint, whether
    the 2- and 4-shard plan → run → merge round trips produced
    byte-identical deterministic rows and identical merged work counters
    compared to the serial run of the same grid.  Any ``False`` is a
    correctness bug in the sharding layer — gate immediately, like the
    worker-count and backend consistency gates.
    """
    failures: List[str] = []
    data = current.get("sharded_sweep")
    if data is None:
        return failures
    for key, value in sorted(data.get("fingerprint", {}).items()):
        if key.startswith(("rows_identical", "counters_identical")) and value is not True:
            failures.append(
                f"sharded_sweep: {key} is {value!r}; the sharded "
                "plan->run->merge round trip no longer reproduces the "
                "serial grid"
            )
    return failures


def placer_consistency_failures(current: Dict[str, Dict]) -> List[str]:
    """Determinism gate: same-seed heuristic placements must be identical.

    The heuristic-placer scenarios run each anneal twice in-process and
    record fingerprint equality under ``deterministic``.  ``PYTHONHASHSEED``
    and worker-count independence are covered by ``tests/test_placers.py``
    subprocess tests; this gate catches any in-process nondeterminism (e.g.
    an engine reading the ``random`` module's global state) on every bench
    run.  The annealer's contract is same-seed reproducibility, *not*
    matching the exact optimum, so quality ratios are recorded but never
    gated here.
    """
    failures: List[str] = []
    for name in ("large_host_anneal", "exact_vs_anneal"):
        data = current.get(name)
        if data is None:
            continue
        if data.get("fingerprint", {}).get("deterministic") is not True:
            failures.append(
                f"{name}: same-seed anneal runs diverged ('deterministic' "
                "is not True); the heuristic placer broke its determinism "
                "contract"
            )
    return failures


def check_results(
    baseline: Dict[str, Dict],
    current: Dict[str, Dict],
    tolerance: float = 0.20,
    min_wall_time_s: float = 0.15,
) -> List[str]:
    """Compare a fresh run against a committed baseline.

    Returns a list of human-readable failure strings, one per regression:
    a tracked scenario whose wall time or deterministic counters grew by
    more than ``tolerance`` (wall times below ``min_wall_time_s`` in the
    baseline are too noisy to gate on and are covered by their counters and
    fingerprints instead), a scenario whose output fingerprint changed (it
    no longer does the same work), or a scenario that disappeared.  Improvements never fail — refresh the baseline with
    ``run_bench.py --update`` to lock them in.

    Multi-worker scenarios (fingerprint ``jobs > 1``) get two exemptions:

    * the **wall-time gate** — process-pool start-up and scheduling make
      their wall times contention-sensitive, especially on hosts with
      fewer cores than workers;
    * **per-process cache counters** (names containing ``cache`` or
      ``host_encoding``) — how many encodings/graphs each worker builds
      depends on which cells the pool hands it, so those totals vary with
      scheduling even though every cell's *work* is deterministic.

    Work counters (searches, nodes explored, scheduler evaluations) are
    per-cell deterministic wherever the cell runs, so their sums are still
    gated exactly; fingerprints and cross-``jobs`` / cross-backend
    consistency (see :func:`parallel_consistency_failures` and
    :func:`replay_consistency_failures`) are gated for every scenario,
    and the serial ``jobs=1`` twin gates the underlying work's wall time
    and full counter set.
    """
    failures: List[str] = list(parallel_consistency_failures(current))
    failures.extend(replay_consistency_failures(current))
    failures.extend(sharded_consistency_failures(current))
    failures.extend(placer_consistency_failures(current))
    baseline_scenarios = baseline.get("scenarios", baseline)
    for name, base in baseline_scenarios.items():
        now = current.get(name)
        if now is None:
            failures.append(f"{name}: scenario missing from current run")
            continue
        if "skipped" in now.get("fingerprint", {}) or "skipped" in base.get(
            "fingerprint", {}
        ):
            # A scenario may be skipped where a prerequisite is missing
            # (e.g. replay_numpy without numpy); without the work there is
            # nothing meaningful to gate against the baseline.
            continue
        base_wall = base.get("wall_time_s", 0.0)
        now_wall = now.get("wall_time_s", 0.0)
        multi_worker = base.get("fingerprint", {}).get("jobs", 1) > 1
        if (
            not multi_worker
            and name not in WALL_GATE_EXEMPT
            and base_wall >= min_wall_time_s
            and now_wall > base_wall * (1 + tolerance)
        ):
            failures.append(
                f"{name}: wall time regressed {base_wall:.4f}s -> "
                f"{now_wall:.4f}s (> {tolerance:.0%})"
            )
        base_metrics = base.get("metrics", {})
        now_metrics = now.get("metrics", {})
        for key, base_value in base_metrics.items():
            if key.endswith("_rate") or not isinstance(base_value, (int, float)):
                continue
            if multi_worker and ("cache" in key or "host_encoding" in key):
                continue
            now_value = now_metrics.get(key, 0)
            if base_value > 0 and now_value > base_value * (1 + tolerance):
                failures.append(
                    f"{name}: {key} regressed {base_value} -> {now_value} "
                    f"(> {tolerance:.0%})"
                )
        base_fingerprint = base.get("fingerprint")
        now_fingerprint = now.get("fingerprint")
        if base_fingerprint is not None and now_fingerprint != base_fingerprint:
            failures.append(
                f"{name}: output fingerprint changed "
                f"{base_fingerprint!r} -> {now_fingerprint!r} "
                "(the scenario no longer does the same work; if intentional, "
                "refresh the baseline with run_bench.py --update)"
            )
    return failures
