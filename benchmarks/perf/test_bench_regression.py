"""Optional benchmark-regression gate (``pytest -m bench``).

Runs every scenario of ``bench_harness`` and fails if any tracked
benchmark regressed more than 20% against the committed
``BENCH_placement.json`` baseline — the pytest face of
``scripts/run_bench.py --check``.  Excluded from the tier-1 suite via the
``bench`` marker (see ``pytest.ini``); run explicitly with::

    PYTHONPATH=src python -m pytest -m bench benchmarks/perf -q

Wall-clock tolerances are machine-sensitive; on very different hardware
use ``REPRO_BENCH_TOLERANCE`` (e.g. ``=0.5``) or regenerate the baseline
with ``python scripts/run_bench.py``.
"""

import json
import os
from pathlib import Path

import pytest

import bench_harness

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BASELINE = REPO_ROOT / "BENCH_placement.json"


@pytest.mark.bench
def test_benchmarks_do_not_regress():
    assert BASELINE.exists(), (
        "no committed BENCH_placement.json baseline; "
        "generate one with: python scripts/run_bench.py"
    )
    baseline = json.loads(BASELINE.read_text())
    tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.20"))
    current = bench_harness.run_all(repeats=3)
    failures = bench_harness.check_results(baseline, current, tolerance=tolerance)
    assert not failures, "benchmark regressions:\n" + "\n".join(failures)


@pytest.mark.bench
def test_all_scenarios_produce_metrics():
    """Every scenario reports a wall time and at least one counter metric."""
    results = bench_harness.run_all(repeats=1)
    assert len(results) >= 6
    for name, data in results.items():
        assert data["wall_time_s"] > 0, name
        assert data["metrics"], name
        assert data["fingerprint"], name


@pytest.mark.bench
def test_parallel_sweep_fingerprints_agree_across_worker_counts():
    """jobs=1/2/4 runs of the parallel-sweep macro must produce one output."""
    results = {
        name: bench_harness.run_scenario(name, repeats=1)
        for name in bench_harness.SCENARIOS
        if name.startswith("parallel_sweep_jobs")
    }
    assert len(results) == 3
    assert not bench_harness.parallel_consistency_failures(results)


@pytest.mark.bench
def test_replay_fingerprints_agree_across_backends():
    """The python and numpy replay scenarios must produce one output."""
    results = {
        name: bench_harness.run_scenario(name, repeats=1)
        for name in ("replay_python", "replay_numpy")
    }
    assert not bench_harness.replay_consistency_failures(results)


@pytest.mark.bench
def test_replay_gate_detects_divergence_and_tolerates_skips():
    """Gate logic on synthetic reports: divergence fails, a skip does not."""
    agree = {
        "replay_python": {"fingerprint": {"backend": "python", "checksum": 1.5}},
        "replay_numpy": {"fingerprint": {"backend": "numpy", "checksum": 1.5}},
    }
    assert not bench_harness.replay_consistency_failures(agree)
    diverged = {
        "replay_python": {"fingerprint": {"backend": "python", "checksum": 1.5}},
        "replay_numpy": {"fingerprint": {"backend": "numpy", "checksum": 2.5}},
    }
    assert bench_harness.replay_consistency_failures(diverged)
    skipped = {
        "replay_python": {"fingerprint": {"backend": "python", "checksum": 1.5}},
        "replay_numpy": {"fingerprint": {"backend": "numpy", "skipped": "no numpy"}},
    }
    assert not bench_harness.replay_consistency_failures(skipped)
    # check_results must not flag a skipped scenario against a real baseline.
    baseline = {
        "scenarios": {
            "replay_numpy": {
                "wall_time_s": 0.2,
                "metrics": {"scheduler.full_evals": 5},
                "fingerprint": {"backend": "numpy", "checksum": 1.5},
            }
        }
    }
    failures = bench_harness.check_results(baseline, skipped)
    assert not [f for f in failures if "replay_numpy" in f]


@pytest.mark.bench
def test_sharded_gate_detects_divergence():
    """Gate logic on synthetic reports: any non-True identity flag fails."""
    healthy = {
        "sharded_sweep": {
            "fingerprint": {
                "rows_identical_2": True,
                "counters_identical_2": True,
                "rows_identical_4": True,
                "counters_identical_4": True,
            }
        }
    }
    assert not bench_harness.sharded_consistency_failures(healthy)
    diverged = {
        "sharded_sweep": {
            "fingerprint": {"rows_identical_2": False, "counters_identical_2": True}
        }
    }
    failures = bench_harness.sharded_consistency_failures(diverged)
    assert failures and "rows_identical_2" in failures[0]
    # Subset runs without the scenario have nothing to gate.
    assert not bench_harness.sharded_consistency_failures({})
    # ... and the failure propagates through check_results.
    assert any("rows_identical_2" in f for f in
               bench_harness.check_results({}, diverged))
