"""Experiments E5 / E6 — Figures 1 and 2: the paper's worked-example inputs.

Figure 1 is the acetyl chloride environment (delays of the three nuclei and
three couplings); Figure 2 is the 3-qubit error-correction encoder pulse
sequence.  This benchmark prints both in tabular form and checks the derived
quantities the paper states about them (9 gates, 2 interactions, delays that
reproduce Example 3 exactly).
"""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.circuits.library import qec3_encoder
from repro.hardware.molecules import acetyl_chloride


def test_figure1_environment_graph(benchmark):
    environment = run_once(benchmark, acetyl_chloride)

    rows = [["single-qubit", node, f"{environment.single_qubit_delay(node):g}"]
            for node in environment.nodes]
    rows += [["two-qubit", f"{a}-{b}", f"{delay:g}"]
             for (a, b), delay in sorted(environment.explicit_pairs().items())]
    print()
    print(format_table(["kind", "nuclei", "delay (1e-4 s)"], rows,
                       title="Figure 1 — acetyl chloride interaction graph"))

    assert environment.num_qubits == 3
    assert environment.minimal_connecting_threshold() == 89.0
    # The slow M-C2 coupling is what makes the naive mapping cost 770.
    assert environment.pair_delay("M", "C2") > 5 * environment.pair_delay("C1", "C2")


def test_figure2_encoder_circuit(benchmark):
    circuit = run_once(benchmark, qec3_encoder)

    rows = [[index, repr(gate), f"{gate.duration:g}"]
            for index, gate in enumerate(circuit)]
    print()
    print(format_table(["#", "gate", "T(G)"], rows,
                       title="Figure 2 — 3-qubit error-correction encoder"))

    assert circuit.num_gates == 9
    assert circuit.num_qubits == 3
    assert circuit.num_two_qubit_gates == 2
    assert circuit.interactions() == [("a", "b"), ("b", "c")]
    # Only the Ry pulses and ZZ interactions cost time.
    assert sum(1 for gate in circuit if gate.duration > 0) == 5
