"""Experiment E4 — Table 4: scalability over linear nearest-neighbour chains.

Random "hidden stage" circuits on N-qubit 1 kHz chains.  The benchmark
reports, per N: the gate count, the number of hidden stages, the number of
subcircuits the placer discovered, the placed circuit's runtime and the
software's own running time — exactly the paper's columns.

Qualitative assertions:

* the placer discovers exactly one subcircuit per hidden stage
  ("This column exactly corresponds to the number of hidden stages");
* the placed circuit's runtime grows with N;
* the software runtime stays practical for the default sizes.

The paper runs N up to 1024 (taking ~48 hours in C++); the default sweep
stops at 64 qubits and the larger points can be enabled with
``REPRO_BENCH_SLOW=1``.
"""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.analysis.scalability import run_scalability_sweep

#: The paper's Table 4 (qubits, gates, hidden stages, subcircuits, circuit
#: runtime seconds, software seconds) for side-by-side printing.
PAPER_TABLE4 = {
    8: (72, 3, 3, 0.118, 0.02),
    16: (256, 4, 4, 0.458, 0.12),
    32: (800, 5, 5, 0.937, 1.34),
    64: (2304, 6, 6, 2.747, 7.52),
    128: (6272, 7, 7, 7.147, 69.63),
    256: (16384, 8, 8, 16.88, 674.96),
    512: (41472, 9, 9, 38.107, 9328.0),
    1024: (102400, 10, 10, 86.282, 173296.0),
}

DEFAULT_SIZES = (8, 16, 32, 64)
SLOW_SIZES = (8, 16, 32, 64, 128)


def test_table4_chain_scalability(benchmark, include_slow_benchmarks):
    sizes = SLOW_SIZES if include_slow_benchmarks else DEFAULT_SIZES

    records = run_once(benchmark, run_scalability_sweep, sizes, 0)

    rows = []
    for record in records:
        paper = PAPER_TABLE4.get(record.num_qubits)
        rows.append(
            [
                record.num_qubits,
                record.num_gates,
                record.hidden_stages,
                record.num_subcircuits,
                f"{record.circuit_runtime_seconds:.3f} sec",
                f"{paper[3]:.3f} sec" if paper else "-",
                f"{record.software_runtime_seconds:.2f} s",
                f"{paper[4]:.2f} s" if paper else "-",
            ]
        )
    print()
    print(
        format_table(
            ["qubits", "gates", "hidden stages", "subcircuits",
             "circuit runtime", "paper runtime", "software time", "paper software time"],
            rows,
            title="Table 4 — performance test for circuit placement over chains",
        )
    )

    for record in records:
        paper = PAPER_TABLE4[record.num_qubits]
        # Gate counts follow the same N*log2(N)*log2(N) construction.
        assert record.num_gates == paper[0]
        assert record.hidden_stages == paper[1]
        # The central claim: one subcircuit per hidden stage.
        assert record.num_subcircuits == record.hidden_stages

    # Circuit runtime grows monotonically with N and stays within an order
    # of magnitude of the paper's values (same workload, same 1 kHz chain).
    runtimes = [record.circuit_runtime_seconds for record in records]
    assert runtimes == sorted(runtimes)
    for record in records:
        paper_runtime = PAPER_TABLE4[record.num_qubits][3]
        assert record.circuit_runtime_seconds < 10 * paper_runtime
        assert record.circuit_runtime_seconds > paper_runtime / 10
