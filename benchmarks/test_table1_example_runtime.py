"""Experiment E1 — Table 1 / Example 3: runtime calculation on acetyl chloride.

Regenerates the paper's Table 1 (the per-qubit busy-time trace of the
{a→M, b→C2, c→C1} mapping, total 770 units) and checks the optimal mapping
(136 units, i.e. the 0.0136 s of Table 2's first row).  These numbers are
pinned exactly because every input is fully specified in the paper.
"""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.circuits.library import qec3_encoder
from repro.core.exhaustive import optimal_whole_circuit_placement
from repro.hardware.molecules import acetyl_chloride
from repro.timing.scheduler import circuit_runtime, schedule
from repro.timing.trace import format_trace

PAPER_MAPPING = {"a": "M", "b": "C2", "c": "C1"}
PAPER_RUNTIME = 770.0
PAPER_OPTIMUM = 136.0


def test_table1_trace(benchmark):
    """The Table 1 trace and its 770-unit total."""
    circuit = qec3_encoder()
    environment = acetyl_chloride()

    result = run_once(benchmark, schedule, circuit, PAPER_MAPPING, environment)

    print()
    print("Table 1 — cost of the {a->M, b->C2, c->C1} mapping")
    print(format_trace(result, qubit_order=["a", "b", "c"]))
    print(f"paper runtime: {PAPER_RUNTIME:g} units / measured: {result.runtime:g} units")

    assert result.runtime == PAPER_RUNTIME


def test_example3_optimal_placement(benchmark):
    """Exhaustive search over the 6 assignments finds the paper's 136-unit optimum."""
    circuit = qec3_encoder()
    environment = acetyl_chloride()

    placement, runtime = run_once(
        benchmark,
        optimal_whole_circuit_placement,
        circuit,
        environment,
        apply_interaction_cap=False,
    )

    rows = [
        ["paper optimum", f"{PAPER_OPTIMUM:g} units", "a->C2, b->C1, c->M"],
        ["measured optimum", f"{runtime:g} units",
         ", ".join(f"{q}->{n}" for q, n in sorted(placement.items()))],
    ]
    print()
    print(format_table(["", "runtime", "mapping"], rows, title="Example 3 — optimal placement"))

    assert runtime == PAPER_OPTIMUM
    assert placement == {"a": "C2", "b": "C1", "c": "M"}
    # Sanity: the paper's suboptimal mapping really is 770.
    assert circuit_runtime(circuit, PAPER_MAPPING, environment) == PAPER_RUNTIME
