"""Experiment E11 — ablation: the depth-2 lookahead of Section 5.3.

The original implementation combines each candidate monomorphism with the
best follow-up for the next workspace ("depth-2 look ahead algorithm that
combines the cost of a potential mapping with the associated swap cost and
all of the potential next stage mappings and swap costs").  The benchmark
places the Table 3 workloads with the lookahead on and off and reports the
total runtimes.
"""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.circuits.library import phaseest, qft6
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.hardware.molecules import histidine, trans_crotonic_acid

CASES = [
    ("phaseest", phaseest, trans_crotonic_acid, 100.0),
    ("qft6", qft6, trans_crotonic_acid, 100.0),
    ("phaseest", phaseest, histidine, 500.0),
    ("qft6", qft6, histidine, 500.0),
]


def test_lookahead_ablation(benchmark):
    def runner():
        results = []
        for name, circuit_factory, environment_factory, threshold in CASES:
            environment = environment_factory()
            with_lookahead = place_circuit(
                circuit_factory(), environment,
                PlacementOptions(threshold=threshold, lookahead=True),
            )
            without_lookahead = place_circuit(
                circuit_factory(), environment,
                PlacementOptions(threshold=threshold, lookahead=False),
            )
            results.append(
                (name, environment.name, with_lookahead, without_lookahead)
            )
        return results

    results = run_once(benchmark, runner)

    rows = []
    for name, environment_name, with_la, without_la in results:
        rows.append(
            [
                f"{name} on {environment_name}",
                f"{with_la.runtime_seconds:.4f} sec ({with_la.num_subcircuits})",
                f"{without_la.runtime_seconds:.4f} sec ({without_la.num_subcircuits})",
            ]
        )
    print()
    print(
        format_table(
            ["workload", "with lookahead", "greedy (no lookahead)"],
            rows,
            title="Ablation — depth-2 lookahead",
        )
    )

    for name, environment_name, with_la, without_la in results:
        # The lookahead may only change which placements are selected; both
        # configurations must remain feasible, use the same decomposition
        # granularity, and stay within a modest factor of each other.
        assert with_la.num_subcircuits == without_la.num_subcircuits
        assert with_la.total_runtime <= without_la.total_runtime * 1.6 + 1e-9
