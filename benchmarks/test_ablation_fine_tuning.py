"""Ablation: hill-climbing fine tuning of workspace placements (Section 5.1).

Fine tuning "shuffles the solution taking the actual numbers that represent
the length of each gate into account".  The benchmark places the worked
example and the Table 3 molecules with fine tuning on and off; without it
the first enumerated monomorphism is taken as-is, which on acetyl chloride
visibly misses the 136-unit optimum.
"""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.circuits.library import phaseest, qec3_encoder, qft6
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.hardware.molecules import acetyl_chloride, trans_crotonic_acid

CASES = [
    ("encoder", qec3_encoder, acetyl_chloride, None),
    ("phaseest", phaseest, trans_crotonic_acid, 100.0),
    ("qft6", qft6, trans_crotonic_acid, 200.0),
]


def test_fine_tuning_ablation(benchmark):
    def runner():
        results = []
        for name, circuit_factory, environment_factory, threshold in CASES:
            environment = environment_factory()
            tuned = place_circuit(
                circuit_factory(), environment,
                PlacementOptions(threshold=threshold, fine_tuning=True),
            )
            untuned = place_circuit(
                circuit_factory(), environment,
                PlacementOptions(
                    threshold=threshold, fine_tuning=False, max_monomorphisms=1
                ),
            )
            results.append((name, environment.name, tuned, untuned))
        return results

    results = run_once(benchmark, runner)

    rows = [
        [
            f"{name} on {environment_name}",
            f"{tuned.runtime_seconds:.4f} sec",
            f"{untuned.runtime_seconds:.4f} sec",
        ]
        for name, environment_name, tuned, untuned in results
    ]
    print()
    print(
        format_table(
            ["workload", "fine tuning + k=100", "first monomorphism only"],
            rows,
            title="Ablation — hill-climbing fine tuning",
        )
    )

    for name, _, tuned, untuned in results:
        assert tuned.total_runtime <= untuned.total_runtime + 1e-9, name

    # On the fully pinned example, fine tuning is what recovers the optimum.
    encoder_tuned = results[0][2]
    assert encoder_tuned.total_runtime == 136.0
