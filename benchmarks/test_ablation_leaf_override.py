"""Experiment E10 — ablation: the leaf–target value override heuristic.

Section 5.3 reports that the override "helped to reduce the depth of the
swapping stage on the order of 0-5%".  The benchmark routes a batch of
random permutations over the molecule bond graphs and a chain with the
heuristic on and off and reports the average depth change.
"""

import random

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.hardware.architectures import linear_chain
from repro.hardware.molecules import histidine, trans_crotonic_acid
from repro.routing.bubble import route_permutation
from repro.simulation.verify import verify_routing_layers

CASES = [
    ("trans-crotonic acid", trans_crotonic_acid, 100.0),
    ("histidine", histidine, 100.0),
    ("chain-12", lambda: linear_chain(12), 10.0),
]

TRIALS = 20


def test_leaf_override_ablation(benchmark):
    def runner():
        rng = random.Random(7)
        summary = []
        for name, factory, threshold in CASES:
            graph = factory().adjacency_graph(threshold)
            nodes = list(graph.nodes())
            depth_on = 0
            depth_off = 0
            for _ in range(TRIALS):
                shuffled = list(nodes)
                rng.shuffle(shuffled)
                permutation = dict(zip(nodes, shuffled))
                with_override = route_permutation(graph, permutation, leaf_override=True)
                without_override = route_permutation(graph, permutation, leaf_override=False)
                assert verify_routing_layers(with_override.layers, permutation)
                assert verify_routing_layers(without_override.layers, permutation)
                depth_on += with_override.depth
                depth_off += without_override.depth
            summary.append((name, depth_on / TRIALS, depth_off / TRIALS))
        return summary

    summary = run_once(benchmark, runner)

    rows = []
    for name, depth_on, depth_off in summary:
        change = 100.0 * (depth_off - depth_on) / depth_off if depth_off else 0.0
        rows.append([name, f"{depth_on:.2f}", f"{depth_off:.2f}", f"{change:+.1f}%"])
    print()
    print(
        format_table(
            ["architecture", "avg depth (override on)", "avg depth (override off)",
             "depth reduction"],
            rows,
            title="Ablation — leaf-target value override (paper: 0-5% depth reduction)",
        )
    )

    # The heuristic must never be a large regression; the paper's observed
    # benefit is small, so we only assert it stays within a modest band.
    for name, depth_on, depth_off in summary:
        assert depth_on <= depth_off * 1.15 + 1.0, name
