"""Experiment E8 — Section 4: the Hamiltonian-cycle reduction.

Builds the reduction instance for a family of small graphs and checks, by
exhaustive search on both sides, that a zero-runtime placement exists if and
only if the graph has a Hamiltonian cycle — the equivalence the paper's
NP-completeness proof rests on.
"""

import networkx as nx
from conftest import run_once

from repro.analysis.reporting import format_table
from repro.complexity.hamiltonian_cycle import (
    find_zero_cost_placement,
    has_hamiltonian_cycle,
    verify_reduction,
)

GRAPHS = [
    ("cycle C6", nx.cycle_graph(6)),
    ("complete K5", nx.complete_graph(5)),
    ("path P6 (no cycle)", nx.path_graph(6)),
    ("star S5 (no cycle)", nx.star_graph(5)),
    ("Petersen (no cycle)", nx.petersen_graph()),
    ("grid 2x3", nx.convert_node_labels_to_integers(nx.grid_2d_graph(2, 3))),
    ("random G(7, 0.5)", nx.gnp_random_graph(7, 0.5, seed=3)),
    ("random G(7, 0.2)", nx.gnp_random_graph(7, 0.2, seed=4)),
]


def test_hamiltonian_cycle_reduction(benchmark):
    def runner():
        results = []
        for name, graph in GRAPHS:
            placement = find_zero_cost_placement(graph)
            results.append((name, graph, placement, has_hamiltonian_cycle(graph)))
        return results

    results = run_once(benchmark, runner)

    rows = []
    for name, graph, placement, hamiltonian in results:
        rows.append(
            [
                name,
                graph.number_of_nodes(),
                "yes" if hamiltonian else "no",
                "0 (found)" if placement is not None else "> 0 (none exists)",
            ]
        )
    print()
    print(
        format_table(
            ["graph H", "vertices", "Hamiltonian cycle?", "minimal placement runtime"],
            rows,
            title="Section 4 — Hamiltonian-cycle reduction (zero-cost placement iff cycle)",
        )
    )

    for name, graph, placement, hamiltonian in results:
        assert (placement is not None) == hamiltonian, name
        assert verify_reduction(graph), name
