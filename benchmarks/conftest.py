"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
it in the paper's layout (``paper`` value next to ``measured`` value) so the
two can be compared side by side.  Absolute runtimes are not expected to
match — the molecule coupling tables are reconstructions (see DESIGN.md) —
but the qualitative shape asserted in each benchmark must hold.
"""

from __future__ import annotations

import os

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The placement flows benchmarked here take from milliseconds to seconds;
    a single round keeps the whole harness fast while still recording a
    meaningful wall-clock number for every experiment.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def include_slow_benchmarks() -> bool:
    """Whether to include the long-running points (set REPRO_BENCH_SLOW=1)."""
    return os.environ.get("REPRO_BENCH_SLOW", "0") == "1"
