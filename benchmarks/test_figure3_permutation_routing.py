"""Experiment E7 — Figure 3 / Example 4: SWAP routing on trans-crotonic acid.

The paper permutes the values stored in the seven spins of trans-crotonic
acid along the chemical-bond graph, cutting the graph at "cut 1" into
{M, C1, H1, C2} and {C3, H2, C4} (separability 1/2) and letting water/air
"bubbles" settle in three parallel SWAP steps before the recursion splits
the problem in two.

The benchmark regenerates the cut, the separability value and the routed
SWAP layers, and checks the paper's structural claims.
"""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.hardware.molecules import trans_crotonic_acid
from repro.routing.bubble import route_permutation
from repro.routing.separators import balanced_connected_bisection, separability
from repro.simulation.verify import verify_routing_layers

#: The permutation of Example 4 (top row moves to bottom row).
FIGURE3_PERMUTATION = {
    "M": "C1",
    "C1": "C2",
    "H1": "C3",
    "C2": "C4",
    "C3": "H2",
    "H2": "H1",
    "C4": "M",
}


def test_figure3_cut_and_separability(benchmark):
    environment = trans_crotonic_acid()
    graph = environment.adjacency_graph(100.0)

    bisection = run_once(benchmark, balanced_connected_bisection, graph)

    print()
    print("Figure 3 — cutting the chemical-bond graph of trans-crotonic acid")
    print(f"  part one: {sorted(bisection.part_one)}")
    print(f"  part two: {sorted(bisection.part_two)}")
    print(f"  channel edges: {sorted(bisection.channel_edges)}")
    print(f"  separability s = {separability(graph):g} (paper: 1/2)")

    # A 7-node tree splits 4 / 3; the paper's cut 1 does exactly that.
    assert {len(bisection.part_one), len(bisection.part_two)} == {4, 3}
    assert separability(graph) == 0.5


def test_figure3_permutation_routing(benchmark):
    environment = trans_crotonic_acid()
    graph = environment.adjacency_graph(100.0)

    result = run_once(benchmark, route_permutation, graph, FIGURE3_PERMUTATION)

    rows = [[index, ", ".join(f"{a}<->{b}" for a, b in layer)]
            for index, layer in enumerate(result.layers)]
    print()
    print(format_table(["step", "parallel SWAPs"], rows,
                       title="Figure 3 — routing the Example 4 permutation"))
    print(f"depth {result.depth}, {result.num_swaps} SWAPs")

    assert verify_routing_layers(result.layers, FIGURE3_PERMUTATION)
    # Linear-depth regime on the 7-node molecule; the paper's illustration
    # needs 3 cross-cut steps plus the within-side recursion.
    assert 3 <= result.depth <= 14
    assert result.num_swaps <= 2 * 7 + 7
    # Every SWAP uses a chemical bond (a fast interaction).
    for layer in result.layers:
        for a, b in layer:
            assert environment.pair_delay(a, b) <= 100.0
