"""Ablation (paper's "further research"): workspace-size balance and commutation.

The paper's conclusions point at two refinements of the greedy-maximal
strategy: balancing the depth of a computational stage against the depth of
the following swapping stage, and using gate commutation to obtain a more
favourable problem instance.  Both are implemented behind options; this
benchmark quantifies them on the Table 3 workloads.
"""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.circuits.library import phaseest, qft6
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.hardware.molecules import trans_crotonic_acid
from repro.timing.fidelity import FidelityModel, fidelity_of_placement_result

CASES = [
    ("phaseest", phaseest, 100.0),
    ("qft6", qft6, 200.0),
]

WORKSPACE_CAPS = (None, 4, 2)


def test_workspace_cap_and_commutation_ablation(benchmark):
    environment = trans_crotonic_acid()
    model = FidelityModel()

    def runner():
        rows = []
        for name, factory, threshold in CASES:
            for cap in WORKSPACE_CAPS:
                for reorder in (False, True):
                    options = PlacementOptions(
                        threshold=threshold,
                        max_workspace_two_qubit_gates=cap,
                        reorder_commuting_gates=reorder,
                    )
                    result = place_circuit(factory(), environment, options)
                    rows.append(
                        (
                            name,
                            "greedy-max" if cap is None else f"cap {cap}",
                            "reordered" if reorder else "as written",
                            result,
                            fidelity_of_placement_result(result, environment, model),
                        )
                    )
        return rows

    rows = run_once(benchmark, runner)

    table = [
        [
            name,
            cap_label,
            order_label,
            f"{result.runtime_seconds:.4f} sec",
            result.num_subcircuits,
            result.total_swap_count,
            f"{fidelity:.4f}",
        ]
        for name, cap_label, order_label, result, fidelity in rows
    ]
    print()
    print(
        format_table(
            ["circuit", "workspace strategy", "gate order", "runtime",
             "subcircuits", "SWAPs", "est. fidelity"],
            table,
            title="Ablation — workspace-size balance and commutation-aware reordering "
                  "(trans-crotonic acid)",
        )
    )

    by_key = {(name, cap, reorder): result
              for (name, cap, reorder, result, _) in rows}

    for name, _, threshold in CASES:
        greedy = by_key[(name, "greedy-max", "as written")]
        tight = by_key[(name, "cap 2", "as written")]
        # Capping the workspace size can only increase the number of stages,
        # and the greedy-maximal strategy of the paper remains competitive.
        assert tight.num_subcircuits >= greedy.num_subcircuits
        assert greedy.total_runtime <= tight.total_runtime * 1.5 + 1e-9
        # Commutation-aware reordering never changes feasibility.
        reordered = by_key[(name, "greedy-max", "reordered")]
        assert reordered.num_subcircuits >= 1
