"""Experiment E9 — Section 5.2: linear depth of the SWAP routing.

The paper proves an ``8n + const`` upper bound on the number of SWAP levels
needed to realise any permutation over a well-separable (s >= 1/2)
architecture, and notes the bound is asymptotically optimal (witnessed by
the rotation permutation ``(n, 2, 3, ..., n-1, 1)`` on a chain, which needs
depth Ω(n)).

The benchmark measures the worst observed depth over random permutations on
chains, rings, grids and the NMR molecules, prints depth/n ratios, and
asserts both the upper bound and the lower-bound witness.
"""

import random

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.hardware.architectures import grid, linear_chain, ring
from repro.hardware.molecules import histidine, trans_crotonic_acid
from repro.routing.bubble import route_permutation
from repro.simulation.verify import verify_routing_layers

ARCHITECTURES = [
    ("chain-8", lambda: linear_chain(8), 10.0),
    ("chain-16", lambda: linear_chain(16), 10.0),
    ("chain-32", lambda: linear_chain(32), 10.0),
    ("ring-16", lambda: ring(16), 10.0),
    ("grid-4x4", lambda: grid(4, 4), 10.0),
    ("grid-5x5", lambda: grid(5, 5), 10.0),
    ("trans-crotonic acid", trans_crotonic_acid, 100.0),
    ("histidine", histidine, 100.0),
]

TRIALS_PER_ARCHITECTURE = 10


def test_routing_depth_linear_bound(benchmark):
    def runner():
        rng = random.Random(2024)
        measurements = []
        for name, factory, threshold in ARCHITECTURES:
            graph = factory().adjacency_graph(threshold)
            nodes = list(graph.nodes())
            worst_depth = 0
            total_swaps = 0
            for _ in range(TRIALS_PER_ARCHITECTURE):
                shuffled = list(nodes)
                rng.shuffle(shuffled)
                permutation = dict(zip(nodes, shuffled))
                result = route_permutation(graph, permutation)
                assert verify_routing_layers(result.layers, permutation)
                worst_depth = max(worst_depth, result.depth)
                total_swaps += result.num_swaps
            measurements.append((name, len(nodes), worst_depth, total_swaps / TRIALS_PER_ARCHITECTURE))
        return measurements

    measurements = run_once(benchmark, runner)

    rows = [
        [name, n, depth, f"{depth / n:.2f}", f"{avg_swaps:.1f}"]
        for name, n, depth, avg_swaps in measurements
    ]
    print()
    print(
        format_table(
            ["architecture", "n", "worst depth", "depth / n", "avg SWAPs"],
            rows,
            title="Section 5.2 — SWAP-stage depth over random permutations",
        )
    )

    for name, n, depth, _ in measurements:
        assert depth <= 8 * n + 8, f"{name}: depth {depth} violates the 8n bound"


def test_rotation_permutation_lower_bound_witness(benchmark):
    """The permutation (n, 2, 3, ..., n-1, 1) on a chain needs Ω(n) depth."""
    n = 24
    graph = linear_chain(n).adjacency_graph(10.0)
    # Token at node 0 goes to node n-1 and vice versa; the middle stays.
    permutation = {0: n - 1, n - 1: 0}
    permutation.update({i: i for i in range(1, n - 1)})

    result = run_once(benchmark, route_permutation, graph, permutation)

    print()
    print(f"rotation witness on a {n}-qubit chain: depth {result.depth} "
          f"(lower bound {n - 1}), {result.num_swaps} SWAPs")
    assert verify_routing_layers(result.layers, permutation)
    # The two end tokens must each travel n-1 hops, so depth >= n-1.
    assert result.depth >= n - 1
    assert result.depth <= 8 * n + 8
