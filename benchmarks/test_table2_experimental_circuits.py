"""Experiment E2 — Table 2: reconstructing experimentally realised placements.

For the three (circuit, molecule) pairs that were actually run on NMR
hardware, the placer must reconstruct a hand-made assignment: one workspace,
no SWAP stages, and a runtime of the same order as the experiment.  The
search-space column is an exact combinatorial quantity and must match the
paper digit for digit.
"""

import pytest
from conftest import run_once

from repro.analysis.experiments import run_table2
from repro.analysis.reporting import format_table


def test_table2(benchmark):
    results = run_once(benchmark, run_table2)

    rows = []
    for row in results:
        rows.append(
            [
                row.circuit_name,
                f"{row.num_gates} gates / {row.num_qubits} qubits",
                row.environment_name,
                row.environment_qubits,
                f"{row.paper_runtime_seconds:.4f} sec",
                f"{row.measured_runtime_seconds:.4f} sec",
                row.num_subcircuits,
                f"{row.paper_search_space} / {row.search_space}",
            ]
        )
    print()
    print(
        format_table(
            ["circuit", "size", "environment", "env qubits",
             "paper runtime", "measured runtime", "subcircuits",
             "search space (paper/measured)"],
            rows,
            title="Table 2 — mapping experimentally constructed circuits",
        )
    )

    encoder, qec5, cat = results

    # Row 1 is fully pinned by the paper (all its inputs are printed there).
    assert encoder.measured_runtime_seconds == pytest.approx(0.0136)
    assert encoder.search_space == 6

    # Search-space sizes are exact: m!/(m-n)!.
    assert qec5.search_space == 2520
    assert cat.search_space == 239_500_800

    # The tool must reproduce the experimentalists' single-workspace structure.
    for row in results:
        assert row.num_subcircuits == 1, row.circuit_name
        assert row.result.total_swap_count == 0

    # Runtimes are of the paper's order of magnitude (reconstructed couplings).
    for row in results:
        assert row.measured_runtime_seconds < 10 * row.paper_runtime_seconds
        assert row.measured_runtime_seconds > row.paper_runtime_seconds / 10
