"""Experiment E3 — Table 3: placement quality across Threshold values.

For every (circuit, molecule) block of the paper's Table 3 the benchmark
prints ``runtime sec (number of subcircuits)`` per threshold — the paper's
cell format — followed by the whole-circuit reference of the last column.

Qualitative assertions (the claims the paper draws from the table):

* the iron complex is N/A at thresholds 50 and 100 and feasible above;
* the number of subcircuits never increases as the threshold grows;
* at the largest threshold the circuit is placed as a single workspace;
* for circuits with dense interaction graphs (phaseest, qft6) on sparse
  molecules, the best multi-subcircuit placement beats placing the circuit
  as a whole — "the quantum circuit placement tool has to use some rounds of
  SWAPs to achieve best results".
"""

import pytest
from conftest import run_once

from repro.analysis.reporting import format_table
from repro.analysis.sweep import sweep_environment
from repro.circuits.library import (
    aqft9,
    aqft12,
    phaseest,
    qft6,
    steane_xz1,
    steane_xz2,
)
from repro.hardware.molecules import (
    boc_glycine_fluoride,
    histidine,
    pentafluorobutadienyl_iron,
    trans_crotonic_acid,
)
from repro.hardware.threshold_graph import PAPER_THRESHOLDS

#: Paper values (seconds, subcircuits) for reference printing; ``None`` = N/A.
PAPER_CELLS = {
    ("BOC-glycine-fluoride", "phaseest"): [
        (0.9980, 8), (0.9980, 8), (0.8167, 4), (0.8167, 4), (0.4314, 3), (0.5632, 1)],
    ("pentafluorobutadienyl iron complex", "phaseest"): [
        None, None, (8.2092, 8), (7.7179, 4), (7.7179, 4), (0.3733, 1)],
    ("trans-crotonic acid", "phaseest"): [
        (0.1636, 7), (0.0699, 4), (0.0699, 4), (0.0700, 3), (0.2156, 2), (0.1812, 1)],
    ("trans-crotonic acid", "qft6"): [
        (0.3766, 9), (0.3294, 5), (0.2237, 5), (0.2308, 5), (0.3120, 3), (0.4137, 1)],
    ("histidine", "phaseest"): [
        (1.2022, 7), (0.6860, 4), (0.6860, 4), (0.1827, 3), (0.1517, 2), (0.1870, 1)],
    ("histidine", "qft6"): [
        (1.9824, 9), (0.9519, 6), (1.1607, 5), (0.3123, 4), (0.5623, 3), (0.4412, 1)],
    ("histidine", "aqft9"): [
        (4.3713, 15), (2.5419, 10), (1.3405, 8), (1.5400, 7), (1.4927, 4), (1.3367, 1)],
    ("histidine", "steane-x/z1"): [
        (1.7427, 10), (1.1898, 4), (1.3402, 4), (1.6326, 4), (0.5990, 2), (1.0436, 1)],
    ("histidine", "steane-x/z2"): [
        (1.3233, 7), (1.2715, 4), (1.0110, 3), (0.4166, 2), (0.4677, 2), (0.9515, 1)],
    ("histidine", "aqft12"): [
        (8.1046, 23), (5.3014, 15), (6.0413, 13), (3.5143, 10), (3.3362, 8), (2.6426, 1)],
}


def _print_block(environment_name, rows):
    print()
    header = ["circuit"] + [f"thr {t:g}" for t in PAPER_THRESHOLDS]
    table_rows = []
    for row in rows:
        cells = [row.circuit_name]
        for cell in row.cells:
            cells.append(cell.formatted())
        table_rows.append(cells)
        paper = PAPER_CELLS.get((environment_name, row.circuit_name))
        if paper:
            paper_cells = [row.circuit_name + " (paper)"]
            for value in paper:
                paper_cells.append("N/A" if value is None else f"{value[0]:.4f} sec ({value[1]})")
            table_rows.append(paper_cells)
    print(format_table(header, table_rows,
                       title=f"Table 3 — placement into {environment_name}"))


def _assert_block_shape(rows):
    for row in rows:
        feasible = [cell for cell in row.cells if cell.feasible]
        assert feasible, f"{row.circuit_name} infeasible everywhere"
        # Subcircuit counts never increase with the threshold.
        counts = [cell.num_subcircuits for cell in row.cells if cell.feasible]
        assert counts == sorted(counts, reverse=True), row.circuit_name
        # The largest threshold places the circuit as a whole.
        last = row.cells[-1]
        assert last.feasible and last.num_subcircuits == 1, row.circuit_name


def test_table3_five_qubit_molecules(benchmark):
    """phaseest over the two 5-qubit molecules (including the N/A rows)."""

    def runner():
        return {
            "boc": sweep_environment([phaseest], boc_glycine_fluoride()),
            "iron": sweep_environment([phaseest], pentafluorobutadienyl_iron()),
        }

    results = run_once(benchmark, runner)
    _print_block("BOC-glycine-fluoride", results["boc"])
    _print_block("pentafluorobutadienyl iron complex", results["iron"])

    _assert_block_shape(results["boc"])
    iron_row = results["iron"][0]
    # The slow iron complex: N/A at 50 and 100, feasible from 200 onwards.
    assert not iron_row.cell_at(50.0).feasible
    assert not iron_row.cell_at(100.0).feasible
    assert iron_row.cell_at(200.0).feasible
    counts = [c.num_subcircuits for c in iron_row.cells if c.feasible]
    assert counts == sorted(counts, reverse=True)


def test_table3_trans_crotonic_acid(benchmark):
    results = run_once(
        benchmark, sweep_environment, [phaseest, qft6], trans_crotonic_acid()
    )
    _print_block("trans-crotonic acid", results)
    _assert_block_shape(results)

    # The headline claim: for qft6 the best multi-subcircuit placement beats
    # placing the circuit as a whole (the paper reports almost 2x).
    for row in results:
        best = row.best_cell()
        whole = row.cells[-1]
        assert best.runtime_seconds < whole.runtime_seconds
        assert best.num_subcircuits > 1


def test_table3_histidine(benchmark):
    results = run_once(
        benchmark,
        sweep_environment,
        [phaseest, qft6, aqft9, steane_xz1, steane_xz2, aqft12],
        histidine(),
    )
    _print_block("histidine", results)
    _assert_block_shape(results)

    # Dense circuits still profit from SWAP stages on the 12-spin molecule.
    by_name = {row.circuit_name: row for row in results}
    for name in ("qft6", "aqft9", "aqft12"):
        row = by_name[name]
        assert row.best_cell().runtime_seconds <= row.cells[-1].runtime_seconds
