"""Unit tests for interaction graph extraction."""

import networkx as nx

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.interaction_graph import (
    densest_interaction,
    gates_embed,
    interaction_graph,
    interaction_pairs,
    is_line_graph_circuit,
)
from repro.circuits.library import qft_circuit


class TestInteractionGraph:
    def test_single_qubit_gates_produce_no_edges(self):
        circuit = QuantumCircuit(["a", "b"], [g.rx("a"), g.ry("b")])
        assert interaction_graph(circuit).number_of_edges() == 0

    def test_edges_match_two_qubit_gates(self):
        circuit = QuantumCircuit(
            ["a", "b", "c"], [g.zz("a", "b"), g.zz("b", "c"), g.zz("a", "b")]
        )
        graph = interaction_graph(circuit)
        assert set(map(frozenset, graph.edges())) == {
            frozenset({"a", "b"}),
            frozenset({"b", "c"}),
        }

    def test_edge_count_attribute(self):
        circuit = QuantumCircuit(["a", "b"], [g.zz("a", "b"), g.zz("a", "b")])
        graph = interaction_graph(circuit)
        assert graph["a"]["b"]["count"] == 2

    def test_edge_duration_attribute_sums(self):
        circuit = QuantumCircuit(["a", "b"], [g.zz("a", "b", 90), g.zz("a", "b", 45)])
        graph = interaction_graph(circuit)
        assert graph["a"]["b"]["duration"] == 1.5

    def test_isolated_qubits_optional(self):
        circuit = QuantumCircuit(["a", "b", "c"], [g.zz("a", "b")])
        assert "c" not in interaction_graph(circuit)
        assert "c" in interaction_graph(circuit, include_isolated_qubits=True)

    def test_qft_interaction_graph_is_complete(self):
        circuit = qft_circuit(5)
        graph = interaction_graph(circuit)
        assert graph.number_of_edges() == 10  # K5

    def test_accepts_plain_gate_iterable(self):
        graph = interaction_graph([g.zz("x", "y")])
        assert graph.has_edge("x", "y")


class TestEmbeddingChecks:
    def test_gates_embed_respects_node_count(self):
        host = nx.path_graph(2)
        gates = [g.zz(0, 1), g.zz(1, 2)]
        assert not gates_embed(gates, host)

    def test_gates_embed_respects_degree_sequence(self):
        host = nx.path_graph(4)  # max degree 2
        star_gates = [g.zz(0, 1), g.zz(0, 2), g.zz(0, 3)]
        assert not gates_embed(star_gates, host)

    def test_gates_embed_accepts_matching_path(self):
        host = nx.path_graph(4)
        gates = [g.zz(0, 1), g.zz(1, 2)]
        assert gates_embed(gates, host)


class TestHelpers:
    def test_interaction_pairs_in_first_use_order(self):
        gates = [g.zz("b", "c"), g.zz("a", "b"), g.zz("b", "c")]
        assert interaction_pairs(gates) == [("b", "c"), ("a", "b")]

    def test_is_line_graph_circuit_true_for_chain(self):
        circuit = QuantumCircuit(range(4), [g.zz(0, 1), g.zz(1, 2), g.zz(2, 3)])
        assert is_line_graph_circuit(circuit)

    def test_is_line_graph_circuit_false_for_qft(self):
        assert not is_line_graph_circuit(qft_circuit(4))

    def test_densest_interaction(self):
        circuit = QuantumCircuit(
            ["a", "b", "c"], [g.zz("a", "b"), g.zz("a", "b"), g.zz("b", "c")]
        )
        assert densest_interaction(circuit) == ("a", "b")

    def test_densest_interaction_none_without_two_qubit_gates(self):
        assert densest_interaction(QuantumCircuit(["a"], [g.rx("a")])) is None
